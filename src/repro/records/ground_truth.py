"""Ground-truth utilities: true-match pairs and entity clusters."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.records.record import Record

Pair = tuple[str, str]


def sorted_pair(id1: str, id2: str) -> Pair:
    """Canonical ordered form of an unordered record pair."""
    return (id1, id2) if id1 <= id2 else (id2, id1)


def entity_clusters(records: Iterable[Record]) -> dict[str, list[str]]:
    """Group record ids by their ground-truth entity.

    Records without an ``entity_id`` are ignored (they can never be part
    of a labelled true match).
    """
    clusters: dict[str, list[str]] = defaultdict(list)
    for record in records:
        if record.entity_id is not None:
            clusters[record.entity_id].append(record.record_id)
    return dict(clusters)


def true_match_pairs(records: Iterable[Record]) -> set[Pair]:
    """Return the set ``Ωtp`` of all true-match pairs.

    Two records match when they share an ``entity_id``. Pairs are in the
    canonical sorted order of :func:`sorted_pair`.
    """
    pairs: set[Pair] = set()
    for members in entity_clusters(records).values():
        members.sort()
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                pairs.add((first, second))
    return pairs
