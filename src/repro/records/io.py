"""CSV import/export for datasets and candidate pairs.

The CLI and downstream users exchange datasets as plain CSV: one row
per record with a mandatory id column and an optional ground-truth
entity column; all remaining columns become record attributes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.errors import DatasetError
from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair
from repro.records.record import Record

#: Default column names used by :func:`write_csv`.
ID_COLUMN = "record_id"
ENTITY_COLUMN = "entity_id"


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to CSV (id and entity columns first)."""
    attributes = sorted({a for r in dataset for a in r.fields})
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([ID_COLUMN, ENTITY_COLUMN] + attributes)
        for record in dataset:
            writer.writerow(
                [record.record_id, record.entity_id or ""]
                + [record.get(a) for a in attributes]
            )


def read_csv(
    path: str | Path,
    *,
    id_column: str = ID_COLUMN,
    entity_column: str | None = ENTITY_COLUMN,
    name: str | None = None,
) -> Dataset:
    """Read a dataset from CSV.

    Raises
    ------
    DatasetError
        If the id column is missing or a row is malformed; the message
        names the offending source line.
    """
    path = Path(path)
    records = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_column not in reader.fieldnames:
            raise DatasetError(
                f"CSV {path} has no {id_column!r} column; "
                f"found {reader.fieldnames}"
            )
        has_entity = (
            entity_column is not None and entity_column in reader.fieldnames
        )
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: malformed row "
                    f"({exc})"
                ) from exc
            record_id = (row.get(id_column) or "").strip()
            if not record_id:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: row has no "
                    f"{id_column!r} value"
                )
            entity = (row.get(entity_column) or "").strip() if has_entity else ""
            fields = {
                key: value or ""
                for key, value in row.items()
                if key not in (id_column, entity_column)
            }
            records.append(
                Record(record_id, fields, entity_id=entity or None)
            )
    return Dataset(records, name=name or path.stem)


def write_pairs_csv(pairs: Iterable[Pair], path: str | Path) -> None:
    """Write candidate pairs to a two-column CSV."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2"])
        for id1, id2 in sorted(pairs):
            writer.writerow([id1, id2])


def read_pairs_csv(path: str | Path) -> set[Pair]:
    """Read candidate pairs written by :func:`write_pairs_csv`."""
    pairs: set[Pair] = set()
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"id1", "id2"} <= set(
            reader.fieldnames
        ):
            raise DatasetError(f"CSV {path} is not a pairs file")
        for row in reader:
            pairs.add((row["id1"], row["id2"]))
    return pairs
