"""CSV import/export for datasets and candidate pairs.

The CLI and downstream users exchange datasets as plain CSV: one row
per record with a mandatory id column and an optional ground-truth
entity column; all remaining columns become record attributes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.errors import DatasetError
from repro.records.dataset import Dataset, LinkedCorpus
from repro.records.ground_truth import Pair
from repro.records.record import Record

#: Default column names used by :func:`write_csv`.
ID_COLUMN = "record_id"
ENTITY_COLUMN = "entity_id"
#: Column that assigns each row to a side of a linked corpus. Linkage
#: CSVs carry dataset membership *explicitly* per row — it is never
#: inferred from filenames — so one file can hold both sides and a
#: mislabelled row fails loudly with its line number.
DATASET_COLUMN = "dataset_id"


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to CSV (id and entity columns first)."""
    attributes = sorted({a for r in dataset for a in r.fields})
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([ID_COLUMN, ENTITY_COLUMN] + attributes)
        for record in dataset:
            writer.writerow(
                [record.record_id, record.entity_id or ""]
                + [record.get(a) for a in attributes]
            )


def read_csv(
    path: str | Path,
    *,
    id_column: str = ID_COLUMN,
    entity_column: str | None = ENTITY_COLUMN,
    name: str | None = None,
) -> Dataset:
    """Read a dataset from CSV.

    Raises
    ------
    DatasetError
        If the id column is missing or a row is malformed; the message
        names the offending source line.
    """
    path = Path(path)
    records = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_column not in reader.fieldnames:
            raise DatasetError(
                f"CSV {path} has no {id_column!r} column; "
                f"found {reader.fieldnames}"
            )
        has_entity = (
            entity_column is not None and entity_column in reader.fieldnames
        )
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: malformed row "
                    f"({exc})"
                ) from exc
            record_id = (row.get(id_column) or "").strip()
            if not record_id:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: row has no "
                    f"{id_column!r} value"
                )
            entity = (row.get(entity_column) or "").strip() if has_entity else ""
            fields = {
                key: value or ""
                for key, value in row.items()
                if key not in (id_column, entity_column)
            }
            records.append(
                Record(record_id, fields, entity_id=entity or None)
            )
    return Dataset(records, name=name or path.stem)


def write_linked_csv(linked: LinkedCorpus, path: str | Path) -> None:
    """Write both sides of a linked corpus to one CSV.

    Each row carries its side in the :data:`DATASET_COLUMN` column
    (the source/target dataset *names*), so :func:`read_linked_csv`
    round-trips the corpus without any filename convention.
    """
    attributes = sorted(
        {a for side in (linked.source, linked.target) for r in side for a in r.fields}
    )
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [ID_COLUMN, DATASET_COLUMN, ENTITY_COLUMN] + attributes
        )
        for side in (linked.source, linked.target):
            for record in side:
                writer.writerow(
                    [record.record_id, side.name, record.entity_id or ""]
                    + [record.get(a) for a in attributes]
                )


def read_linked_csv(
    path: str | Path,
    *,
    id_column: str = ID_COLUMN,
    entity_column: str | None = ENTITY_COLUMN,
    dataset_column: str = DATASET_COLUMN,
    source: str | None = None,
    target: str | None = None,
) -> LinkedCorpus:
    """Read a two-dataset linkage corpus from one CSV.

    Every row must carry a non-blank ``dataset_column`` value naming
    its side; exactly two distinct values may appear. ``source=`` /
    ``target=`` pin which value is which side — without them the first
    dataset value seen in the file is the source.

    Raises
    ------
    DatasetError
        Naming the offending source line on any conflict: a blank or
        missing dataset value, a third dataset name, a record id reused
        within or across sides, or a pinned source/target name that
        never appears.
    """
    path = Path(path)
    by_dataset: dict[str, list[Record]] = {}
    seen_ids: dict[str, int] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        fieldnames = reader.fieldnames or []
        for column in (id_column, dataset_column):
            if column not in fieldnames:
                raise DatasetError(
                    f"CSV {path} has no {column!r} column; "
                    f"found {reader.fieldnames}"
                )
        has_entity = (
            entity_column is not None and entity_column in fieldnames
        )
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: malformed row "
                    f"({exc})"
                ) from exc
            record_id = (row.get(id_column) or "").strip()
            if not record_id:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: row has no "
                    f"{id_column!r} value"
                )
            dataset_id = (row.get(dataset_column) or "").strip()
            if not dataset_id:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: row has no "
                    f"{dataset_column!r} value (dataset membership is "
                    "explicit per row, never inferred from filenames)"
                )
            if dataset_id not in by_dataset and len(by_dataset) == 2:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: third dataset "
                    f"{dataset_id!r} (already have "
                    f"{sorted(by_dataset)}); a linked corpus has "
                    "exactly two sides"
                )
            if record_id in seen_ids:
                raise DatasetError(
                    f"CSV {path} line {reader.line_num}: record id "
                    f"{record_id!r} already defined on line "
                    f"{seen_ids[record_id]}; ids must be unique across "
                    "both sides"
                )
            seen_ids[record_id] = reader.line_num
            entity = (row.get(entity_column) or "").strip() if has_entity else ""
            fields = {
                key: value or ""
                for key, value in row.items()
                if key not in (id_column, entity_column, dataset_column)
            }
            by_dataset.setdefault(dataset_id, []).append(
                Record(record_id, fields, entity_id=entity or None)
            )
    if len(by_dataset) != 2:
        raise DatasetError(
            f"CSV {path} holds {len(by_dataset)} dataset(s) "
            f"({sorted(by_dataset)}); a linked corpus needs exactly two"
        )
    names = list(by_dataset)
    source_name = source if source is not None else (
        names[0] if names[0] != target else names[1]
    )
    target_name = target if target is not None else next(
        n for n in names if n != source_name
    )
    for label, wanted in (("source", source_name), ("target", target_name)):
        if wanted not in by_dataset:
            raise DatasetError(
                f"CSV {path}: requested {label} dataset {wanted!r} "
                f"not present; found {sorted(by_dataset)}"
            )
    if source_name == target_name:
        raise DatasetError(
            f"CSV {path}: source and target both pinned to "
            f"{source_name!r}; the two sides must differ"
        )
    return LinkedCorpus(
        Dataset(by_dataset[source_name], name=source_name, role="source"),
        Dataset(by_dataset[target_name], name=target_name, role="target"),
    )


def write_pairs_csv(pairs: Iterable[Pair], path: str | Path) -> None:
    """Write candidate pairs to a two-column CSV."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2"])
        for id1, id2 in sorted(pairs):
            writer.writerow([id1, id2])


def read_pairs_csv(path: str | Path) -> set[Pair]:
    """Read candidate pairs written by :func:`write_pairs_csv`."""
    pairs: set[Pair] = set()
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"id1", "id2"} <= set(
            reader.fieldnames
        ):
            raise DatasetError(f"CSV {path} is not a pairs file")
        for row in reader:
            pairs.add((row["id1"], row["id2"]))
    return pairs
