"""Integer pair keys and vectorized pair enumeration.

The candidate-pair engine (DESIGN.md, "Candidate-pair engine") stores an
unordered record pair as one ``uint64`` key over contiguous record
indices::

    key = (min(i, j) << 32) | max(i, j)

Keys are injective for any corpus below 2^32 records, totally ordered,
and intersect/dedup with plain ``np.unique`` / ``np.intersect1d``. When
the index codec enumerates ids in lexicographic order (the *local*
vocabulary of :class:`~repro.core.base.BlockingResult`), numeric key
order equals the lexicographic order of the decoded ``(id1, id2)``
tuples, so sorted key arrays decode directly into the canonical
:func:`~repro.records.ground_truth.sorted_pair` form.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.records.ground_truth import Pair

#: Bits reserved for each index half of a pair key (max 2**32 records).
PAIR_SHIFT = np.uint64(32)
_LOW_MASK = np.uint64(0xFFFFFFFF)


def encode_pair_keys(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``uint64`` keys of unordered index pairs (canonical min/max form)."""
    lo = np.minimum(left, right).astype(np.uint64, copy=False)
    hi = np.maximum(left, right).astype(np.uint64, copy=False)
    return (lo << PAIR_SHIFT) | hi


def decode_pair_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(lo, hi)`` index arrays of encoded pair keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    lo = (keys >> PAIR_SHIFT).astype(np.int64)
    hi = (keys & _LOW_MASK).astype(np.int64)
    return lo, hi


def pairs_from_keys(keys: np.ndarray, ids: Sequence[str]) -> list[Pair]:
    """Decode keys against an id vocabulary, preserving key order.

    The decoded tuples are ``(ids[lo], ids[hi])``; with a
    lexicographically sorted vocabulary that is already the canonical
    ``sorted_pair`` orientation. Callers decoding against a
    dataset-ordered codec must canonicalise the tuples themselves.
    """
    lo, hi = decode_pair_keys(keys)
    return [(ids[a], ids[b]) for a, b in zip(lo.tolist(), hi.tolist())]


def enumerate_csr_pairs(
    offsets: np.ndarray,
    indices: np.ndarray,
    *,
    with_group_ids: bool = False,
):
    """All within-group index pairs of a CSR block layout.

    Returns ``(left, right)`` arrays — plus the group id of each emitted
    pair when ``with_group_ids`` — covering every unordered pair of
    positions inside each group (the multiset Γm of the paper's §6,
    minus self-pairs, which arise only when a group repeats an index).

    Groups are expanded one *size class* at a time: all groups of equal
    size form one ``(m, size)`` matrix whose upper-triangle columns are
    gathered in bulk, so the expansion is pure numpy with one Python
    iteration per distinct group size. Emission order is therefore
    grouped by size class, not by group id — callers needing per-key
    group order must sort (see ``build_array_graph``).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    lefts: list[np.ndarray] = []
    rights: list[np.ndarray] = []
    groups: list[np.ndarray] = []
    for size in np.unique(sizes).tolist():
        if size < 2:
            continue
        members = np.flatnonzero(sizes == size)
        starts = offsets[members]
        matrix = indices[starts[:, None] + np.arange(size)]
        upper_i, upper_j = np.triu_indices(size, k=1)
        lefts.append(matrix[:, upper_i].ravel())
        rights.append(matrix[:, upper_j].ravel())
        if with_group_ids:
            groups.append(np.repeat(members, upper_i.size))
    if not lefts:
        empty = np.empty(0, dtype=np.int64)
        if with_group_ids:
            return empty, empty.copy(), empty.copy()
        return empty, empty.copy()
    left = np.concatenate(lefts)
    right = np.concatenate(rights)
    group_ids = np.concatenate(groups) if with_group_ids else None
    keep = left != right
    if not keep.all():
        left, right = left[keep], right[keep]
        if group_ids is not None:
            group_ids = group_ids[keep]
    if group_ids is not None:
        return left, right, group_ids
    return left, right


def encode_bipartite_keys(
    source: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """``uint64`` keys of cross-dataset pairs (source in the high word).

    Unlike :func:`encode_pair_keys` there is no min/max canonicalisation:
    the two sides of a :class:`~repro.records.dataset.LinkedCorpus` are
    disjoint id spaces, so ``(source_idx, target_idx)`` is already the
    canonical orientation and the codec stays injective over
    |S|, |T| < 2^32.
    """
    src = np.asarray(source).astype(np.uint64, copy=False)
    tgt = np.asarray(target).astype(np.uint64, copy=False)
    return (src << PAIR_SHIFT) | tgt


def unique_bipartite_keys(
    source: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Sorted distinct bipartite keys of the given cross pairs."""
    if np.asarray(source).size == 0:
        return np.empty(0, dtype=np.uint64)
    return sorted_unique_keys(encode_bipartite_keys(source, target))


def enumerate_csr_cross_pairs(
    offsets: np.ndarray,
    indices: np.ndarray,
    source_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All cross-side index pairs of a CSR block layout.

    ``source_mask[i]`` says whether local index ``i`` belongs to the
    source side; the returned ``(source, target)`` arrays cover every
    (source member × target member) pair inside each group and *never*
    a within-side pair — the clean-clean candidate set Γ over |S|×|T|.

    Like :func:`enumerate_csr_pairs` the expansion is one numpy
    cartesian product per distinct ``(n_source, n_target)`` shape class,
    with the group members partitioned sources-first by a stable sort so
    gathered rows stay aligned.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    indices = np.asarray(indices)
    source_mask = np.asarray(source_mask, dtype=bool)
    num_groups = offsets.size - 1
    if num_groups <= 0 or indices.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    sizes = np.diff(offsets)
    group_of = np.repeat(np.arange(num_groups), sizes)
    is_source = source_mask[indices]
    # Stable partition: within each group, source members first. The
    # secondary key is position, so dataset order survives inside each
    # side (emission order is deterministic either way — the pair *set*
    # is what callers consume).
    order = np.lexsort((~is_source, group_of))
    part_indices = indices[order]
    n_src = np.bincount(group_of[is_source], minlength=num_groups)
    n_tgt = sizes - n_src
    shapes = n_src * (np.int64(indices.size) + 1) + n_tgt
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for shape in np.unique(shapes).tolist():
        members = np.flatnonzero(shapes == shape)
        s = int(n_src[members[0]])
        t = int(n_tgt[members[0]])
        if s == 0 or t == 0:
            continue
        starts = offsets[members]
        src_rows = part_indices[starts[:, None] + np.arange(s)]
        tgt_rows = part_indices[starts[:, None] + s + np.arange(t)]
        sources.append(
            np.broadcast_to(src_rows[:, :, None], (members.size, s, t)).ravel()
        )
        targets.append(
            np.broadcast_to(tgt_rows[:, None, :], (members.size, s, t)).ravel()
        )
    if not sources:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return (
        np.concatenate(sources).astype(np.int64, copy=False),
        np.concatenate(targets).astype(np.int64, copy=False),
    )


def sorted_unique_keys(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct copy of a key array via sort + run mask.

    Equivalent to ``np.unique(keys)`` but routed through one sort:
    numpy >= 2.x sends plain integer ``unique`` calls through a hash
    table that is far slower than sorting at candidate-pair sizes
    (~25x on half-million-key arrays).
    """
    if keys.size == 0:
        return keys.astype(np.uint64, copy=False)
    ordered = np.sort(keys)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def unique_pair_keys(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Sorted distinct keys of the given index pairs (Γ from Γm)."""
    if np.asarray(left).size == 0:
        return np.empty(0, dtype=np.uint64)
    return sorted_unique_keys(encode_pair_keys(left, right))
