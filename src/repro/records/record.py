"""The :class:`Record` value type.

A record is an immutable bag of named string attributes plus an
identifier. When ground truth is known, ``entity_id`` names the
real-world entity the record refers to (the function ``e(r)`` of the
paper's Section 3); records with the same ``entity_id`` are true matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class Record:
    """One record of a dataset.

    Parameters
    ----------
    record_id:
        Unique identifier within its dataset.
    fields:
        Mapping from attribute name to string value. Missing values are
        represented as the empty string (the paper's NULL).
    entity_id:
        Ground-truth entity identifier, or ``None`` when unknown.
    """

    record_id: str
    fields: Mapping[str, str] = field(default_factory=dict)
    entity_id: str | None = None

    def __post_init__(self) -> None:
        # Freeze the mapping so records are safely hashable by identity
        # fields and cannot be mutated after construction.
        object.__setattr__(self, "fields", MappingProxyType(dict(self.fields)))

    def get(self, attribute: str) -> str:
        """Return the value of ``attribute``, or ``''`` when missing."""
        return self.fields.get(attribute, "")

    def has_value(self, attribute: str) -> bool:
        """True when ``attribute`` is present and non-empty (NOT NULL)."""
        return bool(self.fields.get(attribute, "").strip())

    def values(self, attributes: tuple[str, ...] | list[str]) -> list[str]:
        """Return the values of several attributes in order."""
        return [self.get(a) for a in attributes]

    def __reduce__(self):
        # The frozen MappingProxyType does not pickle; rebuild through
        # __init__ (which re-freezes) so records can ship to the
        # process-sharded workers.
        return (Record, (self.record_id, dict(self.fields), self.entity_id))

    def __hash__(self) -> int:
        return hash(self.record_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.record_id == other.record_id
            and dict(self.fields) == dict(other.fields)
            and self.entity_id == other.entity_id
        )
