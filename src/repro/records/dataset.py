"""The :class:`Dataset` container.

A dataset is an ordered collection of :class:`~repro.records.Record`
objects with unique ids, plus cached ground-truth structures used by the
evaluation measures (PC needs ``Ωtp``; RR needs ``|Ω|``).
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.records.ground_truth import Pair, entity_clusters, true_match_pairs
from repro.records.record import Record

#: Valid values of :attr:`Dataset.role` — the dataset-role axis
#: (DESIGN.md, "Record linkage & the dataset-role axis"). ``single`` is
#: the dirty-ER dedup corpus; ``source``/``target`` are the two sides
#: of a clean-clean :class:`LinkedCorpus`.
DATASET_ROLES = ("single", "source", "target")


class Dataset:
    """An ordered, immutable collection of records.

    Parameters
    ----------
    records:
        The records; ids must be unique.
    name:
        Optional human-readable name used in reports.
    role:
        The dataset's role on the linkage axis: ``single`` (dedup
        corpus, the default), or ``source``/``target`` when the dataset
        is one side of a :class:`LinkedCorpus`.
    """

    def __init__(
        self,
        records: Iterable[Record],
        name: str = "dataset",
        *,
        role: str = "single",
    ) -> None:
        if role not in DATASET_ROLES:
            raise DatasetError(
                f"invalid dataset role {role!r}; expected one of "
                f"{DATASET_ROLES}"
            )
        self._records: tuple[Record, ...] = tuple(records)
        self.name = name
        self.role = role
        seen: set[str] = set()
        for record in self._records:
            if record.record_id in seen:
                raise DatasetError(f"duplicate record id {record.record_id!r}")
            seen.add(record.record_id)
        self._by_id = {r.record_id: r for r in self._records}

    def with_role(self, role: str, name: str | None = None) -> "Dataset":
        """A copy of this dataset carrying ``role`` (records shared)."""
        copy = Dataset(self._records, name=name or self.name, role=role)
        return copy

    # -- collection protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    @property
    def records(self) -> Sequence[Record]:
        return self._records

    @property
    def record_ids(self) -> list[str]:
        return list(self._ids)

    # -- integer id codec -----------------------------------------------------

    @cached_property
    def _index_by_id(self) -> dict[str, int]:
        return {r.record_id: i for i, r in enumerate(self._records)}

    @cached_property
    def _ids(self) -> list[str]:
        return [r.record_id for r in self._records]

    def index_of(self, record_id: str) -> int:
        """Contiguous ``int`` index of a record (dataset order)."""
        try:
            return self._index_by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def encode_ids(self, record_ids: Iterable[str]) -> np.ndarray:
        """Record ids -> contiguous ``int32`` indices (dataset order).

        Raises
        ------
        DatasetError
            If any id does not belong to the dataset.
        """
        index = self._index_by_id
        count = len(record_ids) if hasattr(record_ids, "__len__") else -1
        try:
            return np.fromiter(
                (index[rid] for rid in record_ids), dtype=np.int32, count=count
            )
        except KeyError as exc:
            raise DatasetError(f"no record with id {exc.args[0]!r}") from None

    def decode_ids(self, indices: Iterable[int]) -> list[str]:
        """Inverse of :meth:`encode_ids`."""
        ids = self._ids
        return [ids[i] for i in np.asarray(indices).tolist()]

    # -- ground truth ---------------------------------------------------------

    @cached_property
    def true_matches(self) -> set[Pair]:
        """The set ``Ωtp`` of labelled true-match pairs."""
        return true_match_pairs(self._records)

    @cached_property
    def true_match_keys(self) -> np.ndarray:
        """``Ωtp`` as sorted ``uint64`` pair keys over the id codec.

        Derived directly from the entity clusters (no Python pair set),
        and cached so repeated evaluations — tuning sweeps, the
        evaluation runner — never re-derive the ground truth.
        """
        from repro.records.pairs import enumerate_csr_pairs, unique_pair_keys

        index = self._index_by_id
        members = [
            [index[rid] for rid in cluster]
            for cluster in self.clusters.values()
            if len(cluster) >= 2
        ]
        if not members:
            return np.empty(0, dtype=np.uint64)
        offsets = np.zeros(len(members) + 1, dtype=np.int64)
        np.cumsum([len(m) for m in members], out=offsets[1:])
        indices = np.fromiter(
            (i for m in members for i in m), dtype=np.int32, count=int(offsets[-1])
        )
        left, right = enumerate_csr_pairs(offsets, indices)
        return unique_pair_keys(left, right)

    @cached_property
    def clusters(self) -> dict[str, list[str]]:
        """Record ids grouped by ground-truth entity."""
        return entity_clusters(self._records)

    @property
    def num_true_matches(self) -> int:
        return int(self.true_match_keys.size)

    @property
    def total_pairs(self) -> int:
        """``|Ω|``: the number of distinct record pairs in the dataset."""
        n = len(self._records)
        return n * (n - 1) // 2

    # -- attribute columns ----------------------------------------------------

    @cached_property
    def _attribute_codes(self) -> dict[str, tuple[np.ndarray, list[str]]]:
        return {}

    def attribute_codes(self, attribute: str) -> tuple[np.ndarray, list[str]]:
        """``(codes, uniques)`` factorization of one attribute column.

        ``codes[i]`` indexes into ``uniques`` (sorted distinct values);
        cached per attribute so batch matchers gather each column once.
        """
        cached = self._attribute_codes.get(attribute)
        if cached is None:
            values = np.asarray(
                [r.get(attribute) for r in self._records], dtype=object
            )
            if values.size:
                uniques, codes = np.unique(values, return_inverse=True)
                cached = (codes.astype(np.int64), uniques.tolist())
            else:
                cached = (np.empty(0, dtype=np.int64), [])
            self._attribute_codes[attribute] = cached
        return cached

    def is_true_match(self, id1: str, id2: str) -> bool:
        """True when both records are labelled with the same entity."""
        e1 = self._by_id[id1].entity_id
        e2 = self._by_id[id2].entity_id
        return e1 is not None and e1 == e2

    # -- derived datasets -----------------------------------------------------

    def subset(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """Dataset restricted to ``record_ids`` (order preserved)."""
        wanted = set(record_ids)
        kept = [r for r in self._records if r.record_id in wanted]
        return Dataset(kept, name=name or f"{self.name}-subset")

    def sample(self, n: int, seed: int = 0, name: str | None = None) -> "Dataset":
        """Deterministic random sample of ``n`` records."""
        from repro.utils.rand import rng_from_seed

        if n > len(self._records):
            raise DatasetError(
                f"cannot sample {n} records from {len(self._records)}"
            )
        rng = rng_from_seed(seed, "dataset-sample", self.name, n)
        chosen = rng.sample(list(self._records), n)
        return Dataset(chosen, name=name or f"{self.name}-sample{n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, records={len(self)}, "
            f"entities={len(self.clusters)})"
        )


class LinkedCorpus:
    """Two disjoint datasets posed as a clean-clean linkage problem.

    The composition carries the dataset-role axis end to end: the
    ``source`` probes an index built over the ``target`` (the
    production resolver shape), the comparison space is |S|×|T| cross
    pairs only, and the ground truth is the bipartite subset of entity
    labels that appear on *both* sides. Record ids must be disjoint
    across the two sides so the union corpus (what the blockers
    actually group) stays a valid :class:`Dataset`.

    Parameters
    ----------
    source, target:
        The two sides; roles are coerced to ``source``/``target``.
    name:
        Optional name used in reports (defaults to ``source~target``).
    """

    def __init__(
        self, source: Dataset, target: Dataset, name: str | None = None
    ) -> None:
        if source.role != "source":
            source = source.with_role("source")
        if target.role != "target":
            target = target.with_role("target")
        overlap = sorted(
            set(source.record_ids) & set(target.record_ids)
        )
        if overlap:
            shown = ", ".join(repr(rid) for rid in overlap[:5])
            more = f" (+{len(overlap) - 5} more)" if len(overlap) > 5 else ""
            raise DatasetError(
                f"linked corpus sides share record ids: {shown}{more}; "
                "source and target id spaces must be disjoint"
            )
        self.source = source
        self.target = target
        self.name = name or f"{source.name}~{target.name}"

    def __len__(self) -> int:
        return len(self.source) + len(self.target)

    @cached_property
    def union(self) -> Dataset:
        """Both sides as one dedup-shaped corpus, source records first.

        This is what the blockers group; the bipartite pair space is
        carved out of its blocks by cross-side enumeration.
        """
        return Dataset(
            tuple(self.source.records) + tuple(self.target.records),
            name=f"{self.name}-union",
        )

    @cached_property
    def source_id_set(self) -> frozenset[str]:
        return frozenset(self.source.record_ids)

    def side_of(self, record_id: str) -> str:
        """``"source"`` or ``"target"``; unknown ids raise."""
        if record_id in self.source_id_set:
            return "source"
        if record_id in self.target:
            return "target"
        raise DatasetError(f"no record with id {record_id!r}")

    @property
    def total_pairs(self) -> int:
        """``|Ω|`` of the clean-clean space: |S| × |T| cross pairs."""
        return len(self.source) * len(self.target)

    @cached_property
    def true_matches(self) -> set[Pair]:
        """``Ωtp``: (source_id, target_id) pairs sharing an entity."""
        from repro.records.pairs import decode_pair_keys

        src_ids = self.source.record_ids
        tgt_ids = self.target.record_ids
        lo, hi = decode_pair_keys(self.true_match_keys)
        return {
            (src_ids[s], tgt_ids[t])
            for s, t in zip(lo.tolist(), hi.tolist())
        }

    @cached_property
    def true_match_keys(self) -> np.ndarray:
        """``Ωtp`` as sorted bipartite ``uint64`` keys.

        The high word is the record's position in ``source``, the low
        word its position in ``target`` (no min/max canonicalisation —
        the sides are disjoint). Only entities labelled on both sides
        contribute, each as a full cross product of its members.
        """
        from repro.records.pairs import unique_bipartite_keys

        src_clusters = self.source.clusters
        tgt_clusters = self.target.clusters
        src_index = {r.record_id: i for i, r in enumerate(self.source)}
        tgt_index = {r.record_id: i for i, r in enumerate(self.target)}
        sources: list[int] = []
        targets: list[int] = []
        for entity, src_members in src_clusters.items():
            tgt_members = tgt_clusters.get(entity)
            if not tgt_members:
                continue
            for sid in src_members:
                s = src_index[sid]
                for tid in tgt_members:
                    sources.append(s)
                    targets.append(tgt_index[tid])
        if not sources:
            return np.empty(0, dtype=np.uint64)
        return unique_bipartite_keys(
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        )

    @property
    def num_true_matches(self) -> int:
        return int(self.true_match_keys.size)

    def pairs_from_keys(self, keys: np.ndarray) -> list[Pair]:
        """Decode bipartite keys into ``(source_id, target_id)`` pairs."""
        from repro.records.pairs import decode_pair_keys

        src_ids = self.source.record_ids
        tgt_ids = self.target.record_ids
        lo, hi = decode_pair_keys(keys)
        return [
            (src_ids[s], tgt_ids[t])
            for s, t in zip(lo.tolist(), hi.tolist())
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkedCorpus(name={self.name!r}, source={len(self.source)}, "
            f"target={len(self.target)})"
        )


class RecordStore:
    """A mutable, ordered record collection — the resolver's corpus.

    Where :class:`Dataset` is frozen at construction, a store accepts
    :meth:`add`/:meth:`remove` over its lifetime (the online resolver
    keeps it aligned with its blocking index) and can :meth:`snapshot`
    the current membership into an immutable :class:`Dataset` at any
    point, preserving insertion order. Ids must stay unique across the
    store's whole history-free membership; :meth:`allocate_id` hands
    out fresh ids for late arrivals that come without one.
    """

    def __init__(
        self, records: Iterable[Record] = (), name: str = "store"
    ) -> None:
        self.name = name
        self._by_id: dict[str, Record] = {}
        self._allocated = 0
        self.add_many(records)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._by_id.values())

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def add(self, record: Record) -> None:
        """Insert one record; duplicate ids raise :class:`DatasetError`."""
        if record.record_id in self._by_id:
            raise DatasetError(f"duplicate record id {record.record_id!r}")
        self._by_id[record.record_id] = record

    def add_many(self, records: Iterable[Record]) -> None:
        """Insert records in order; the store is unchanged on failure."""
        staged = list(records)
        seen: set[str] = set()
        for record in staged:
            if record.record_id in self._by_id or record.record_id in seen:
                raise DatasetError(
                    f"duplicate record id {record.record_id!r}"
                )
            seen.add(record.record_id)
        for record in staged:
            self._by_id[record.record_id] = record

    def remove(self, record_id: str) -> Record:
        """Drop and return one record; unknown ids raise ``KeyError``."""
        return self._by_id.pop(record_id)

    def allocate_id(self, prefix: str = "r") -> str:
        """A fresh id no current member uses (monotonic per store)."""
        while True:
            self._allocated += 1
            candidate = f"{prefix}{self._allocated}"
            if candidate not in self._by_id:
                return candidate

    def snapshot(self, name: str | None = None) -> Dataset:
        """The current membership frozen as a :class:`Dataset`."""
        return Dataset(self._by_id.values(), name=name or self.name)

    def snapshot_state(self) -> dict:
        """The store as a JSON-serialisable state dict.

        Captures everything :meth:`from_snapshot_state` needs to
        rebuild a behaviourally identical store: records in insertion
        order (order matters — the online indexes rebuild from it and
        their blocks are insertion-order sensitive) and the
        :meth:`allocate_id` counter, so a restored store never re-hands
        an id allocated before the snapshot.
        """
        return {
            "name": self.name,
            "allocated": self._allocated,
            "records": [
                [r.record_id, dict(r.fields), r.entity_id]
                for r in self._by_id.values()
            ],
        }

    @classmethod
    def from_snapshot_state(cls, state: dict) -> "RecordStore":
        """Rebuild a store from :meth:`snapshot_state` output."""
        try:
            records = [
                Record(rid, fields, entity_id=entity)
                for rid, fields, entity in state["records"]
            ]
            store = cls(records, name=state["name"])
            store._allocated = int(state["allocated"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"malformed record-store snapshot: {exc}"
            ) from exc
        return store
