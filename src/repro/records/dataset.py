"""The :class:`Dataset` container.

A dataset is an ordered collection of :class:`~repro.records.Record`
objects with unique ids, plus cached ground-truth structures used by the
evaluation measures (PC needs ``Ωtp``; RR needs ``|Ω|``).
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.records.ground_truth import Pair, entity_clusters, true_match_pairs
from repro.records.record import Record


class Dataset:
    """An ordered, immutable collection of records.

    Parameters
    ----------
    records:
        The records; ids must be unique.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(self, records: Iterable[Record], name: str = "dataset") -> None:
        self._records: tuple[Record, ...] = tuple(records)
        self.name = name
        seen: set[str] = set()
        for record in self._records:
            if record.record_id in seen:
                raise DatasetError(f"duplicate record id {record.record_id!r}")
            seen.add(record.record_id)
        self._by_id = {r.record_id: r for r in self._records}

    # -- collection protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    @property
    def records(self) -> Sequence[Record]:
        return self._records

    @property
    def record_ids(self) -> list[str]:
        return list(self._ids)

    # -- integer id codec -----------------------------------------------------

    @cached_property
    def _index_by_id(self) -> dict[str, int]:
        return {r.record_id: i for i, r in enumerate(self._records)}

    @cached_property
    def _ids(self) -> list[str]:
        return [r.record_id for r in self._records]

    def index_of(self, record_id: str) -> int:
        """Contiguous ``int`` index of a record (dataset order)."""
        try:
            return self._index_by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def encode_ids(self, record_ids: Iterable[str]) -> np.ndarray:
        """Record ids -> contiguous ``int32`` indices (dataset order).

        Raises
        ------
        DatasetError
            If any id does not belong to the dataset.
        """
        index = self._index_by_id
        count = len(record_ids) if hasattr(record_ids, "__len__") else -1
        try:
            return np.fromiter(
                (index[rid] for rid in record_ids), dtype=np.int32, count=count
            )
        except KeyError as exc:
            raise DatasetError(f"no record with id {exc.args[0]!r}") from None

    def decode_ids(self, indices: Iterable[int]) -> list[str]:
        """Inverse of :meth:`encode_ids`."""
        ids = self._ids
        return [ids[i] for i in np.asarray(indices).tolist()]

    # -- ground truth ---------------------------------------------------------

    @cached_property
    def true_matches(self) -> set[Pair]:
        """The set ``Ωtp`` of labelled true-match pairs."""
        return true_match_pairs(self._records)

    @cached_property
    def true_match_keys(self) -> np.ndarray:
        """``Ωtp`` as sorted ``uint64`` pair keys over the id codec.

        Derived directly from the entity clusters (no Python pair set),
        and cached so repeated evaluations — tuning sweeps, the
        evaluation runner — never re-derive the ground truth.
        """
        from repro.records.pairs import enumerate_csr_pairs, unique_pair_keys

        index = self._index_by_id
        members = [
            [index[rid] for rid in cluster]
            for cluster in self.clusters.values()
            if len(cluster) >= 2
        ]
        if not members:
            return np.empty(0, dtype=np.uint64)
        offsets = np.zeros(len(members) + 1, dtype=np.int64)
        np.cumsum([len(m) for m in members], out=offsets[1:])
        indices = np.fromiter(
            (i for m in members for i in m), dtype=np.int32, count=int(offsets[-1])
        )
        left, right = enumerate_csr_pairs(offsets, indices)
        return unique_pair_keys(left, right)

    @cached_property
    def clusters(self) -> dict[str, list[str]]:
        """Record ids grouped by ground-truth entity."""
        return entity_clusters(self._records)

    @property
    def num_true_matches(self) -> int:
        return int(self.true_match_keys.size)

    @property
    def total_pairs(self) -> int:
        """``|Ω|``: the number of distinct record pairs in the dataset."""
        n = len(self._records)
        return n * (n - 1) // 2

    # -- attribute columns ----------------------------------------------------

    @cached_property
    def _attribute_codes(self) -> dict[str, tuple[np.ndarray, list[str]]]:
        return {}

    def attribute_codes(self, attribute: str) -> tuple[np.ndarray, list[str]]:
        """``(codes, uniques)`` factorization of one attribute column.

        ``codes[i]`` indexes into ``uniques`` (sorted distinct values);
        cached per attribute so batch matchers gather each column once.
        """
        cached = self._attribute_codes.get(attribute)
        if cached is None:
            values = np.asarray(
                [r.get(attribute) for r in self._records], dtype=object
            )
            if values.size:
                uniques, codes = np.unique(values, return_inverse=True)
                cached = (codes.astype(np.int64), uniques.tolist())
            else:
                cached = (np.empty(0, dtype=np.int64), [])
            self._attribute_codes[attribute] = cached
        return cached

    def is_true_match(self, id1: str, id2: str) -> bool:
        """True when both records are labelled with the same entity."""
        e1 = self._by_id[id1].entity_id
        e2 = self._by_id[id2].entity_id
        return e1 is not None and e1 == e2

    # -- derived datasets -----------------------------------------------------

    def subset(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """Dataset restricted to ``record_ids`` (order preserved)."""
        wanted = set(record_ids)
        kept = [r for r in self._records if r.record_id in wanted]
        return Dataset(kept, name=name or f"{self.name}-subset")

    def sample(self, n: int, seed: int = 0, name: str | None = None) -> "Dataset":
        """Deterministic random sample of ``n`` records."""
        from repro.utils.rand import rng_from_seed

        if n > len(self._records):
            raise DatasetError(
                f"cannot sample {n} records from {len(self._records)}"
            )
        rng = rng_from_seed(seed, "dataset-sample", self.name, n)
        chosen = rng.sample(list(self._records), n)
        return Dataset(chosen, name=name or f"{self.name}-sample{n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, records={len(self)}, "
            f"entities={len(self.clusters)})"
        )


class RecordStore:
    """A mutable, ordered record collection — the resolver's corpus.

    Where :class:`Dataset` is frozen at construction, a store accepts
    :meth:`add`/:meth:`remove` over its lifetime (the online resolver
    keeps it aligned with its blocking index) and can :meth:`snapshot`
    the current membership into an immutable :class:`Dataset` at any
    point, preserving insertion order. Ids must stay unique across the
    store's whole history-free membership; :meth:`allocate_id` hands
    out fresh ids for late arrivals that come without one.
    """

    def __init__(
        self, records: Iterable[Record] = (), name: str = "store"
    ) -> None:
        self.name = name
        self._by_id: dict[str, Record] = {}
        self._allocated = 0
        self.add_many(records)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._by_id.values())

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def add(self, record: Record) -> None:
        """Insert one record; duplicate ids raise :class:`DatasetError`."""
        if record.record_id in self._by_id:
            raise DatasetError(f"duplicate record id {record.record_id!r}")
        self._by_id[record.record_id] = record

    def add_many(self, records: Iterable[Record]) -> None:
        """Insert records in order; the store is unchanged on failure."""
        staged = list(records)
        seen: set[str] = set()
        for record in staged:
            if record.record_id in self._by_id or record.record_id in seen:
                raise DatasetError(
                    f"duplicate record id {record.record_id!r}"
                )
            seen.add(record.record_id)
        for record in staged:
            self._by_id[record.record_id] = record

    def remove(self, record_id: str) -> Record:
        """Drop and return one record; unknown ids raise ``KeyError``."""
        return self._by_id.pop(record_id)

    def allocate_id(self, prefix: str = "r") -> str:
        """A fresh id no current member uses (monotonic per store)."""
        while True:
            self._allocated += 1
            candidate = f"{prefix}{self._allocated}"
            if candidate not in self._by_id:
                return candidate

    def snapshot(self, name: str | None = None) -> Dataset:
        """The current membership frozen as a :class:`Dataset`."""
        return Dataset(self._by_id.values(), name=name or self.name)

    def snapshot_state(self) -> dict:
        """The store as a JSON-serialisable state dict.

        Captures everything :meth:`from_snapshot_state` needs to
        rebuild a behaviourally identical store: records in insertion
        order (order matters — the online indexes rebuild from it and
        their blocks are insertion-order sensitive) and the
        :meth:`allocate_id` counter, so a restored store never re-hands
        an id allocated before the snapshot.
        """
        return {
            "name": self.name,
            "allocated": self._allocated,
            "records": [
                [r.record_id, dict(r.fields), r.entity_id]
                for r in self._by_id.values()
            ],
        }

    @classmethod
    def from_snapshot_state(cls, state: dict) -> "RecordStore":
        """Rebuild a store from :meth:`snapshot_state` output."""
        try:
            records = [
                Record(rid, fields, entity_id=entity)
                for rid, fields, entity in state["records"]
            ]
            store = cls(records, name=state["name"])
            store._allocated = int(state["allocated"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"malformed record-store snapshot: {exc}"
            ) from exc
        return store
