"""The :class:`Dataset` container.

A dataset is an ordered collection of :class:`~repro.records.Record`
objects with unique ids, plus cached ground-truth structures used by the
evaluation measures (PC needs ``Ωtp``; RR needs ``|Ω|``).
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

from repro.errors import DatasetError
from repro.records.ground_truth import Pair, entity_clusters, true_match_pairs
from repro.records.record import Record


class Dataset:
    """An ordered, immutable collection of records.

    Parameters
    ----------
    records:
        The records; ids must be unique.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(self, records: Iterable[Record], name: str = "dataset") -> None:
        self._records: tuple[Record, ...] = tuple(records)
        self.name = name
        seen: set[str] = set()
        for record in self._records:
            if record.record_id in seen:
                raise DatasetError(f"duplicate record id {record.record_id!r}")
            seen.add(record.record_id)
        self._by_id = {r.record_id: r for r in self._records}

    # -- collection protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id!r}") from None

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    @property
    def records(self) -> Sequence[Record]:
        return self._records

    @property
    def record_ids(self) -> list[str]:
        return [r.record_id for r in self._records]

    # -- ground truth ---------------------------------------------------------

    @cached_property
    def true_matches(self) -> set[Pair]:
        """The set ``Ωtp`` of labelled true-match pairs."""
        return true_match_pairs(self._records)

    @cached_property
    def clusters(self) -> dict[str, list[str]]:
        """Record ids grouped by ground-truth entity."""
        return entity_clusters(self._records)

    @property
    def num_true_matches(self) -> int:
        return len(self.true_matches)

    @property
    def total_pairs(self) -> int:
        """``|Ω|``: the number of distinct record pairs in the dataset."""
        n = len(self._records)
        return n * (n - 1) // 2

    def is_true_match(self, id1: str, id2: str) -> bool:
        """True when both records are labelled with the same entity."""
        e1 = self._by_id[id1].entity_id
        e2 = self._by_id[id2].entity_id
        return e1 is not None and e1 == e2

    # -- derived datasets -----------------------------------------------------

    def subset(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """Dataset restricted to ``record_ids`` (order preserved)."""
        wanted = set(record_ids)
        kept = [r for r in self._records if r.record_id in wanted]
        return Dataset(kept, name=name or f"{self.name}-subset")

    def sample(self, n: int, seed: int = 0, name: str | None = None) -> "Dataset":
        """Deterministic random sample of ``n`` records."""
        from repro.utils.rand import rng_from_seed

        if n > len(self._records):
            raise DatasetError(
                f"cannot sample {n} records from {len(self._records)}"
            )
        rng = rng_from_seed(seed, "dataset-sample", self.name, n)
        chosen = rng.sample(list(self._records), n)
        return Dataset(chosen, name=name or f"{self.name}-sample{n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, records={len(self)}, "
            f"entities={len(self.clusters)})"
        )
