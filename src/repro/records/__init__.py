"""Record and dataset model with ground-truth bookkeeping."""

from repro.records.record import Record
from repro.records.dataset import Dataset
from repro.records.ground_truth import (
    entity_clusters,
    sorted_pair,
    true_match_pairs,
)
from repro.records.io import read_csv, read_pairs_csv, write_csv, write_pairs_csv

__all__ = [
    "Record",
    "Dataset",
    "sorted_pair",
    "true_match_pairs",
    "entity_clusters",
    "read_csv",
    "write_csv",
    "read_pairs_csv",
    "write_pairs_csv",
]
