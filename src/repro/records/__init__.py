"""Record and dataset model with ground-truth bookkeeping."""

from repro.records.record import Record
from repro.records.dataset import (
    DATASET_ROLES,
    Dataset,
    LinkedCorpus,
    RecordStore,
)
from repro.records.ground_truth import (
    entity_clusters,
    sorted_pair,
    true_match_pairs,
)
from repro.records.io import (
    read_csv,
    read_linked_csv,
    read_pairs_csv,
    write_csv,
    write_linked_csv,
    write_pairs_csv,
)
from repro.records.pairs import (
    decode_pair_keys,
    encode_bipartite_keys,
    encode_pair_keys,
    enumerate_csr_cross_pairs,
    enumerate_csr_pairs,
    pairs_from_keys,
    unique_bipartite_keys,
    unique_pair_keys,
)

__all__ = [
    "Record",
    "Dataset",
    "LinkedCorpus",
    "DATASET_ROLES",
    "RecordStore",
    "sorted_pair",
    "true_match_pairs",
    "entity_clusters",
    "encode_pair_keys",
    "encode_bipartite_keys",
    "decode_pair_keys",
    "pairs_from_keys",
    "enumerate_csr_pairs",
    "enumerate_csr_cross_pairs",
    "unique_pair_keys",
    "unique_bipartite_keys",
    "read_csv",
    "write_csv",
    "read_linked_csv",
    "write_linked_csv",
    "read_pairs_csv",
    "write_pairs_csv",
]
