"""Record and dataset model with ground-truth bookkeeping."""

from repro.records.record import Record
from repro.records.dataset import Dataset, RecordStore
from repro.records.ground_truth import (
    entity_clusters,
    sorted_pair,
    true_match_pairs,
)
from repro.records.io import read_csv, read_pairs_csv, write_csv, write_pairs_csv
from repro.records.pairs import (
    decode_pair_keys,
    encode_pair_keys,
    enumerate_csr_pairs,
    pairs_from_keys,
    unique_pair_keys,
)

__all__ = [
    "Record",
    "Dataset",
    "RecordStore",
    "sorted_pair",
    "true_match_pairs",
    "entity_clusters",
    "encode_pair_keys",
    "decode_pair_keys",
    "pairs_from_keys",
    "enumerate_csr_pairs",
    "unique_pair_keys",
    "read_csv",
    "write_csv",
    "read_pairs_csv",
    "write_pairs_csv",
]
