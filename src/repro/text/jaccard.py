"""Jaccard and Dice set similarities over tokens and q-grams."""

from __future__ import annotations

from typing import AbstractSet

from repro.text.qgrams import qgram_set


def jaccard_similarity(set1: AbstractSet, set2: AbstractSet) -> float:
    """Jaccard coefficient ``|A ∩ B| / |A ∪ B|``.

    Two empty sets are defined to have similarity 1.0 (identical).
    """
    if not set1 and not set2:
        return 1.0
    union = len(set1 | set2)
    if union == 0:
        return 1.0
    return len(set1 & set2) / union


def dice_similarity(set1: AbstractSet, set2: AbstractSet) -> float:
    """Dice coefficient ``2|A ∩ B| / (|A| + |B|)``.

    Used as the "bigram" string comparator of the survey when applied to
    2-gram sets.
    """
    total = len(set1) + len(set2)
    if total == 0:
        return 1.0
    return 2.0 * len(set1 & set2) / total


def qgram_jaccard(s1: str, s2: str, q: int, *, padded: bool = False) -> float:
    """Jaccard similarity of the q-gram sets of two strings."""
    return jaccard_similarity(qgram_set(s1, q, padded=padded), qgram_set(s2, q, padded=padded))


def bigram_similarity(s1: str, s2: str) -> float:
    """Dice similarity over 2-gram sets (the survey's *bigram* comparator)."""
    return dice_similarity(qgram_set(s1, 2), qgram_set(s2, 2))
