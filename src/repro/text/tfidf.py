"""TF-IDF vectors and cosine similarity.

Canopy clustering (the CaTh / CaNN baselines) optionally compares
records with TF-IDF cosine over q-gram tokens, matching the survey's
configuration.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

SparseVector = Mapping[str, float]


def cosine_similarity(v1: SparseVector, v2: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (dicts token -> weight)."""
    if not v1 or not v2:
        return 0.0
    # Iterate over the smaller vector.
    if len(v1) > len(v2):
        v1, v2 = v2, v1
    dot = sum(weight * v2.get(token, 0.0) for token, weight in v1.items())
    if dot == 0.0:
        return 0.0
    norm1 = math.sqrt(sum(w * w for w in v1.values()))
    norm2 = math.sqrt(sum(w * w for w in v2.values()))
    return dot / (norm1 * norm2)


class TfidfVectorizer:
    """Fit IDF weights on a corpus of token sequences, then vectorise.

    Uses smoothed IDF ``log((1 + N) / (1 + df)) + 1`` and L2-normalised
    TF, so vector cosines are in [0, 1].
    """

    def __init__(self) -> None:
        self._idf: dict[str, float] = {}
        self._num_docs = 0

    @property
    def is_fitted(self) -> bool:
        return self._num_docs > 0

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfidfVectorizer":
        """Learn IDF weights from an iterable of token sequences."""
        document_frequency: Counter = Counter()
        num_docs = 0
        for tokens in documents:
            num_docs += 1
            document_frequency.update(set(tokens))
        self._num_docs = num_docs
        self._idf = {
            token: math.log((1 + num_docs) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        return self

    def transform(self, tokens: Sequence[str]) -> dict[str, float]:
        """Vectorise one document; unseen tokens get the maximum IDF."""
        if not self.is_fitted:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        counts = Counter(tokens)
        default_idf = math.log((1 + self._num_docs) / 1.0) + 1.0
        vector = {
            token: count * self._idf.get(token, default_idf)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in vector.values()))
        if norm == 0.0:
            return {}
        return {token: w / norm for token, w in vector.items()}
