"""Jaro and Jaro-Winkler string similarity.

Jaro-Winkler is one of the four key comparators used by the adaptive
sorted-neighbourhood, robust suffix-array and string-map baselines in the
paper's Table 3 experiments.
"""

from __future__ import annotations


def jaro_similarity(s1: str, s2: str) -> float:
    """Jaro similarity in [0, 1].

    >>> round(jaro_similarity("martha", "marhta"), 4)
    0.9444
    """
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0

    match_window = max(len1, len2) // 2 - 1
    match_window = max(match_window, 0)

    s1_matched = [False] * len1
    s2_matched = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len2)
        for j in range(start, end):
            if s2_matched[j] or s2[j] != ch:
                continue
            s1_matched[i] = True
            s2_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matched[i]:
            continue
        while not s2_matched[k]:
            k += 1
        if s1[i] != s2[k]:
            transpositions += 1
        k += 1
    transpositions //= 2

    return (
        matches / len1 + matches / len2 + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(s1: str, s2: str, *, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix of <= 4.

    >>> jaro_winkler_similarity("abc", "abc")
    1.0
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(s1, s2)
    prefix = 0
    for ch1, ch2 in zip(s1[:4], s2[:4]):
        if ch1 != ch2:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)
