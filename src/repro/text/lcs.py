"""Longest-common-substring similarity.

The survey's LCS comparator repeatedly extracts the longest common
substring (of at least ``min_common_len`` characters), removes it from
both strings, and accumulates the removed lengths; the similarity is the
accumulated length scaled by the mean string length.
"""

from __future__ import annotations


def longest_common_substring(s1: str, s2: str) -> str:
    """Return one longest common substring (leftmost in ``s1`` on ties)."""
    if not s1 or not s2:
        return ""
    # Dynamic programming over suffix-match lengths, O(len1 * len2).
    best_len = 0
    best_end = 0  # end index in s1 (exclusive)
    previous = [0] * (len(s2) + 1)
    for i in range(1, len(s1) + 1):
        current = [0] * (len(s2) + 1)
        ch1 = s1[i - 1]
        for j in range(1, len(s2) + 1):
            if ch1 == s2[j - 1]:
                current[j] = previous[j - 1] + 1
                if current[j] > best_len:
                    best_len = current[j]
                    best_end = i
        previous = current
    return s1[best_end - best_len : best_end]


def lcs_similarity(s1: str, s2: str, *, min_common_len: int = 2) -> float:
    """Iterated longest-common-substring similarity in [0, 1].

    Common substrings shorter than ``min_common_len`` are ignored, which
    keeps unrelated strings from accruing similarity one character at a
    time.

    >>> lcs_similarity("entity resolution", "entity resolution")
    1.0
    """
    if s1 == s2:
        return 1.0
    if not s1 or not s2:
        return 0.0

    total_common = 0
    left, right = s1, s2
    while True:
        common = longest_common_substring(left, right)
        if len(common) < min_common_len:
            break
        total_common += len(common)
        left = left.replace(common, "", 1)
        right = right.replace(common, "", 1)
        if not left or not right:
            break
    denominator = (len(s1) + len(s2)) / 2.0
    return min(1.0, total_common / denominator)
