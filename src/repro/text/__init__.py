"""String normalisation, q-grams and string similarity functions.

These are the textual-similarity substrate of the framework (the paper's
"textual features"): baseline blockers compare blocking-key strings with
them, and the minhash pipeline shingles records into q-gram sets.
"""

from repro.text.normalize import normalize
from repro.text.qgrams import qgram_multiset, qgram_set, qgrams
from repro.text.jaccard import dice_similarity, jaccard_similarity, qgram_jaccard
from repro.text.levenshtein import (
    edit_distance,
    edit_distances,
    edit_similarities,
    edit_similarity,
)
from repro.text.jaro import jaro_similarity, jaro_winkler_similarity
from repro.text.lcs import longest_common_substring, lcs_similarity
from repro.text.tfidf import TfidfVectorizer, cosine_similarity
from repro.text.similarity import available_similarities, get_similarity
from repro.text.phonetic import nysiis, soundex

__all__ = [
    "normalize",
    "qgrams",
    "qgram_set",
    "qgram_multiset",
    "jaccard_similarity",
    "qgram_jaccard",
    "dice_similarity",
    "edit_distance",
    "edit_distances",
    "edit_similarities",
    "edit_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "longest_common_substring",
    "lcs_similarity",
    "TfidfVectorizer",
    "cosine_similarity",
    "get_similarity",
    "available_similarities",
    "soundex",
    "nysiis",
]
