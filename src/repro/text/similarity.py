"""Named registry of string similarity functions.

The Table 3 baselines are parameterised by comparator name (the paper
uses Jaro-Winkler, bigram, edit-distance and longest common substring for
ASor, RSuA, StMT and StMNN). This registry maps those names to callables
``(str, str) -> float`` in [0, 1].
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.errors import ConfigurationError
from repro.text.jaccard import bigram_similarity, qgram_jaccard
from repro.text.jaro import jaro_similarity, jaro_winkler_similarity
from repro.text.lcs import lcs_similarity
from repro.text.levenshtein import edit_similarity

StringSimilarity = Callable[[str, str], float]

_REGISTRY: dict[str, StringSimilarity] = {
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "edit": edit_similarity,
    "bigram": bigram_similarity,
    "lcs": lcs_similarity,
    "jaccard_q2": partial(qgram_jaccard, q=2),
    "jaccard_q3": partial(qgram_jaccard, q=3),
    "exact": lambda s1, s2: 1.0 if s1 == s2 else 0.0,
}

#: The four comparators the paper sweeps for ASor / RSuA / StMT / StMNN.
PAPER_COMPARATORS = ("jaro_winkler", "bigram", "edit", "lcs")


def available_similarities() -> list[str]:
    """Names accepted by :func:`get_similarity`."""
    return sorted(_REGISTRY)


def get_similarity(name: str) -> StringSimilarity:
    """Look up a similarity function by name.

    Raises
    ------
    ConfigurationError
        If the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_similarities())
        raise ConfigurationError(
            f"unknown similarity {name!r}; known: {known}"
        ) from None
