"""Phonetic encodings: Soundex and NYSIIS.

Traditional blocking (the survey's TBlo) classically groups records by
the *phonetic encoding* of a name rather than the raw string, so "Smith"
and "Smyth" share a block. Both algorithms below follow the standard
published rules.
"""

from __future__ import annotations

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}

_VOWELISH = set("aeiouyhw")


def soundex(name: str, *, length: int = 4) -> str:
    """American Soundex code (letter + digits, zero-padded).

    >>> soundex("Robert"), soundex("Rupert")
    ('R163', 'R163')
    >>> soundex("smith") == soundex("smyth")
    True
    """
    letters = [ch for ch in name.lower() if ch.isalpha()]
    if not letters:
        return "0" * length
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == length:
                break
        # 'h' and 'w' do not reset the previous code; vowels do.
        if ch not in "hw":
            previous = digit
    return ("".join(code) + "0" * length)[:length]


def nysiis(name: str) -> str:
    """NYSIIS phonetic code (New York State Identification System).

    >>> nysiis("knight") == nysiis("night")
    True
    """
    letters = [ch for ch in name.lower() if ch.isalpha()]
    if not letters:
        return ""
    word = "".join(letters)

    # Initial-letter transformations.
    for prefix, replacement in (
        ("mac", "mcc"), ("kn", "nn"), ("k", "c"), ("ph", "ff"),
        ("pf", "ff"), ("sch", "sss"),
    ):
        if word.startswith(prefix):
            word = replacement + word[len(prefix):]
            break
    # Terminal transformations.
    for suffix, replacement in (
        ("ee", "y"), ("ie", "y"), ("dt", "d"), ("rt", "d"),
        ("rd", "d"), ("nt", "d"), ("nd", "d"),
    ):
        if word.endswith(suffix):
            word = word[: -len(suffix)] + replacement
            break

    first = word[0]
    encoded = [first]
    i = 1
    while i < len(word):
        ch = word[i]
        chunk = ch
        if word[i : i + 2] == "ev":
            chunk, step = "af", 2
        elif ch in "aeiou":
            chunk, step = "a", 1
        elif ch == "q":
            chunk, step = "g", 1
        elif ch == "z":
            chunk, step = "s", 1
        elif ch == "m":
            chunk, step = "n", 1
        elif word[i : i + 2] == "kn":
            chunk, step = "n", 2
        elif ch == "k":
            chunk, step = "c", 1
        elif word[i : i + 3] == "sch":
            chunk, step = "sss", 3
        elif word[i : i + 2] == "ph":
            chunk, step = "ff", 2
        elif ch == "h" and (
            word[i - 1] not in "aeiou"
            or (i + 1 < len(word) and word[i + 1] not in "aeiou")
        ):
            chunk, step = word[i - 1], 1
        elif ch == "w" and word[i - 1] in "aeiou":
            chunk, step = word[i - 1], 1
        else:
            step = 1
        for out in chunk:
            if out != encoded[-1]:
                encoded.append(out)
        i += step

    result = "".join(encoded)
    # Terminal cleanup: drop trailing s / a, turn trailing ay into y.
    if result.endswith("s") and len(result) > 1:
        result = result[:-1]
    if result.endswith("ay"):
        result = result[:-2] + "y"
    if result.endswith("a") and len(result) > 1:
        result = result[:-1]
    return result.upper()
