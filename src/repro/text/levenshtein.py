"""Levenshtein edit distance and its normalised similarity.

Two engines: the classic per-pair two-row DP (:func:`edit_distance`)
and a batch kernel (:func:`edit_distances`) that vectorizes the DP
across many pairs at once. The batch kernel removes the inner-loop
dependency with the prefix-min identity

    dp[i][j] = min(cand[j], dp[i][j-1] + 1)
             = j + running_min(cand[k] - k)   for k <= j,

where ``cand[j] = min(dp[i-1][j] + 1, dp[i-1][j-1] + sub)`` depends
only on the previous row — so each DP row is one ``np.minimum.
accumulate`` over (batch × row) arrays, grouped by (|s1|, |s2|) length
class. Distances are identical to the per-pair DP; an optional ``band``
restricts the computation to cells with ``|i - j| <= band`` (exact
whenever the true distance is within the band — the classic banded-DP
cutoff for "are these within b edits?").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def edit_distance(s1: str, s2: str) -> int:
    """Classic Levenshtein distance with O(min(m, n)) memory.

    >>> edit_distance("kitten", "sitting")
    3
    """
    if s1 == s2:
        return 0
    # Keep the shorter string in the inner dimension.
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    if not s2:
        return len(s1)

    previous = list(range(len(s2) + 1))
    for i, ch1 in enumerate(s1, start=1):
        current = [i]
        for j, ch2 in enumerate(s2, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (0 if ch1 == ch2 else 1)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def edit_similarity(s1: str, s2: str) -> float:
    """Similarity ``1 - d(s1, s2) / max(|s1|, |s2|)`` in [0, 1].

    Two empty strings have similarity 1.0.
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(s1, s2) / longest


def _codepoint_matrix(strings: Sequence[str], length: int) -> np.ndarray:
    """(m, length) uint32 codepoints of equal-length strings."""
    joined = "".join(strings)
    return np.frombuffer(
        joined.encode("utf-32-le"), dtype=np.uint32
    ).reshape(len(strings), length)


def _class_distances(
    lefts: Sequence[str],
    rights: Sequence[str],
    n1: int,
    n2: int,
    band: int | None,
) -> np.ndarray:
    """Banded-DP distances of one (|s1|, |s2|) length class, batched."""
    m = len(lefts)
    if n1 == 0:
        return np.full(m, n2, dtype=np.int64)
    if n2 == 0:
        return np.full(m, n1, dtype=np.int64)
    a = _codepoint_matrix(lefts, n1)
    b = _codepoint_matrix(rights, n2)
    # Cells outside the band are pinned to an unreachable cost; any
    # value > max(n1, n2) works since a real distance never exceeds it.
    inf = np.int64(n1 + n2 + 1)
    columns = np.arange(n2 + 1, dtype=np.int64)
    previous = np.broadcast_to(columns, (m, n2 + 1)).copy()
    if band is not None and band < n2:
        previous[:, band + 1 :] = inf
    cand = np.empty((m, n2 + 1), dtype=np.int64)
    for i in range(1, n1 + 1):
        sub = (a[:, i - 1 : i] != b).astype(np.int64)
        cand[:, 0] = i if band is None or i <= band else inf
        np.minimum(previous[:, 1:] + 1, previous[:, :-1] + sub, out=cand[:, 1:])
        # dp[i][j] = j + min_{k<=j}(cand[k] - k), via one accumulate.
        current = np.minimum.accumulate(cand - columns, axis=1) + columns
        if band is not None:
            outside = np.abs(columns - i) > band
            if outside.any():
                current[:, outside] = inf
        previous = current
    return previous[:, n2]


def edit_distances(
    lefts: Sequence[str],
    rights: Sequence[str],
    *,
    band: int | None = None,
) -> np.ndarray:
    """Levenshtein distances of many string pairs in one batched pass.

    Pairs are grouped by (|s1|, |s2|) length class and each class runs
    the vectorized prefix-min DP (module docstring); results align with
    the input order and are identical to :func:`edit_distance` per
    pair. With ``band`` set, only cells within ``band`` of the diagonal
    are computed: the result is exact whenever the true distance is
    ``<= band``, and otherwise some value ``> band`` (callers testing
    "within b edits?" compare against the band; callers needing exact
    large distances leave ``band=None``).
    """
    if len(lefts) != len(rights):
        raise ValueError(
            f"length mismatch: {len(lefts)} left vs {len(rights)} right"
        )
    if band is not None and band < 0:
        raise ValueError(f"band must be >= 0, got {band}")
    out = np.empty(len(lefts), dtype=np.int64)
    classes: dict[tuple[int, int], list[int]] = {}
    for row, (s1, s2) in enumerate(zip(lefts, rights)):
        classes.setdefault((len(s1), len(s2)), []).append(row)
    for (n1, n2), rows in classes.items():
        # The band prunes nothing when it spans the full length gap —
        # and the pinned boundary would misreport |n1 - n2| > band
        # cases if left unmasked, so those classes short-circuit here.
        if band is not None and abs(n1 - n2) > band:
            out[rows] = n1 + n2 + 1
            continue
        out[rows] = _class_distances(
            [lefts[r] for r in rows], [rights[r] for r in rows],
            n1, n2, band,
        )
    return out


def edit_similarities(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Batch form of :func:`edit_similarity`, aligned with the inputs.

    Bitwise identical to the per-pair path: the same integer distance
    divided by the same ``max(|s1|, |s2|)``.
    """
    distances = edit_distances(lefts, rights)
    longest = np.fromiter(
        (max(len(a), len(b)) for a, b in zip(lefts, rights)),
        dtype=np.int64,
        count=len(lefts),
    )
    ratios = np.zeros(distances.size, dtype=np.float64)
    np.divide(distances, longest, out=ratios, where=longest > 0)
    return 1.0 - ratios
