"""Levenshtein edit distance and its normalised similarity."""

from __future__ import annotations


def edit_distance(s1: str, s2: str) -> int:
    """Classic Levenshtein distance with O(min(m, n)) memory.

    >>> edit_distance("kitten", "sitting")
    3
    """
    if s1 == s2:
        return 0
    # Keep the shorter string in the inner dimension.
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    if not s2:
        return len(s1)

    previous = list(range(len(s2) + 1))
    for i, ch1 in enumerate(s1, start=1):
        current = [i]
        for j, ch2 in enumerate(s2, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (0 if ch1 == ch2 else 1)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def edit_similarity(s1: str, s2: str) -> float:
    """Similarity ``1 - d(s1, s2) / max(|s1|, |s2|)`` in [0, 1].

    Two empty strings have similarity 1.0.
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(s1, s2) / longest
