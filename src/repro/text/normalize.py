"""Text normalisation applied before shingling and key construction."""

from __future__ import annotations

import re

_WHITESPACE = re.compile(r"\s+")
_PUNCTUATION = re.compile(r"[^\w\s]")


def normalize(
    text: str,
    *,
    lowercase: bool = True,
    strip_punctuation: bool = True,
    collapse_whitespace: bool = True,
) -> str:
    """Normalise a string for comparison.

    The default pipeline lower-cases, removes punctuation and collapses
    runs of whitespace — the conventional preprocessing for blocking keys
    (Christen, *Data Matching*, 2012).

    >>> normalize("  The Cascade-Correlation  Learning, Architecture ")
    'the cascade correlation learning architecture'
    """
    result = text
    if lowercase:
        result = result.lower()
    if strip_punctuation:
        result = _PUNCTUATION.sub(" ", result)
    if collapse_whitespace:
        result = _WHITESPACE.sub(" ", result).strip()
    return result
