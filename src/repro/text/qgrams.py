"""Character q-gram extraction.

q-grams (also called n-grams or shingles) are overlapping substrings of
length ``q``. The paper shingles records into q-grams before minhashing
(Section 5.1) and tunes ``q`` per dataset from the similarity
distribution of true matches (Section 6.1: q=4 for Cora, q=2 for
NC Voter).
"""

from __future__ import annotations

from collections import Counter

#: Character used to pad strings when ``padded=True``. Normalisation
#: strips punctuation, so this sentinel cannot occur in normalised text.
PAD_CHAR = "#"


def qgrams(text: str, q: int, *, padded: bool = False) -> list[str]:
    """Return the list of q-grams of ``text`` in order of occurrence.

    Parameters
    ----------
    text:
        Input string (normalise first if desired).
    q:
        Gram length, at least 1.
    padded:
        When true, the string is padded with ``q - 1`` sentinel
        characters on both ends, so boundary characters appear in as
        many grams as interior ones.

    Strings shorter than ``q`` yield the whole string as a single gram
    (when non-empty), which keeps very short values comparable.

    >>> qgrams("wang", 2)
    ['wa', 'an', 'ng']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not text:
        return []
    if padded:
        pad = PAD_CHAR * (q - 1)
        text = f"{pad}{text}{pad}"
    if len(text) < q:
        return [text]
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_set(text: str, q: int, *, padded: bool = False) -> frozenset[str]:
    """The set of distinct q-grams of ``text``."""
    return frozenset(qgrams(text, q, padded=padded))


def qgram_multiset(text: str, q: int, *, padded: bool = False) -> Counter:
    """The multiset (Counter) of q-grams of ``text``."""
    return Counter(qgrams(text, q, padded=padded))
