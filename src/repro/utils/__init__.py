"""Small shared utilities: seeded randomness, universal hashing,
bounded caching, and thread-/process-parallel execution (including
the persistent :class:`~repro.utils.parallel.ShardPool`)."""

from repro.utils.rand import derive_seed, rng_from_seed
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily, stable_hash
from repro.utils.cache import LRUCache
from repro.utils.parallel import (
    ShardPool,
    chunk_spans,
    map_processes,
    resolve_processes,
    resolve_workers,
    run_chunked,
)

__all__ = [
    "derive_seed",
    "rng_from_seed",
    "MERSENNE_PRIME_61",
    "UniversalHashFamily",
    "stable_hash",
    "LRUCache",
    "ShardPool",
    "chunk_spans",
    "map_processes",
    "resolve_processes",
    "resolve_workers",
    "run_chunked",
]
