"""Small shared utilities: seeded randomness, universal hashing,
bounded caching, thread-/process-parallel execution (including the
persistent :class:`~repro.utils.parallel.ShardPool`), retry policies
for the fault-tolerant pooled runtime, and deterministic fault
injection (:mod:`repro.utils.faults`)."""

from repro.utils.rand import derive_seed, rng_from_seed
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily, stable_hash
from repro.utils.cache import LRUCache
from repro.utils.parallel import (
    ShardPool,
    chunk_spans,
    map_processes,
    resolve_processes,
    resolve_workers,
    run_chunked,
    set_slab_integrity,
    slab_integrity_enabled,
)
from repro.utils.retry import NO_RETRY, RetryPolicy, as_retry_policy

__all__ = [
    "derive_seed",
    "rng_from_seed",
    "MERSENNE_PRIME_61",
    "UniversalHashFamily",
    "stable_hash",
    "LRUCache",
    "ShardPool",
    "chunk_spans",
    "map_processes",
    "resolve_processes",
    "resolve_workers",
    "run_chunked",
    "set_slab_integrity",
    "slab_integrity_enabled",
    "NO_RETRY",
    "RetryPolicy",
    "as_retry_policy",
]
