"""Small shared utilities: seeded randomness and universal hashing."""

from repro.utils.rand import derive_seed, rng_from_seed
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily, stable_hash

__all__ = [
    "derive_seed",
    "rng_from_seed",
    "MERSENNE_PRIME_61",
    "UniversalHashFamily",
    "stable_hash",
]
