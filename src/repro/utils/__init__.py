"""Small shared utilities: seeded randomness, universal hashing,
bounded caching, and thread-parallel chunk execution."""

from repro.utils.rand import derive_seed, rng_from_seed
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily, stable_hash
from repro.utils.cache import LRUCache
from repro.utils.parallel import chunk_spans, resolve_workers, run_chunked

__all__ = [
    "derive_seed",
    "rng_from_seed",
    "MERSENNE_PRIME_61",
    "UniversalHashFamily",
    "stable_hash",
    "LRUCache",
    "chunk_spans",
    "resolve_workers",
    "run_chunked",
]
