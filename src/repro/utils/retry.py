"""Bounded retry with capped exponential backoff.

The fault-tolerant parallel runtime (DESIGN.md, "Fault tolerance & the
degradation ladder") re-ships failed payloads instead of aborting the
map; :class:`RetryPolicy` bounds how often and how patiently it does
so. The policy is a frozen value object: attempts are bounded, the
backoff doubles per retry up to a cap, and the sleep function is
injectable so tests (and the fault-injection harness) never actually
wait.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, to retry a transient failure.

    Attributes
    ----------
    retries:
        Retry rounds *after* the first attempt (``0`` disables
        retrying entirely).
    backoff:
        Base delay in seconds before the first retry; each further
        retry doubles it.
    max_backoff:
        Cap on any single delay.
    sleep:
        The function that actually waits — injectable so tests run the
        full ladder without wall-clock cost.
    fallback_serial:
        Whether a map whose retries are exhausted (or disabled) may
        degrade to serial in-process execution of the remaining
        payloads — the final rung of the degradation ladder. With
        ``False`` the failure surfaces as a typed error instead
        (:class:`~repro.errors.PoolBrokenError` /
        :class:`~repro.errors.SlabTransportError`).
    """

    retries: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError(
                "backoff delays must be >= 0, got "
                f"backoff={self.backoff}, max_backoff={self.max_backoff}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.backoff * (2 ** attempt), self.max_backoff)

    def pause(self, attempt: int) -> None:
        """Sleep the backoff delay for retry number ``attempt``."""
        seconds = self.delay(attempt)
        if seconds > 0:
            self.sleep(seconds)


#: Policy used when recovery is explicitly disabled (``retry=0``):
#: no retries, no serial fallback — failures surface as typed errors.
NO_RETRY = RetryPolicy(retries=0, fallback_serial=False)


def as_retry_policy(retry: "RetryPolicy | int | None") -> RetryPolicy:
    """Normalise a ``retry=`` knob into a :class:`RetryPolicy`.

    ``None`` means the default self-healing policy; an integer sets the
    retry count (``0`` disables recovery entirely, including the serial
    fallback — the pre-fault-tolerance fail-fast behaviour, surfaced as
    typed errors).
    """
    if retry is None:
        return RetryPolicy()
    if isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, bool) or not isinstance(retry, int):
        raise ConfigurationError(
            f"retry must be a RetryPolicy, an int or None, got {retry!r}"
        )
    if retry == 0:
        return NO_RETRY
    return RetryPolicy(retries=retry)
