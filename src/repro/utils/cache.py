"""A minimal bounded LRU mapping.

Long-running streaming ingestion keeps memo caches alive across corpus
slabs (see :class:`repro.minhash.corpus.ShingleVocabulary`); an
unbounded dict there would grow with every distinct attribute value
ever seen. :class:`LRUCache` caps those caches: hits refresh recency,
inserts beyond capacity evict the least recently used entry. Evictions
only cost a recomputation — cached values here are pure functions of
their keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator


class LRUCache:
    """A dict-like cache holding at most ``capacity`` entries.

    ``get`` refreshes the entry's recency; ``__setitem__`` evicts the
    least recently used entry once the cache would exceed capacity.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def __getitem__(self, key: Hashable) -> Any:
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.capacity:
            data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()
