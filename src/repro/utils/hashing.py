"""Universal hashing used by minhash and the LSH index.

Minhash needs a family of approximately min-wise independent hash
functions. We use the classic multiply-add family

    h_i(x) = ((a_i * x + b_i) mod p)

with ``p`` the Mersenne prime 2^61 - 1, which is large enough that
collisions among shingle ids are negligible and small enough that numpy
``uint64`` arithmetic stays exact after a modular reduction.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.rand import rng_from_seed

#: Mersenne prime 2^61 - 1 used as the modulus of the hash family.
MERSENNE_PRIME_61 = (1 << 61) - 1


def stable_hash(value: str, *, bits: int = 61) -> int:
    """Hash a string to a stable non-negative integer of ``bits`` bits.

    Python's builtin ``hash`` is salted per process; benchmarks and tests
    need identical shingle ids across runs, so we use SHA-1.
    """
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << bits) - 1)


class UniversalHashFamily:
    """A family of ``n`` multiply-add hash functions modulo 2^61 - 1.

    Parameters
    ----------
    n:
        Number of hash functions in the family.
    seed:
        Seed for drawing the (a, b) coefficients.

    The family evaluates all ``n`` functions on a vector of inputs at
    once (used to minhash a record's shingle set in one numpy call).
    """

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one hash function, got n={n}")
        rng = rng_from_seed(seed, "universal-hash")
        self.n = n
        # a must be non-zero for the family to be universal.
        self._a = np.array(
            [rng.randrange(1, MERSENNE_PRIME_61) for _ in range(n)], dtype=np.uint64
        )
        self._b = np.array(
            [rng.randrange(0, MERSENNE_PRIME_61) for _ in range(n)], dtype=np.uint64
        )

    def min_over(self, values: np.ndarray) -> np.ndarray:
        """Return ``min_x h_i(x)`` for each function i over input values.

        ``values`` is a 1-D ``uint64`` array of shingle ids already
        reduced modulo 2^61 - 1. Result is a 1-D array of length ``n``.
        """
        if values.size == 0:
            # Empty shingle sets hash to a sentinel that never collides
            # with a real minimum (the modulus itself is unreachable).
            return np.full(self.n, MERSENNE_PRIME_61, dtype=np.uint64)
        # (n, 1) * (m,) -> (n, m); Python ints avoid uint64 overflow by
        # doing the multiply in object space only once per family: we use
        # the identity (a*x + b) mod p computed with 128-bit via float-free
        # splitting. Simpler: numpy uint64 wraps mod 2^64 which breaks the
        # algebra, so do the reduction with Python-int math on a per-call
        # object array only when n*m is small, otherwise use the split trick.
        return _modmul_add_min(self._a, self._b, values)

    def hash_matrix(self, values: np.ndarray) -> np.ndarray:
        """Return the full (n, m) matrix of hash values (used in tests)."""
        a = self._a.astype(object)[:, None]
        b = self._b.astype(object)[:, None]
        v = values.astype(object)[None, :]
        return ((a * v + b) % MERSENNE_PRIME_61).astype(np.uint64)


def _modmul_add_min(a: np.ndarray, b: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Compute ``min((a_i * x + b_i) mod p)`` exactly using 64-bit splits.

    Splits each 61-bit operand into 30/31-bit halves so every partial
    product fits in a uint64, then reduces modulo p = 2^61 - 1 using the
    Mersenne identity ``2^61 ≡ 1 (mod p)``.
    """
    p = np.uint64(MERSENNE_PRIME_61)
    x = values[None, :]  # (1, m)
    a_col = a[:, None]  # (n, 1)
    b_col = b[:, None]  # (n, 1)

    lo_mask = np.uint64((1 << 31) - 1)
    a_lo = a_col & lo_mask
    a_hi = a_col >> np.uint64(31)
    x_lo = x & lo_mask
    x_hi = x >> np.uint64(31)

    # a*x = a_hi*x_hi*2^62 + (a_hi*x_lo + a_lo*x_hi)*2^31 + a_lo*x_lo
    # Reduce each term modulo p (2^61 ≡ 1, hence 2^62 ≡ 2).
    t_hh = (a_hi * x_hi) % p  # < p, times 2^62 ≡ *2
    t_mid = (a_hi * x_lo + a_lo * x_hi) % p  # times 2^31
    t_ll = (a_lo * x_lo) % p

    term_hh = (t_hh * np.uint64(2)) % p
    # t_mid * 2^31 may exceed 64 bits: split t_mid again.
    m_lo = t_mid & lo_mask
    m_hi = t_mid >> np.uint64(31)
    # t_mid * 2^31 = m_hi*2^62 + m_lo*2^31  ->  m_hi*2 + m_lo*2^31 (mod p)
    term_mid = (m_hi * np.uint64(2) + ((m_lo << np.uint64(31)) % p)) % p

    prod = (term_hh + term_mid + t_ll) % p
    result = (prod + b_col) % p
    return result.min(axis=1)
