"""Universal hashing used by minhash and the LSH index.

Minhash needs a family of approximately min-wise independent hash
functions. We use the classic multiply-add family

    h_i(x) = ((a_i * x + b_i) mod p)

with ``p`` the Mersenne prime 2^61 - 1, which is large enough that
collisions among shingle ids are negligible and small enough that numpy
``uint64`` arithmetic stays exact after a modular reduction.

The family supports two evaluation modes:

* :meth:`UniversalHashFamily.min_over` — per-record minima, the legacy
  one-record-at-a-time path;
* :meth:`UniversalHashFamily.hash_values` — the full (rows × values)
  hash matrix over an interned shingle *vocabulary*, evaluated once per
  corpus by the batch signature engine (see DESIGN.md, "Batch signature
  engine").
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from repro.utils.rand import rng_from_seed

#: Mersenne prime 2^61 - 1 used as the modulus of the hash family.
MERSENNE_PRIME_61 = (1 << 61) - 1


#: Hard cap on the process-wide SHA-1 memo. q-gram vocabularies of even
#: web-scale corpora stay far below this, so hits stay hot, while a
#: streaming workload hashing unbounded distinct strings (the long-run
#: ingestion case — see DESIGN.md, "Parallel & streaming runtime")
#: tops out around ~35 MB of cache instead of leaking without bound.
STABLE_HASH_CACHE_SIZE = 1 << 18


@lru_cache(maxsize=STABLE_HASH_CACHE_SIZE)
def stable_hash(value: str, *, bits: int = 61) -> int:
    """Hash a string to a stable non-negative integer of ``bits`` bits.

    Python's builtin ``hash`` is salted per process; benchmarks and tests
    need identical shingle ids across runs, so we use SHA-1. The result
    is memoized with an LRU cap of :data:`STABLE_HASH_CACHE_SIZE`:
    q-grams repeat heavily across the records of a corpus, so each
    distinct gram is digested once while it stays hot, and an eviction
    only costs a re-digest — the value is a pure function of the input.
    """
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << bits) - 1)


class UniversalHashFamily:
    """A family of ``n`` multiply-add hash functions modulo 2^61 - 1.

    Parameters
    ----------
    n:
        Number of hash functions in the family.
    seed:
        Seed for drawing the (a, b) coefficients.

    The family evaluates all ``n`` functions on a vector of inputs at
    once (used to minhash a record's shingle set in one numpy call), or
    a contiguous subset of functions over a whole vocabulary (used by
    the corpus-level batch engine, which chunks over functions to bound
    memory).
    """

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one hash function, got n={n}")
        rng = rng_from_seed(seed, "universal-hash")
        self.n = n
        # a must be non-zero for the family to be universal.
        self._a = np.array(
            [rng.randrange(1, MERSENNE_PRIME_61) for _ in range(n)], dtype=np.uint64
        )
        self._b = np.array(
            [rng.randrange(0, MERSENNE_PRIME_61) for _ in range(n)], dtype=np.uint64
        )

    def min_over(self, values: np.ndarray) -> np.ndarray:
        """Return ``min_x h_i(x)`` for each function i over input values.

        ``values`` is a 1-D ``uint64`` array of shingle ids already
        reduced modulo 2^61 - 1. Result is a 1-D array of length ``n``.
        """
        if values.size == 0:
            # Empty shingle sets hash to a sentinel that never collides
            # with a real minimum (the modulus itself is unreachable).
            return np.full(self.n, MERSENNE_PRIME_61, dtype=np.uint64)
        return _modmul_add(self._a, self._b, values).min(axis=1)

    def hash_values(
        self, values: np.ndarray, lo: int = 0, hi: int | None = None
    ) -> np.ndarray:
        """The (hi - lo, m) matrix of hash values for functions lo..hi.

        This is the vocabulary-level evaluation of the batch engine:
        callers hash each distinct shingle once and take per-record
        minima by gathering columns, instead of re-evaluating the family
        per record. numpy uint64 wraps mod 2^64, which would break the
        algebra, so the multiply is done exactly with 30/31-bit splits
        (see :func:`_modmul_add`).
        """
        if hi is None:
            hi = self.n
        return _modmul_add(self._a[lo:hi], self._b[lo:hi], values)

    def hash_matrix(self, values: np.ndarray) -> np.ndarray:
        """The full (n, m) hash matrix via exact Python-int arithmetic.

        Kept as an independent object-dtype reference implementation for
        tests of the split-multiply trick; use :meth:`hash_values` in
        production code.
        """
        a = self._a.astype(object)[:, None]
        b = self._b.astype(object)[:, None]
        v = values.astype(object)[None, :]
        return ((a * v + b) % MERSENNE_PRIME_61).astype(np.uint64)


def _modmul_add(a: np.ndarray, b: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Compute the (n, m) matrix ``(a_i * x + b_i) mod p`` exactly.

    Splits each 61-bit operand into 30/31-bit halves so every partial
    product fits in a uint64, then reduces modulo p = 2^61 - 1 using the
    Mersenne identity ``2^61 ≡ 1 (mod p)``.
    """
    p = np.uint64(MERSENNE_PRIME_61)
    x = values[None, :]  # (1, m)
    a_col = a[:, None]  # (n, 1)
    b_col = b[:, None]  # (n, 1)

    lo_mask = np.uint64((1 << 31) - 1)
    a_lo = a_col & lo_mask
    a_hi = a_col >> np.uint64(31)
    x_lo = x & lo_mask
    x_hi = x >> np.uint64(31)

    # a*x = a_hi*x_hi*2^62 + (a_hi*x_lo + a_lo*x_hi)*2^31 + a_lo*x_lo
    # Reduce each term modulo p (2^61 ≡ 1, hence 2^62 ≡ 2).
    t_hh = (a_hi * x_hi) % p  # < p, times 2^62 ≡ *2
    t_mid = (a_hi * x_lo + a_lo * x_hi) % p  # times 2^31
    t_ll = (a_lo * x_lo) % p

    term_hh = (t_hh * np.uint64(2)) % p
    # t_mid * 2^31 may exceed 64 bits: split t_mid again.
    m_lo = t_mid & lo_mask
    m_hi = t_mid >> np.uint64(31)
    # t_mid * 2^31 = m_hi*2^62 + m_lo*2^31  ->  m_hi*2 + m_lo*2^31 (mod p)
    term_mid = (m_hi * np.uint64(2) + ((m_lo << np.uint64(31)) % p)) % p

    prod = (term_hh + term_mid + t_ll) % p
    return (prod + b_col) % p
