"""Deterministic randomness helpers.

Every stochastic component in the library (minhash permutations, w-way
bit choices, data generators, corruption) accepts an explicit integer
seed. These helpers derive independent child seeds from a parent seed so
that components never share random streams by accident.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, *parts: object) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a label path.

    The derivation is a SHA-256 hash of the textual representation, so it
    is stable across processes and Python versions (unlike ``hash()``).

    >>> derive_seed(42, "minhash") != derive_seed(42, "semhash")
    True
    >>> derive_seed(42, "minhash") == derive_seed(42, "minhash")
    True
    """
    material = ":".join([str(seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def rng_from_seed(seed: int, *parts: object) -> random.Random:
    """Return a :class:`random.Random` seeded from a derived child seed."""
    return random.Random(derive_seed(seed, *parts))
