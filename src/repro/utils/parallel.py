"""Thread-parallel execution of independent array chunks.

The batch signature engine splits its work over hash-function chunks
that touch disjoint output slices (see DESIGN.md, "Parallel & streaming
runtime"). Those chunks are dominated by numpy kernels — the exact
modular multiply, fancy-indexed gathers and ``np.minimum.reduceat`` —
which release the GIL on large arrays, so plain threads scale across
cores without pickling the corpus into worker processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import ConfigurationError


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers=`` argument: ``None`` means all CPUs."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1 or None, got {workers}")
    return workers


def chunk_spans(total: int, per_chunk: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(lo, hi)`` spans."""
    if per_chunk < 1:
        raise ConfigurationError(f"per_chunk must be >= 1, got {per_chunk}")
    return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def run_chunked(
    fn: Callable[[int, int], None],
    spans: Sequence[tuple[int, int]],
    workers: int | None = 1,
) -> None:
    """Run ``fn(lo, hi)`` over every span, serially or on a thread pool.

    ``fn`` must be safe to run concurrently for distinct spans (each
    span writes a disjoint output slice). Results are identical
    regardless of ``workers`` — the spans themselves define the work,
    parallelism only changes who executes them. Exceptions propagate to
    the caller.
    """
    effective = min(resolve_workers(workers), len(spans))
    if effective <= 1:
        for lo, hi in spans:
            fn(lo, hi)
        return
    with ThreadPoolExecutor(max_workers=effective) as pool:
        futures = [pool.submit(fn, lo, hi) for lo, hi in spans]
        for future in futures:
            future.result()
