"""Thread- and process-parallel execution of independent work units.

The batch signature engine splits its work over hash-function chunks
that touch disjoint output slices (see DESIGN.md, "Parallel & streaming
runtime"). Those chunks are dominated by numpy kernels — the exact
modular multiply, fancy-indexed gathers and ``np.minimum.reduceat`` —
which release the GIL on large arrays, so plain threads scale across
cores without pickling the corpus into worker processes.

The ``processes=`` runtime (DESIGN.md, "Process-sharded streaming
runtime") complements it for the GIL-bound hot loops — string
shingling, semantic interpretation, bucket grouping — by mapping
picklable payloads over a :class:`~concurrent.futures.ProcessPoolExecutor`:
record slabs and band-key shards are evaluated in worker processes and
reassembled deterministically, so any process count produces
byte-identical blocks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers=`` argument: ``None`` means all CPUs."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1 or None, got {workers}")
    return workers


def resolve_processes(processes: int | None) -> int:
    """Normalise a ``processes=`` argument: ``None`` means all CPUs."""
    if processes is None:
        return os.cpu_count() or 1
    if processes < 1:
        raise ConfigurationError(
            f"processes must be >= 1 or None, got {processes}"
        )
    return processes


def map_processes(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    processes: int | None = 1,
) -> list[Any]:
    """Map ``fn`` over payloads on a process pool, preserving order.

    ``fn`` must be a module-level function and every payload (and
    result) picklable — the contract of
    :class:`~concurrent.futures.ProcessPoolExecutor`. With
    ``processes<=1`` (or a single payload) the map runs serially in
    this process, so results are identical for every process count;
    parallelism only changes who executes the payloads. Exceptions
    propagate to the caller.
    """
    payloads = list(payloads)
    effective = min(resolve_processes(processes), len(payloads))
    if effective <= 1:
        return [fn(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=effective) as pool:
        return list(pool.map(fn, payloads))


def chunk_spans(total: int, per_chunk: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(lo, hi)`` spans."""
    if per_chunk < 1:
        raise ConfigurationError(f"per_chunk must be >= 1, got {per_chunk}")
    return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def run_chunked(
    fn: Callable[[int, int], None],
    spans: Sequence[tuple[int, int]],
    workers: int | None = 1,
) -> None:
    """Run ``fn(lo, hi)`` over every span, serially or on a thread pool.

    ``fn`` must be safe to run concurrently for distinct spans (each
    span writes a disjoint output slice). Results are identical
    regardless of ``workers`` — the spans themselves define the work,
    parallelism only changes who executes them. Exceptions propagate to
    the caller.
    """
    effective = min(resolve_workers(workers), len(spans))
    if effective <= 1:
        for lo, hi in spans:
            fn(lo, hi)
        return
    with ThreadPoolExecutor(max_workers=effective) as pool:
        futures = [pool.submit(fn, lo, hi) for lo, hi in spans]
        for future in futures:
            future.result()
