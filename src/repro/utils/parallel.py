"""Thread- and process-parallel execution of independent work units.

The batch signature engine splits its work over hash-function chunks
that touch disjoint output slices (see DESIGN.md, "Parallel & streaming
runtime"). Those chunks are dominated by numpy kernels — the exact
modular multiply, fancy-indexed gathers and ``np.minimum.reduceat`` —
which release the GIL on large arrays, so plain threads scale across
cores without pickling the corpus into worker processes.

The ``processes=`` runtime (DESIGN.md, "Process-sharded streaming
runtime") complements it for the GIL-bound hot loops — string
shingling, semantic interpretation, bucket grouping — by mapping
picklable payloads over a :class:`~concurrent.futures.ProcessPoolExecutor`:
record slabs and band-key shards are evaluated in worker processes and
reassembled deterministically, so any process count produces
byte-identical blocks.

:class:`ShardPool` (DESIGN.md, "Persistent shard pool") makes that
runtime amortisable: it owns one executor for its lifetime and
transports payloads/results through shared-memory slab files instead of
the executor's pipes, so repeated blocking calls stop paying a fresh
fork-and-pickle round per call.

The pool is also *self-healing* (DESIGN.md, "Fault tolerance & the
degradation ladder"): slab files carry length+checksum footers
validated on attach, a broken or hung executor is torn down and
rebuilt, unfinished payloads are re-shipped under a bounded
:class:`~repro.utils.retry.RetryPolicy`, a full shared-memory tmpfs
falls back to a disk-backed slab directory, and the final rung runs
the remaining payloads serially in-process — so a map returns results
byte-identical to serial execution under any single fault, and the
pool stays usable afterwards.
"""

from __future__ import annotations

import errno as _errno
import itertools
import mmap
import os
import pickle
import shutil
import struct
import tempfile
import time
import warnings
import weakref
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    PoolBrokenError,
    SlabTransportError,
)
from repro.utils import faults
from repro.utils.retry import RetryPolicy, as_retry_policy


def _available_cpus() -> int:
    """CPUs this process may actually use.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    limit a container grants, so ``None`` defaults used to oversubscribe
    constrained hosts. Prefer ``os.process_cpu_count()`` (3.13+), then
    the scheduler affinity mask, then the machine count.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        return counter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers=`` argument: ``None`` means all usable CPUs."""
    if workers is None:
        return _available_cpus()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1 or None, got {workers}")
    return workers


def resolve_processes(processes: int | None) -> int:
    """Normalise a ``processes=`` argument: ``None`` means all usable CPUs."""
    if processes is None:
        return _available_cpus()
    if processes < 1:
        raise ConfigurationError(
            f"processes must be >= 1 or None, got {processes}"
        )
    return processes


def effective_processes(
    processes: int | None, pool: "ShardPool | None" = None
) -> int:
    """Worker count a ``processes=``/``pool=`` pair resolves to.

    A pool wins: its (fixed) process count governs slab and shard
    layout, so every call site that may run on a shared pool derives
    identical work splits from it.
    """
    if pool is not None:
        return pool.processes
    return resolve_processes(processes)


#: Arrays at least this large ride as memory-mapped slab files instead
#: of pickled bytes (below it the file round-trip costs more than it
#: saves).
_MIN_SLAB_BYTES = 1 << 16

#: Per-process counter making slab file names unique within one
#: directory (combined with the pid, so parent and workers never
#: collide).
_slab_counter = itertools.count()

#: Sentinel marking a payload whose result has not been produced yet.
_PENDING = object()

#: Directory-name prefix of every pool's slab directory. The owning
#: pid follows it (``repro-shardpool-<pid>-<random>``), which is what
#: lets a later pool sweep directories whose owner died without
#: running :meth:`ShardPool.close`.
_SLAB_DIR_PREFIX = "repro-shardpool-"


def _slab_parent_dir() -> str | None:
    """Directory slab files live in: ``/dev/shm`` (a tmpfs, so slab
    traffic is memory traffic) when available, the default tmp dir
    otherwise. ``REPRO_SHARDPOOL_DIR`` overrides both — useful in
    containers whose ``/dev/shm`` is smaller than a corpus's slabs."""
    override = os.environ.get("REPRO_SHARDPOOL_DIR")
    if override:
        return override
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    return None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # EPERM and friends: someone owns that pid
        return True
    return True


def _sweep_orphan_slab_dirs(parent: str) -> None:
    """Remove slab directories whose owning process is gone.

    A crashed (or OOM-killed) parent never runs :meth:`ShardPool.close`
    and its ``repro-shardpool-<pid>-*`` directory leaks in the tmpfs
    forever. Each new pool sweeps its parent directory on construction:
    only names matching the pool prefix *and* carrying a parsable,
    provably dead pid are removed — everything else is left alone.
    """
    try:
        entries = os.listdir(parent)
    except OSError:
        return
    for name in entries:
        if not name.startswith(_SLAB_DIR_PREFIX):
            continue
        pid_part = name[len(_SLAB_DIR_PREFIX):].split("-", 1)[0]
        if not pid_part.isdigit():
            continue  # pre-fault-tolerance layout: owner unknowable
        pid = int(pid_part)
        if pid <= 0 or pid == os.getpid() or _pid_alive(pid):
            continue
        shutil.rmtree(os.path.join(parent, name), ignore_errors=True)


# ---------------------------------------------------------------------------
# Slab integrity: length+checksum footers
# ---------------------------------------------------------------------------

#: 16-byte footer appended to every slab file: magic, CRC32 of the
#: content, content length. A truncated or corrupted slab fails the
#: check on attach and raises :class:`~repro.errors.SlabTransportError`
#: instead of being read back as garbage.
_SLAB_FOOTER_MAGIC = b"RPSL"
_SLAB_FOOTER_LEN = 16

_slab_integrity = os.environ.get("REPRO_SLAB_INTEGRITY", "1") != "0"


def slab_integrity_enabled() -> bool:
    """Whether slab/spill files carry and validate integrity footers."""
    return _slab_integrity


def set_slab_integrity(enabled: bool) -> bool:
    """Toggle slab integrity process-globally; returns the previous value.

    Exists for the resilience-overhead benchmark (which times the
    pooled path with and without footers) — production code should
    leave integrity on. Pools snapshot the setting at construction, so
    toggle *before* creating the pool.
    """
    global _slab_integrity
    previous = _slab_integrity
    _slab_integrity = bool(enabled)
    return previous


#: Slabs up to this size are CRC'd in full; larger ones CRC a head and
#: a tail window instead. The failure modes slab transport actually
#: sees — ENOSPC part-writes, a worker killed mid-write, tmpfs
#: truncation — shear bytes off the end, which the exact-length field
#: and the tail window catch; a full-content pass over multi-hundred-MB
#: signature slabs would tax every healthy map for a corruption mode
#: (mid-file bit flips in RAM-backed files) nothing else in the
#: process guards against either.
_SLAB_CRC_FULL_MAX = 8 << 20
_SLAB_CRC_WINDOW = 1 << 20


def _slab_crc(data) -> int:
    if len(data) <= _SLAB_CRC_FULL_MAX:
        return zlib.crc32(data)
    return zlib.crc32(
        data[-_SLAB_CRC_WINDOW:], zlib.crc32(data[: _SLAB_CRC_WINDOW])
    )


def _slab_footer(data) -> bytes:
    return (
        _SLAB_FOOTER_MAGIC
        + struct.pack("<I", _slab_crc(data))
        + struct.pack("<Q", len(data))
    )


def _check_footer(path: str, content, footer: bytes) -> None:
    """Verify one slab footer against its content buffer (bytes or a
    memoryview — the CRC runs over the buffer without copying it)."""
    if footer[:4] != _SLAB_FOOTER_MAGIC:
        raise SlabTransportError(
            f"slab file {path} is missing its integrity footer "
            "(truncated or foreign file)", path=path,
        )
    (crc,) = struct.unpack("<I", footer[4:8])
    (length,) = struct.unpack("<Q", footer[8:16])
    if length != len(content) or crc != _slab_crc(content):
        raise SlabTransportError(
            f"slab file {path} failed its length+checksum footer "
            f"(expected {length} bytes)", path=path,
        )


def _validate_slab(path: str) -> bytes:
    """Validate ``path``'s footer; return the content bytes.

    Raises :class:`~repro.errors.SlabTransportError` on a missing,
    unreadable, truncated or checksum-failing file.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SlabTransportError(
            f"slab file {path} unreadable: {exc}", path=path, errno=exc.errno
        ) from exc
    if len(data) < _SLAB_FOOTER_LEN:
        raise SlabTransportError(
            f"slab file {path} too short for an integrity footer "
            f"({len(data)} bytes)", path=path,
        )
    content, footer = data[:-_SLAB_FOOTER_LEN], data[-_SLAB_FOOTER_LEN:]
    _check_footer(path, content, footer)
    return content


def _validate_array_slab(path: str) -> None:
    """Validate an array slab's footer without copying the file.

    Array slabs are the large ones, and the content is attached
    afterwards as a memory map anyway — so validation maps the file
    and runs the CRC over the mapping in place. On tmpfs that is one
    pass over already-resident pages instead of the full-file read
    (and allocation) :func:`_validate_slab` pays for blob slabs, whose
    bytes the caller needs regardless.
    """
    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < _SLAB_FOOTER_LEN:
                raise SlabTransportError(
                    f"slab file {path} too short for an integrity footer "
                    f"({size} bytes)", path=path,
                )
            with mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            ) as mapped:
                view = memoryview(mapped)
                content = view[: size - _SLAB_FOOTER_LEN]
                try:
                    footer = bytes(view[size - _SLAB_FOOTER_LEN :])
                    _check_footer(path, content, footer)
                finally:
                    content.release()
                    view.release()
    except OSError as exc:
        raise SlabTransportError(
            f"slab file {path} unreadable: {exc}", path=path, errno=exc.errno
        ) from exc


def append_slab_footer(path: str) -> None:
    """Seal a finished file with the magic+CRC32+length footer.

    CRCs straight over a mapping of the file's current bytes — no
    full-file read-back copy — then appends the 16-byte footer. The
    public entry point the durability layer (:mod:`repro.store`) uses
    to give checkpoint and index segment files the same integrity
    discipline as slab transport; validate with
    :func:`validate_slab_footer`.
    """
    with open(path, "rb+") as handle:
        with mmap.mmap(
            handle.fileno(), 0, access=mmap.ACCESS_READ
        ) as mapped:
            view = memoryview(mapped)
            try:
                footer = _slab_footer(view)
            finally:
                view.release()
        handle.seek(0, os.SEEK_END)
        handle.write(footer)


def validate_slab_footer(path: str) -> None:
    """Validate a footered file in place (mmap CRC, no copy).

    The public alias of the array-slab validation path; raises
    :class:`~repro.errors.SlabTransportError` on a missing, truncated
    or checksum-failing file.
    """
    _validate_array_slab(path)


def _write_array_slab(path: str, array: np.ndarray, integrity: bool) -> None:
    faults.maybe_fail("slab.enospc", path=path)
    np.save(path, array, allow_pickle=False)
    if integrity:
        append_slab_footer(path)
    faults.maybe_fail("slab.truncate", path=path)


def _write_blob_slab(path: str, blob: bytes, integrity: bool) -> None:
    faults.maybe_fail("slab.enospc", path=path)
    with open(path, "wb") as handle:
        handle.write(blob)
        if integrity:
            handle.write(_slab_footer(blob))
    faults.maybe_fail("slab.truncate", path=path)


def _read_blob_slab(path: str, integrity: bool) -> bytes:
    if integrity:
        return _validate_slab(path)
    with open(path, "rb") as handle:
        return handle.read()


class _ArraySlab:
    """Picklable reference to an array parked in a slab file.

    Only the path crosses the process boundary; :meth:`load` reattaches
    a read-only memory map, so the array's bytes move through the page
    cache (tmpfs = shared memory) instead of the executor's pipes.
    """

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self, integrity: bool = True) -> np.ndarray:
        if integrity:
            _validate_array_slab(self.path)
        try:
            return np.load(self.path, mmap_mode="r")
        except SlabTransportError:
            raise
        except Exception as exc:
            raise SlabTransportError(
                f"array slab {self.path} unreadable: {exc}", path=self.path
            ) from exc


def _new_slab_path(slab_dir: str, kind: str, ext: str = ".npy") -> str:
    return os.path.join(
        slab_dir, f"{kind}-{os.getpid()}-{next(_slab_counter)}{ext}"
    )


#: Worker-side cache of loaded interned slabs, keyed by path (paths are
#: never reused — they embed a per-process counter). Bounded: evicted
#: entries just re-read their file on the next use.
_INTERN_CACHE_CAPACITY = 16
_intern_cache: "OrderedDict[str, Any]" = OrderedDict()

#: Per-source cap on :meth:`ShardPool.set_memo` entries.
_MEMO_CAPACITY = 8


class _InternedSlab:
    """Picklable reference to a payload piece parked once per corpus.

    Unlike the per-call payload files, interned slab files persist for
    the pool's lifetime, and workers memoise the loaded object by path
    — so repeated blocking calls over the same corpus skip both the
    parent-side re-pickle and the worker-side re-unpickle of the
    record slabs.
    """

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self, integrity: bool = True) -> Any:
        cached = _intern_cache.get(self.path)
        if cached is not None:
            _intern_cache.move_to_end(self.path)
            return cached
        try:
            value = pickle.loads(_read_blob_slab(self.path, integrity))
        except SlabTransportError:
            raise
        except Exception as exc:
            raise SlabTransportError(
                f"interned slab {self.path} unreadable: {exc}", path=self.path
            ) from exc
        _intern_cache[self.path] = value
        if len(_intern_cache) > _INTERN_CACHE_CAPACITY:
            _intern_cache.popitem(last=False)
        return value


def _pack_slabs(
    value: Any, slab_dir: str, created: list[str], integrity: bool
) -> Any:
    """Replace large plain-dtype arrays in a payload/result tree with
    :class:`_ArraySlab` references, recording every file created.

    Containers with no arrays or nested containers pass through
    unchanged (the flat-tuple fast path of :func:`_unpack_slabs`).
    """
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject or value.nbytes < _MIN_SLAB_BYTES:
            return value
        path = _new_slab_path(slab_dir, "slab")
        _write_array_slab(path, value, integrity)
        created.append(path)
        return _ArraySlab(path)
    if isinstance(value, (tuple, list)):
        if not any(
            isinstance(item, (np.ndarray, tuple, list, dict)) for item in value
        ):
            return value
        packed = [
            _pack_slabs(item, slab_dir, created, integrity) for item in value
        ]
        return tuple(packed) if isinstance(value, tuple) else packed
    if isinstance(value, dict):
        return {
            key: _pack_slabs(item, slab_dir, created, integrity)
            for key, item in value.items()
        }
    return value


_SLAB_REFS = (_ArraySlab, _InternedSlab)
_SLAB_CONTAINERS = (_ArraySlab, _InternedSlab, tuple, list, dict)


def _unpack_slabs(value: Any, integrity: bool = True) -> Any:
    """Inverse of :func:`_pack_slabs`: reattach slab references.

    Containers holding neither references nor nested containers are
    returned unchanged — record-id tuples with thousands of strings
    must not be rebuilt element by element on every call.
    """
    if isinstance(value, _SLAB_REFS):
        return value.load(integrity)
    if isinstance(value, (tuple, list)):
        if not any(isinstance(item, _SLAB_CONTAINERS) for item in value):
            return value
        unpacked = [_unpack_slabs(item, integrity) for item in value]
        return tuple(unpacked) if isinstance(value, tuple) else unpacked
    if isinstance(value, dict):
        return {key: _unpack_slabs(item, integrity) for key, item in value.items()}
    return value


def _iter_interned(value: Any):
    """Yield every :class:`_InternedSlab` reference in a payload tree."""
    if isinstance(value, _InternedSlab):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _iter_interned(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_interned(item)


def _run_pool_task(task: tuple) -> Any:
    """Worker side of :meth:`ShardPool.map`.

    Loads the packed payload (inline pickle bytes for small payloads,
    a slab file otherwise), resolves array slabs into memory maps, runs
    ``fn`` and packs the result's large arrays into fresh slab files —
    only paths and small values ride the result pipe. An injected
    fault token (worker kill / task hang) executes before any work;
    slab-validation failures and a full slab directory surface as
    :class:`~repro.errors.SlabTransportError`, which the parent treats
    as transient.
    """
    fn, blob, payload_path, slab_dir, integrity, fault = task
    if fault is not None:
        faults.execute_worker_fault(fault)
    if blob is None:
        blob = _read_blob_slab(payload_path, integrity)
    result = fn(_unpack_slabs(pickle.loads(blob), integrity))
    created: list[str] = []
    try:
        return _pack_slabs(result, slab_dir, created, integrity), created
    except OSError as exc:
        # Don't strand files written before a partial packing failure.
        for path in created:
            _unlink_quietly(path)
        if exc.errno == _errno.ENOSPC:
            raise SlabTransportError(
                f"slab dir {slab_dir} out of space: {exc}",
                path=slab_dir, errno=exc.errno,
            ) from exc
        raise
    except BaseException:
        for path in created:
            _unlink_quietly(path)
        raise


def _release_interned(pool_ref, paths: list[str]) -> None:
    """Finalizer for a dead corpus: drop its parked slab files and the
    retained heal copies (see :meth:`ShardPool.intern_slabs`)."""
    pool = pool_ref()
    for path in paths:
        _unlink_quietly(path)
        if pool is not None:
            pool._intern_payloads.pop(path, None)


class ShardPool:
    """Long-lived process pool with shared-memory slab transport.

    Owns one :class:`~concurrent.futures.ProcessPoolExecutor` for its
    lifetime (workers start on the first parallel map and stay warm),
    so repeated blocking calls stop paying the fork-and-join round that
    :func:`map_processes` pays per call. Payloads and results move
    through slab files in a shared-memory directory — large arrays as
    memory-mapped ``.npy`` slabs, the rest as one pickle file per
    payload — instead of the executor's pipes. Every slab file carries
    a length+checksum footer validated on attach.

    :meth:`map` keeps the :func:`map_processes` contract: order
    preserved, serial in-process fallback for ``processes=1`` (or a
    single payload) with results identical to any parallel execution,
    exceptions propagated. On top it is *self-healing*: a broken
    executor (killed worker), a hung task past ``timeout``, or a
    corrupt slab tears the executor down, re-ships only the unfinished
    payloads under ``retry`` (a
    :class:`~repro.utils.retry.RetryPolicy`, an int retry count, or
    ``None`` for the default policy; ``0`` disables recovery and
    surfaces :class:`~repro.errors.PoolBrokenError` /
    :class:`~repro.errors.SlabTransportError` instead), and finally
    degrades to serial in-process execution — results are
    byte-identical to serial either way, and the pool stays usable. A
    full shared-memory tmpfs switches the pool to a disk-backed slab
    directory for the rest of its life (one warning).

    Use as a context manager (or call :meth:`close`); a closed pool
    raises :class:`~repro.errors.ConfigurationError` on further maps,
    so a pool shut down mid-pipeline fails loudly instead of silently
    re-forking.
    """

    def __init__(
        self,
        processes: int | None = None,
        *,
        retry: "RetryPolicy | int | None" = None,
        map_timeout: float | None = None,
    ) -> None:
        self.processes = resolve_processes(processes)
        self._retry = as_retry_policy(retry)
        if map_timeout is not None and map_timeout <= 0:
            raise ConfigurationError(
                f"map_timeout must be > 0 or None, got {map_timeout}"
            )
        self._map_timeout = map_timeout
        self._integrity = slab_integrity_enabled()
        parent = _slab_parent_dir()
        _sweep_orphan_slab_dirs(parent or tempfile.gettempdir())
        self._slab_dir = tempfile.mkdtemp(
            prefix=f"{_SLAB_DIR_PREFIX}{os.getpid()}-", dir=parent
        )
        #: Every slab directory this pool ever created (the tmpfs one
        #: plus, after an ENOSPC fallback, the disk-backed one) — all
        #: removed on close.
        self._slab_dirs = [self._slab_dir]
        self._on_disk_fallback = False
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        #: source object → {layout key: [_InternedSlab, ...]} — weak,
        #: so a corpus going away releases its parked slabs (the files
        #: linger until :meth:`close` removes the slab directory).
        self._interned: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )
        #: path → original interned payload, retained so a corrupted
        #: interned file can be rewritten in place during recovery
        #: (cheap: the slabs alias records the source object owns
        #: anyway). Entries die with their corpus via the same
        #: finalizer that unlinks the files.
        self._intern_payloads: dict[str, Any] = {}
        #: source object → {key: derived value} — weak like the slab
        #: cache; carries corpus-level state (e.g. SA-LSH's derived
        #: semantic encoder) across repeated blocking calls.
        self._memos: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def on_disk_fallback(self) -> bool:
        """Whether an ENOSPC pushed slab traffic onto a disk-backed dir."""
        return self._on_disk_fallback

    def configure(
        self,
        *,
        retry: "RetryPolicy | int | None" = None,
        map_timeout: float | None = None,
    ) -> "ShardPool":
        """Adjust the pool's fault-tolerance defaults in place.

        ``None`` leaves a knob unchanged — this is how
        :class:`~repro.core.pipeline.PipelineConfig` threads its
        ``retry``/``map_timeout`` onto a caller-owned pool without
        clobbering explicit constructor choices. Returns ``self``.
        """
        if retry is not None:
            self._retry = as_retry_policy(retry)
        if map_timeout is not None:
            if map_timeout <= 0:
                raise ConfigurationError(
                    f"map_timeout must be > 0 or None, got {map_timeout}"
                )
            self._map_timeout = map_timeout
        return self

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        timeout: float | None = None,
    ) -> list[Any]:
        """Map ``fn`` over payloads on the persistent pool, in order.

        ``fn`` must be a module-level function and payloads/results
        picklable, as for :func:`map_processes`. Arrays returned from
        workers come back as read-only memory maps over slab files —
        value-identical to the serial path's in-RAM arrays. Slab files
        are unlinked as soon as both sides are done with them (the
        maps stay valid; POSIX keeps unlinked pages mapped).

        ``timeout`` (seconds, default: the pool's ``map_timeout``)
        bounds every *attempt*: futures still pending at the deadline
        are cancelled, hung workers are terminated, and the unfinished
        payloads re-enter the recovery ladder. Genuine exceptions from
        ``fn`` are never retried — they propagate as always.
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        payloads = list(payloads)
        if timeout is None:
            timeout = self._map_timeout
        if self.processes <= 1 or len(payloads) <= 1:
            # Payloads may carry interned slab references; resolve them
            # before the in-process call, exactly as a worker would.
            return [
                fn(_unpack_slabs(payload, self._integrity))
                for payload in payloads
            ]
        policy = self._retry
        results: list[Any] = [_PENDING] * len(payloads)
        pending = list(range(len(payloads)))
        recovery: Exception | None = None
        for attempt in range(policy.retries + 1):
            if attempt:
                policy.pause(attempt - 1)
            recovery = self._map_attempt(fn, payloads, results, pending, timeout)
            pending = [i for i in pending if results[i] is _PENDING]
            if not pending:
                return results
        # Retries exhausted (or disabled): final rung of the ladder.
        if not policy.fallback_serial:
            if isinstance(recovery, SlabTransportError):
                raise recovery
            raise PoolBrokenError(
                f"shard pool map failed after {policy.retries + 1} "
                f"attempt(s): {recovery}"
            ) from recovery
        warnings.warn(
            f"shard pool recovery exhausted ({recovery}); running "
            f"{len(pending)} remaining payload(s) serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        for index in pending:
            results[index] = fn(
                _unpack_slabs(payloads[index], self._integrity)
            )
        return results

    def _map_attempt(
        self,
        fn: Callable[[Any], Any],
        payloads: list[Any],
        results: list[Any],
        pending: list[int],
        timeout: float | None,
    ) -> Exception | None:
        """One executor round over the still-pending payloads.

        Fills ``results`` for every payload that completes (in any
        order); returns the recovery-class failure when some remain
        (broken pool, hung task past the deadline, slab corruption),
        or ``None`` when everything finished. Genuine task exceptions
        raise immediately — they are not the runtime's fault and must
        not be retried.
        """
        created: list[str] = []
        pool_broken: Exception | None = None
        transport: SlabTransportError | None = None
        fatal: Exception | None = None
        timed_out = False
        try:
            tasks = []
            for _index in pending:
                fault = None
                if faults.should_fire("pool.worker_kill"):
                    fault = "pool.worker_kill"
                elif faults.should_fire("pool.task_hang"):
                    fault = "pool.task_hang"
                tasks.append(self._pack_task(fn, payloads[_index], created, fault))
            executor = self._ensure_executor()
            futures = [executor.submit(_run_pool_task, task) for task in tasks]
            deadline = None if timeout is None else time.monotonic() + timeout
            # Wait in submission order until the first pool-level event.
            for index, future in zip(pending, futures):
                try:
                    if deadline is None:
                        outcome = future.result()
                    else:
                        outcome = future.result(
                            max(deadline - time.monotonic(), 0.0)
                        )
                except _FutureTimeoutError:
                    timed_out = True
                    break
                except BrokenProcessPool as exc:
                    pool_broken = exc
                    break
                except SlabTransportError as exc:
                    transport = transport or exc
                    continue
                except Exception as exc:
                    fatal = fatal or exc
                    continue
                try:
                    results[index] = self._attach_result(outcome)
                except SlabTransportError as exc:
                    transport = transport or exc
            # Sweep: collect work that finished out of order before a
            # break (it must not be recomputed, nor its slabs stranded)
            # and cancel what never started.
            for index, future in zip(pending, futures):
                if results[index] is not _PENDING:
                    continue
                if not future.done():
                    future.cancel()
                    continue
                try:
                    outcome = future.result(0)
                except SlabTransportError as exc:
                    transport = transport or exc
                    continue
                except BrokenProcessPool as exc:
                    pool_broken = pool_broken or exc
                    continue
                except (_FutureTimeoutError, Exception) as exc:
                    if not isinstance(exc, _FutureTimeoutError):
                        fatal = fatal or exc
                    continue
                try:
                    results[index] = self._attach_result(outcome)
                except SlabTransportError as exc:
                    transport = transport or exc
        finally:
            for path in created:
                _unlink_quietly(path)
        if timed_out or pool_broken is not None:
            # A hung worker is still burning a pool slot (and a broken
            # executor rejects every later submit): discard it either
            # way; the next attempt re-forks lazily.
            self._abort_executor(kill=timed_out)
        if fatal is not None:
            raise fatal
        recovery: Exception | None = None
        if timed_out:
            recovery = PoolBrokenError(
                f"shard pool map exceeded its {timeout:.3g}s timeout; "
                "hung workers terminated"
            )
        elif pool_broken is not None:
            recovery = PoolBrokenError(
                f"shard pool executor broke mid-map: "
                f"{pool_broken or 'worker died'}"
            )
        if transport is not None:
            recovery = recovery or transport
            if transport.errno == _errno.ENOSPC:
                self._activate_disk_fallback(transport)
        if recovery is not None:
            # Workers restart cold after an abort and interned files
            # may be stale (truncated mid-write); re-validate the ones
            # the unfinished payloads still need and rewrite them from
            # the retained originals.
            remaining = [i for i in pending if results[i] is _PENDING]
            self._heal_interned(payloads, remaining)
        return recovery

    def _pack_task(
        self,
        fn: Callable[[Any], Any],
        payload: Any,
        created: list[str],
        fault: str | None,
    ) -> tuple:
        """Pack one payload into a task tuple, riding the pipe when
        small and a sealed slab file otherwise. ENOSPC on the slab dir
        triggers the one-time disk fallback and re-packs."""
        for _round in range(2):
            try:
                packed = _pack_slabs(
                    payload, self._slab_dir, created, self._integrity
                )
                blob = pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL)
                if len(blob) < _MIN_SLAB_BYTES:
                    # Small payloads (e.g. blocker config + interned
                    # slab references) ride the task pipe directly —
                    # the file round-trip only pays for itself on bulk
                    # bytes.
                    return (fn, blob, None, self._slab_dir, self._integrity,
                            fault)
                path = _new_slab_path(self._slab_dir, "payload", ".pkl")
                _write_blob_slab(path, blob, self._integrity)
                created.append(path)
                return (fn, None, path, self._slab_dir, self._integrity,
                        fault)
            except OSError as exc:
                if exc.errno != _errno.ENOSPC or self._on_disk_fallback:
                    raise
                self._activate_disk_fallback(exc)
        raise AssertionError("unreachable")  # pragma: no cover

    def _attach_result(self, outcome: tuple) -> Any:
        """Unpack one worker result, unlinking its slab files either way
        (a corrupt result slab is useless; the payload just retries)."""
        packed, result_paths = outcome
        try:
            return _unpack_slabs(packed, self._integrity)
        finally:
            # The worker reports the slab files it created; unlink them
            # now that the maps are attached (POSIX keeps the pages).
            for path in result_paths:
                _unlink_quietly(path)

    def _abort_executor(self, kill: bool = False) -> None:
        """Discard the executor; with ``kill``, terminate its workers
        first (a hung task never returns on its own)."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if kill:
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass
        try:
            executor.shutdown(wait=kill, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor races
            pass

    def _activate_disk_fallback(self, cause: Exception) -> None:
        """Switch slab traffic to a disk-backed temp dir, once."""
        if self._on_disk_fallback:
            return
        fallback = tempfile.mkdtemp(
            prefix=f"{_SLAB_DIR_PREFIX}{os.getpid()}-", dir=None
        )
        self._slab_dirs.append(fallback)
        self._slab_dir = fallback
        self._on_disk_fallback = True
        warnings.warn(
            f"shard pool slab directory out of space ({cause}); slab "
            f"transport falls back to disk-backed {fallback} for the "
            "rest of this pool's life",
            RuntimeWarning,
            stacklevel=3,
        )

    def _heal_interned(self, payloads: list[Any], pending: list[int]) -> None:
        """Re-validate interned slab files the pending payloads
        reference; rewrite stale ones from the retained originals."""
        checked: set[str] = set()
        for index in pending:
            for ref in _iter_interned(payloads[index]):
                if ref.path in checked:
                    continue
                checked.add(ref.path)
                if self._integrity:
                    try:
                        _validate_slab(ref.path)
                        continue
                    except SlabTransportError:
                        pass
                elif os.path.exists(ref.path):
                    continue
                original = self._intern_payloads.get(ref.path)
                if original is None:
                    continue  # nothing to heal from; the retry surfaces it
                try:
                    _write_blob_slab(
                        ref.path,
                        pickle.dumps(
                            original, protocol=pickle.HIGHEST_PROTOCOL
                        ),
                        self._integrity,
                    )
                except OSError:  # pragma: no cover - dir gone/full
                    continue

    def get_interned_slabs(self, source: Any, layout: Any) -> list[Any] | None:
        """Previously interned slab refs for ``(source, layout)``.

        Returns ``None`` when absent — including for sources that
        cannot anchor the weak cache and for serial pools — so warm
        callers can skip rebuilding the slabs entirely on a hit.
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        if self.processes <= 1:
            return None
        try:
            return self._interned.setdefault(source, {}).get(layout)
        except TypeError:
            return None

    def intern_slabs(
        self, source: Any, layout: Any, slabs: Sequence[Any]
    ) -> list[Any]:
        """Park slab payload pieces once per ``(source, layout)``.

        Repeated blocking calls over one corpus rebuild identical
        record slabs; interning pickles each slab to the pool's
        shared-memory directory *once* (keyed weakly by the source
        object plus the deterministic layout key) and hands back path
        references that workers memoise — later calls skip both the
        re-pickle and the worker-side re-unpickle. ``source`` must be
        effectively immutable for the pool's lifetime, which Dataset
        guarantees.

        Falls back to returning the slabs unchanged when ``source``
        cannot anchor the weak cache (plain lists/generators), the
        pool runs serially, or the slab directory (and its disk
        fallback) cannot take the files.
        """
        slabs = list(slabs)
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        if self.processes <= 1:
            return slabs
        try:
            per_source = self._interned.setdefault(source, {})
        except TypeError:
            return slabs
        refs = per_source.get(layout)
        if refs is None:
            refs = []
            originals: dict[str, Any] = {}
            try:
                for slab in slabs:
                    # Pickle bytes, not an array — .pkl keeps the two
                    # slab flavours distinguishable in the slab dir.
                    blob = pickle.dumps(
                        slab, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    for _round in range(2):
                        path = _new_slab_path(
                            self._slab_dir, "intern", ".pkl"
                        )
                        try:
                            _write_blob_slab(path, blob, self._integrity)
                        except OSError as exc:
                            _unlink_quietly(path)
                            if (
                                exc.errno != _errno.ENOSPC
                                or self._on_disk_fallback
                            ):
                                raise
                            self._activate_disk_fallback(exc)
                            continue
                        refs.append(_InternedSlab(path))
                        originals[path] = slab
                        break
            except OSError:
                # Interning is an optimisation; a hostile filesystem
                # degrades to shipping the slabs per call.
                for ref in refs:
                    _unlink_quietly(ref.path)
                return slabs
            except BaseException:
                for ref in refs:
                    _unlink_quietly(ref.path)
                raise
            per_source[layout] = refs
            self._intern_payloads.update(originals)
            # When the corpus is garbage-collected its parked files go
            # with it — a long-lived pool serving many corpora must not
            # accumulate dead pickled slabs (or heal copies) in shared
            # memory.
            weakref.finalize(
                source,
                _release_interned,
                weakref.ref(self),
                [ref.path for ref in refs],
            )
        return refs

    def get_memo(self, source: Any, key: Any) -> Any:
        """Pool-lifetime memo of a value derived from ``source``.

        Returns ``None`` when absent (or when ``source`` cannot anchor
        the weak cache). Callers memoise *pure functions of the source*
        only — e.g. SA-LSH's semantic encoder and semhash slabs, which
        are deterministic per (semantic function, corpus, slab layout)
        — so a hit changes wall time, never a byte of output; the same
        immutability contract as :meth:`intern_slabs` applies.
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        try:
            return self._memos.setdefault(source, {}).get(key)
        except TypeError:
            return None

    def set_memo(self, source: Any, key: Any, value: Any) -> None:
        """Store a derived value for :meth:`get_memo` (best effort).

        Per-source memos are bounded: callers that key by object
        identity (e.g. a semantic-function instance rebuilt per call)
        would otherwise grow the memo once per call for the pool's
        lifetime; beyond the cap the oldest entry is evicted — a later
        miss just recomputes.
        """
        try:
            per_source = self._memos.setdefault(source, {})
        except TypeError:
            return
        per_source[key] = value
        while len(per_source) > _MEMO_CAPACITY:
            per_source.pop(next(iter(per_source)))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def close(self) -> None:
        """Shut the executor down and remove the slab directories.

        Idempotent. Memory maps already handed out stay valid (their
        pages outlive the unlinked files); new :meth:`map` calls raise
        :class:`~repro.errors.ConfigurationError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for slab_dir in self._slab_dirs:
            shutil.rmtree(slab_dir, ignore_errors=True)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone / dir removed
        pass


def _unlink_many(paths: list[str]) -> None:
    for path in paths:
        _unlink_quietly(path)


def map_processes(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    processes: int | None = 1,
    *,
    pool: ShardPool | None = None,
) -> list[Any]:
    """Map ``fn`` over payloads on a process pool, preserving order.

    ``fn`` must be a module-level function and every payload (and
    result) picklable — the contract of
    :class:`~concurrent.futures.ProcessPoolExecutor`. With
    ``processes<=1`` (or a single payload) the map runs serially in
    this process, so results are identical for every process count;
    parallelism only changes who executes the payloads. Exceptions
    propagate to the caller.

    With ``pool`` set the map runs on that persistent
    :class:`ShardPool` (its process count wins over ``processes``) —
    same ordering and serial-fallback contract, but fork and slab
    transport costs are amortised across calls, and the pool's
    self-healing recovery applies.

    The fresh-executor path degrades gracefully too: a
    ``BrokenProcessPool`` (e.g. an OOM-killed worker) completes the
    unfinished payloads serially in-process instead of aborting — the
    short ladder for a pool nobody will reuse.
    """
    if pool is not None:
        return pool.map(fn, payloads)
    payloads = list(payloads)
    effective = min(resolve_processes(processes), len(payloads))
    if effective <= 1:
        return [fn(payload) for payload in payloads]
    results: list[Any] = [_PENDING] * len(payloads)
    broken: Exception | None = None
    with ProcessPoolExecutor(max_workers=effective) as executor:
        futures = [executor.submit(fn, payload) for payload in payloads]
        for i, future in enumerate(futures):
            try:
                results[i] = future.result()
            except BrokenProcessPool as exc:
                broken = exc
                break
        if broken is not None:
            # Keep out-of-order completions; everything else reruns
            # serially below.
            for i, future in enumerate(futures):
                if results[i] is not _PENDING or not future.done():
                    continue
                try:
                    results[i] = future.result(0)
                except Exception:
                    pass
    if broken is not None:
        warnings.warn(
            f"process pool broke mid-map ({broken}); completing "
            "remaining payloads serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        for i, payload in enumerate(payloads):
            if results[i] is _PENDING:
                results[i] = fn(payload)
    return results


def chunk_spans(total: int, per_chunk: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(lo, hi)`` spans."""
    if per_chunk < 1:
        raise ConfigurationError(f"per_chunk must be >= 1, got {per_chunk}")
    return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def run_chunked(
    fn: Callable[[int, int], None],
    spans: Sequence[tuple[int, int]],
    workers: int | None = 1,
) -> None:
    """Run ``fn(lo, hi)`` over every span, serially or on a thread pool.

    ``fn`` must be safe to run concurrently for distinct spans (each
    span writes a disjoint output slice). Results are identical
    regardless of ``workers`` — the spans themselves define the work,
    parallelism only changes who executes them. Exceptions propagate to
    the caller.
    """
    effective = min(resolve_workers(workers), len(spans))
    if effective <= 1:
        for lo, hi in spans:
            fn(lo, hi)
        return
    with ThreadPoolExecutor(max_workers=effective) as pool:
        futures = [pool.submit(fn, lo, hi) for lo, hi in spans]
        for future in futures:
            future.result()
