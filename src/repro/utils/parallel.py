"""Thread- and process-parallel execution of independent work units.

The batch signature engine splits its work over hash-function chunks
that touch disjoint output slices (see DESIGN.md, "Parallel & streaming
runtime"). Those chunks are dominated by numpy kernels — the exact
modular multiply, fancy-indexed gathers and ``np.minimum.reduceat`` —
which release the GIL on large arrays, so plain threads scale across
cores without pickling the corpus into worker processes.

The ``processes=`` runtime (DESIGN.md, "Process-sharded streaming
runtime") complements it for the GIL-bound hot loops — string
shingling, semantic interpretation, bucket grouping — by mapping
picklable payloads over a :class:`~concurrent.futures.ProcessPoolExecutor`:
record slabs and band-key shards are evaluated in worker processes and
reassembled deterministically, so any process count produces
byte-identical blocks.

:class:`ShardPool` (DESIGN.md, "Persistent shard pool") makes that
runtime amortisable: it owns one executor for its lifetime and
transports payloads/results through shared-memory slab files instead of
the executor's pipes, so repeated blocking calls stop paying a fresh
fork-and-pickle round per call.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _available_cpus() -> int:
    """CPUs this process may actually use.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    limit a container grants, so ``None`` defaults used to oversubscribe
    constrained hosts. Prefer ``os.process_cpu_count()`` (3.13+), then
    the scheduler affinity mask, then the machine count.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        return counter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers=`` argument: ``None`` means all usable CPUs."""
    if workers is None:
        return _available_cpus()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1 or None, got {workers}")
    return workers


def resolve_processes(processes: int | None) -> int:
    """Normalise a ``processes=`` argument: ``None`` means all usable CPUs."""
    if processes is None:
        return _available_cpus()
    if processes < 1:
        raise ConfigurationError(
            f"processes must be >= 1 or None, got {processes}"
        )
    return processes


def effective_processes(
    processes: int | None, pool: "ShardPool | None" = None
) -> int:
    """Worker count a ``processes=``/``pool=`` pair resolves to.

    A pool wins: its (fixed) process count governs slab and shard
    layout, so every call site that may run on a shared pool derives
    identical work splits from it.
    """
    if pool is not None:
        return pool.processes
    return resolve_processes(processes)


#: Arrays at least this large ride as memory-mapped slab files instead
#: of pickled bytes (below it the file round-trip costs more than it
#: saves).
_MIN_SLAB_BYTES = 1 << 16

#: Per-process counter making slab file names unique within one
#: directory (combined with the pid, so parent and workers never
#: collide).
_slab_counter = itertools.count()


def _slab_parent_dir() -> str | None:
    """Directory slab files live in: ``/dev/shm`` (a tmpfs, so slab
    traffic is memory traffic) when available, the default tmp dir
    otherwise. ``REPRO_SHARDPOOL_DIR`` overrides both — useful in
    containers whose ``/dev/shm`` is smaller than a corpus's slabs."""
    override = os.environ.get("REPRO_SHARDPOOL_DIR")
    if override:
        return override
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    return None


class _ArraySlab:
    """Picklable reference to an array parked in a slab file.

    Only the path crosses the process boundary; :meth:`load` reattaches
    a read-only memory map, so the array's bytes move through the page
    cache (tmpfs = shared memory) instead of the executor's pipes.
    """

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self) -> np.ndarray:
        return np.load(self.path, mmap_mode="r")


def _new_slab_path(slab_dir: str, kind: str, ext: str = ".npy") -> str:
    return os.path.join(
        slab_dir, f"{kind}-{os.getpid()}-{next(_slab_counter)}{ext}"
    )


#: Worker-side cache of loaded interned slabs, keyed by path (paths are
#: never reused — they embed a per-process counter). Bounded: evicted
#: entries just re-read their file on the next use.
_INTERN_CACHE_CAPACITY = 16
_intern_cache: "OrderedDict[str, Any]" = OrderedDict()

#: Per-source cap on :meth:`ShardPool.set_memo` entries.
_MEMO_CAPACITY = 8


class _InternedSlab:
    """Picklable reference to a payload piece parked once per corpus.

    Unlike the per-call payload files, interned slab files persist for
    the pool's lifetime, and workers memoise the loaded object by path
    — so repeated blocking calls over the same corpus skip both the
    parent-side re-pickle and the worker-side re-unpickle of the
    record slabs.
    """

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self) -> Any:
        cached = _intern_cache.get(self.path)
        if cached is not None:
            _intern_cache.move_to_end(self.path)
            return cached
        with open(self.path, "rb") as handle:
            value = pickle.load(handle)
        _intern_cache[self.path] = value
        if len(_intern_cache) > _INTERN_CACHE_CAPACITY:
            _intern_cache.popitem(last=False)
        return value


def _pack_slabs(value: Any, slab_dir: str, created: list[str]) -> Any:
    """Replace large plain-dtype arrays in a payload/result tree with
    :class:`_ArraySlab` references, recording every file created.

    Containers with no arrays or nested containers pass through
    unchanged (the flat-tuple fast path of :func:`_unpack_slabs`).
    """
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject or value.nbytes < _MIN_SLAB_BYTES:
            return value
        path = _new_slab_path(slab_dir, "slab")
        np.save(path, value, allow_pickle=False)
        created.append(path)
        return _ArraySlab(path)
    if isinstance(value, (tuple, list)):
        if not any(
            isinstance(item, (np.ndarray, tuple, list, dict)) for item in value
        ):
            return value
        packed = [_pack_slabs(item, slab_dir, created) for item in value]
        return tuple(packed) if isinstance(value, tuple) else packed
    if isinstance(value, dict):
        return {
            key: _pack_slabs(item, slab_dir, created)
            for key, item in value.items()
        }
    return value


_SLAB_REFS = (_ArraySlab, _InternedSlab)
_SLAB_CONTAINERS = (_ArraySlab, _InternedSlab, tuple, list, dict)


def _unpack_slabs(value: Any) -> Any:
    """Inverse of :func:`_pack_slabs`: reattach slab references.

    Containers holding neither references nor nested containers are
    returned unchanged — record-id tuples with thousands of strings
    must not be rebuilt element by element on every call.
    """
    if isinstance(value, _SLAB_REFS):
        return value.load()
    if isinstance(value, (tuple, list)):
        if not any(isinstance(item, _SLAB_CONTAINERS) for item in value):
            return value
        unpacked = [_unpack_slabs(item) for item in value]
        return tuple(unpacked) if isinstance(value, tuple) else unpacked
    if isinstance(value, dict):
        return {key: _unpack_slabs(item) for key, item in value.items()}
    return value


def _run_pool_task(task: tuple) -> Any:
    """Worker side of :meth:`ShardPool.map`.

    Loads the packed payload (inline pickle bytes for small payloads,
    a slab file otherwise), resolves array slabs into memory maps, runs
    ``fn`` and packs the result's large arrays into fresh slab files —
    only paths and small values ride the result pipe.
    """
    fn, blob, payload_path, slab_dir = task
    if blob is None:
        with open(payload_path, "rb") as handle:
            blob = handle.read()
    result = fn(_unpack_slabs(pickle.loads(blob)))
    created: list[str] = []
    try:
        return _pack_slabs(result, slab_dir, created), created
    except BaseException:
        # Don't strand files written before a partial packing failure.
        for path in created:
            _unlink_quietly(path)
        raise


class ShardPool:
    """Long-lived process pool with shared-memory slab transport.

    Owns one :class:`~concurrent.futures.ProcessPoolExecutor` for its
    lifetime (workers start on the first parallel map and stay warm),
    so repeated blocking calls stop paying the fork-and-join round that
    :func:`map_processes` pays per call. Payloads and results move
    through slab files in a shared-memory directory — large arrays as
    memory-mapped ``.npy`` slabs, the rest as one pickle file per
    payload — instead of the executor's pipes.

    :meth:`map` keeps the :func:`map_processes` contract: order
    preserved, serial in-process fallback for ``processes=1`` (or a
    single payload) with results identical to any parallel execution,
    exceptions propagated. Use as a context manager (or call
    :meth:`close`); a closed pool raises
    :class:`~repro.errors.ConfigurationError` on further maps, so a
    pool shut down mid-pipeline fails loudly instead of silently
    re-forking.
    """

    def __init__(self, processes: int | None = None) -> None:
        self.processes = resolve_processes(processes)
        self._slab_dir = tempfile.mkdtemp(
            prefix="repro-shardpool-", dir=_slab_parent_dir()
        )
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        #: source object → {layout key: [_InternedSlab, ...]} — weak,
        #: so a corpus going away releases its parked slabs (the files
        #: linger until :meth:`close` removes the slab directory).
        self._interned: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )
        #: source object → {key: derived value} — weak like the slab
        #: cache; carries corpus-level state (e.g. SA-LSH's derived
        #: semantic encoder) across repeated blocking calls.
        self._memos: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Map ``fn`` over payloads on the persistent pool, in order.

        ``fn`` must be a module-level function and payloads/results
        picklable, as for :func:`map_processes`. Arrays returned from
        workers come back as read-only memory maps over slab files —
        value-identical to the serial path's in-RAM arrays. Slab files
        are unlinked as soon as both sides are done with them (the
        maps stay valid; POSIX keeps unlinked pages mapped).
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        payloads = list(payloads)
        if self.processes <= 1 or len(payloads) <= 1:
            # Payloads may carry interned slab references; resolve them
            # before the in-process call, exactly as a worker would.
            return [fn(_unpack_slabs(payload)) for payload in payloads]
        created: list[str] = []
        try:
            # Packing runs inside the try so a mid-loop failure (an
            # unpicklable payload, a full slab dir) still unlinks the
            # files already written.
            tasks = []
            for payload in payloads:
                packed = _pack_slabs(payload, self._slab_dir, created)
                blob = pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL)
                if len(blob) < _MIN_SLAB_BYTES:
                    # Small payloads (e.g. blocker config + interned
                    # slab references) ride the task pipe directly —
                    # the file round-trip only pays for itself on bulk
                    # bytes.
                    tasks.append((fn, blob, None, self._slab_dir))
                    continue
                path = _new_slab_path(self._slab_dir, "payload", ".pkl")
                with open(path, "wb") as handle:
                    handle.write(blob)
                created.append(path)
                tasks.append((fn, None, path, self._slab_dir))
            executor = self._ensure_executor()
            futures = [
                executor.submit(_run_pool_task, task) for task in tasks
            ]
            packed_results = []
            first_error: Exception | None = None
            for future in futures:
                try:
                    packed_results.append(future.result())
                except Exception as exc:
                    # Keep draining so completed tasks' result slabs
                    # can be unlinked below — a failed map must not
                    # strand files in the shared-memory directory.
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                for _packed, result_paths in packed_results:
                    for path in result_paths:
                        _unlink_quietly(path)
                raise first_error
        finally:
            for path in created:
                _unlink_quietly(path)
        results = []
        for packed, result_paths in packed_results:
            results.append(_unpack_slabs(packed))
            # The worker reports the slab files it created; unlink them
            # now that the maps are attached (POSIX keeps the pages).
            for path in result_paths:
                _unlink_quietly(path)
        return results

    def get_interned_slabs(self, source: Any, layout: Any) -> list[Any] | None:
        """Previously interned slab refs for ``(source, layout)``.

        Returns ``None`` when absent — including for sources that
        cannot anchor the weak cache and for serial pools — so warm
        callers can skip rebuilding the slabs entirely on a hit.
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        if self.processes <= 1:
            return None
        try:
            return self._interned.setdefault(source, {}).get(layout)
        except TypeError:
            return None

    def intern_slabs(
        self, source: Any, layout: Any, slabs: Sequence[Any]
    ) -> list[Any]:
        """Park slab payload pieces once per ``(source, layout)``.

        Repeated blocking calls over one corpus rebuild identical
        record slabs; interning pickles each slab to the pool's
        shared-memory directory *once* (keyed weakly by the source
        object plus the deterministic layout key) and hands back path
        references that workers memoise — later calls skip both the
        re-pickle and the worker-side re-unpickle. ``source`` must be
        effectively immutable for the pool's lifetime, which Dataset
        guarantees.

        Falls back to returning the slabs unchanged when ``source``
        cannot anchor the weak cache (plain lists/generators) or the
        pool runs serially.
        """
        slabs = list(slabs)
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        if self.processes <= 1:
            return slabs
        try:
            per_source = self._interned.setdefault(source, {})
        except TypeError:
            return slabs
        refs = per_source.get(layout)
        if refs is None:
            refs = []
            try:
                for slab in slabs:
                    # Pickle bytes, not an array — .pkl keeps the two
                    # slab flavours distinguishable in the slab dir.
                    path = _new_slab_path(self._slab_dir, "intern", ".pkl")
                    with open(path, "wb") as handle:
                        pickle.dump(
                            slab, handle, protocol=pickle.HIGHEST_PROTOCOL
                        )
                    refs.append(_InternedSlab(path))
            except BaseException:
                for ref in refs:
                    _unlink_quietly(ref.path)
                raise
            per_source[layout] = refs
            # When the corpus is garbage-collected its parked files go
            # with it — a long-lived pool serving many corpora must not
            # accumulate dead pickled slabs in shared memory.
            weakref.finalize(
                source, _unlink_many, [ref.path for ref in refs]
            )
        return refs

    def get_memo(self, source: Any, key: Any) -> Any:
        """Pool-lifetime memo of a value derived from ``source``.

        Returns ``None`` when absent (or when ``source`` cannot anchor
        the weak cache). Callers memoise *pure functions of the source*
        only — e.g. SA-LSH's semantic encoder and semhash slabs, which
        are deterministic per (semantic function, corpus, slab layout)
        — so a hit changes wall time, never a byte of output; the same
        immutability contract as :meth:`intern_slabs` applies.
        """
        if self._closed:
            raise ConfigurationError(
                "shard pool is closed; create a new ShardPool"
            )
        try:
            return self._memos.setdefault(source, {}).get(key)
        except TypeError:
            return None

    def set_memo(self, source: Any, key: Any, value: Any) -> None:
        """Store a derived value for :meth:`get_memo` (best effort).

        Per-source memos are bounded: callers that key by object
        identity (e.g. a semantic-function instance rebuilt per call)
        would otherwise grow the memo once per call for the pool's
        lifetime; beyond the cap the oldest entry is evicted — a later
        miss just recomputes.
        """
        try:
            per_source = self._memos.setdefault(source, {})
        except TypeError:
            return
        per_source[key] = value
        while len(per_source) > _MEMO_CAPACITY:
            per_source.pop(next(iter(per_source)))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def close(self) -> None:
        """Shut the executor down and remove the slab directory.

        Idempotent. Memory maps already handed out stay valid (their
        pages outlive the unlinked files); new :meth:`map` calls raise
        :class:`~repro.errors.ConfigurationError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        shutil.rmtree(self._slab_dir, ignore_errors=True)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone / dir removed
        pass


def _unlink_many(paths: list[str]) -> None:
    for path in paths:
        _unlink_quietly(path)


def map_processes(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    processes: int | None = 1,
    *,
    pool: ShardPool | None = None,
) -> list[Any]:
    """Map ``fn`` over payloads on a process pool, preserving order.

    ``fn`` must be a module-level function and every payload (and
    result) picklable — the contract of
    :class:`~concurrent.futures.ProcessPoolExecutor`. With
    ``processes<=1`` (or a single payload) the map runs serially in
    this process, so results are identical for every process count;
    parallelism only changes who executes the payloads. Exceptions
    propagate to the caller.

    With ``pool`` set the map runs on that persistent
    :class:`ShardPool` (its process count wins over ``processes``) —
    same ordering and serial-fallback contract, but fork and slab
    transport costs are amortised across calls.
    """
    if pool is not None:
        return pool.map(fn, payloads)
    payloads = list(payloads)
    effective = min(resolve_processes(processes), len(payloads))
    if effective <= 1:
        return [fn(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=effective) as executor:
        return list(executor.map(fn, payloads))


def chunk_spans(total: int, per_chunk: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(lo, hi)`` spans."""
    if per_chunk < 1:
        raise ConfigurationError(f"per_chunk must be >= 1, got {per_chunk}")
    return [(lo, min(lo + per_chunk, total)) for lo in range(0, total, per_chunk)]


def run_chunked(
    fn: Callable[[int, int], None],
    spans: Sequence[tuple[int, int]],
    workers: int | None = 1,
) -> None:
    """Run ``fn(lo, hi)`` over every span, serially or on a thread pool.

    ``fn`` must be safe to run concurrently for distinct spans (each
    span writes a disjoint output slice). Results are identical
    regardless of ``workers`` — the spans themselves define the work,
    parallelism only changes who executes them. Exceptions propagate to
    the caller.
    """
    effective = min(resolve_workers(workers), len(spans))
    if effective <= 1:
        for lo, hi in spans:
            fn(lo, hi)
        return
    with ThreadPoolExecutor(max_workers=effective) as pool:
        futures = [pool.submit(fn, lo, hi) for lo, hi in spans]
        for future in futures:
            future.result()
