"""Deterministic fault injection for the parallel runtime.

The fault-tolerance layer (DESIGN.md, "Fault tolerance & the
degradation ladder") is only trustworthy if its failure paths are
exercised on purpose. This module gives library code named injection
points it consults via :func:`maybe_fail`/:func:`should_fire` — a
no-op unless a :class:`FaultPlan` has been armed, so production runs
pay one ``is None`` check per consultation.

Injection points
----------------
``pool.worker_kill``
    Consulted by :meth:`~repro.utils.parallel.ShardPool.map` per
    payload (parent side, so firing is deterministic regardless of
    worker scheduling); a firing payload's worker process exits hard,
    simulating an OOM kill.
``pool.task_hang``
    Same consultation site; the firing payload's worker sleeps far past
    any sane ``timeout``, simulating a wedged task.
``slab.truncate``
    Consulted after a slab file is written; firing truncates the file
    in place — *silent* corruption that only the length+checksum
    footer can catch.
``slab.enospc``
    Consulted before a slab file is written; firing raises
    ``OSError(ENOSPC)``, simulating a full shared-memory tmpfs.
``spill.write_error``
    Consulted by :meth:`~repro.minhash.signature.GrowableSignatureSpill
    .append` before the row write; firing raises ``OSError(ENOSPC)``.
``wal.append``
    Consulted by :meth:`~repro.store.journal.Journal.append` per frame;
    firing writes only the first half of the frame and then SIGKILLs
    the process — the torn-frame crash the replay truncation must
    survive.
``checkpoint.rename``
    Consulted by the checkpoint writer immediately before the atomic
    publish rename; firing SIGKILLs the process with the snapshot still
    under its ``*.tmp-<pid>`` name (recovery must fall back to the
    previous checkpoint + journal).
``index.write``
    Consulted by :func:`~repro.store.index_file.write_index` between
    segment files; firing SIGKILLs the process mid-write, leaving a
    partial index directory that ``open_index`` must reject.

The three ``wal.append``/``checkpoint.rename``/``index.write`` points
are *crash* points: instead of raising they kill the process with
SIGKILL (via :func:`kill_self`), which is what the kill−9 recovery
harness in ``tests/test_durability.py`` drives through subprocesses
armed with :func:`arm_from_env`.

A plan's spec maps point names to *when* they fire: an ``int`` fires
the first N consultations, an iterable fires exactly those 0-based
consultation indices, and a ``float`` fires each consultation with
that probability from a generator seeded per ``(seed, point)`` — so a
seeded plan replays the identical fault schedule on every run. Plans
are pid-bound: a plan armed in the parent never fires in forked
workers (worker-side faults are shipped explicitly by the pool as
per-task tokens and executed via :func:`execute_worker_fault`), which
keeps the schedule deterministic under any worker count.
"""

from __future__ import annotations

import contextlib
import errno as _errno
import os
import random
import signal
import threading
import time
from typing import Iterator

from repro.errors import ConfigurationError

#: Every injection point the library consults.
POINTS = (
    "pool.worker_kill",
    "pool.task_hang",
    "slab.truncate",
    "slab.enospc",
    "spill.write_error",
    "wal.append",
    "checkpoint.rename",
    "index.write",
)

#: Points whose firing kills the process (SIGKILL) instead of raising.
CRASH_POINTS = ("wal.append", "checkpoint.rename", "index.write")

#: Environment variable :func:`arm_from_env` reads, e.g.
#: ``REPRO_FAULTS="wal.append:@2"`` (fire consultation index 2) or
#: ``REPRO_FAULTS="checkpoint.rename:1"`` (fire the first consultation).
FAULTS_ENV = "REPRO_FAULTS"

#: Seconds a ``pool.task_hang`` worker sleeps — far beyond any sane
#: ``timeout=``, small enough that a leaked sleeper cannot outlive a
#: test session by much even if termination fails.
HANG_SECONDS = 600.0


class FaultPlan:
    """A seeded, thread-safe schedule of named fault firings.

    ``spec`` maps injection-point names (see :data:`POINTS`) to firing
    rules; consultation counters are kept per point inside the plan,
    so one plan instance replays one deterministic schedule. Plans are
    bound to the pid that created them: consultations from any other
    process (forked workers) never fire.
    """

    def __init__(
        self, spec: "dict[str, int | float | Iterator[int] | tuple]",
        seed: int = 0,
    ) -> None:
        self._rules: dict[str, object] = {}
        for point, rule in spec.items():
            if point not in POINTS:
                raise ConfigurationError(
                    f"unknown injection point {point!r}; known: {POINTS}"
                )
            if isinstance(rule, bool):
                rule = int(rule)
            if isinstance(rule, int):
                if rule < 0:
                    raise ConfigurationError(
                        f"fault count must be >= 0, got {rule} for {point!r}"
                    )
                self._rules[point] = ("count", rule)
            elif isinstance(rule, float):
                if not 0.0 <= rule <= 1.0:
                    raise ConfigurationError(
                        f"fault probability must be in [0, 1], got {rule!r}"
                    )
                self._rules[point] = (
                    "random", rule, random.Random(f"{seed}:{point}")
                )
            else:
                self._rules[point] = ("indices", frozenset(int(i) for i in rule))
        self.seed = seed
        self._pid = os.getpid()
        self._counters: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    def fires(self, point: str) -> bool:
        """Consume one consultation of ``point``; True when it fires.

        Inert outside the arming process, so forked workers inheriting
        an armed plan never double-fire the schedule.
        """
        if os.getpid() != self._pid:
            return False
        rule = self._rules.get(point)
        if rule is None:
            return False
        with self._lock:
            index = self._counters.get(point, 0)
            self._counters[point] = index + 1
            if rule[0] == "count":
                fired = index < rule[1]
            elif rule[0] == "indices":
                fired = index in rule[1]
            else:
                fired = rule[2].random() < rule[1]
            if fired:
                self._fired[point] = self._fired.get(point, 0) + 1
            return fired

    def fired(self, point: "str | None" = None) -> int:
        """Firings so far — of one point, or of every point summed."""
        with self._lock:
            if point is not None:
                return self._fired.get(point, 0)
            return sum(self._fired.values())


#: The armed plan, or None (the fast path: one attribute read per
#: consultation when fault injection is off).
_active: "FaultPlan | None" = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-globally; returns it for convenience."""
    global _active
    _active = plan
    return plan


def disarm() -> None:
    """Disarm fault injection (the production state)."""
    global _active
    _active = None


def active() -> "FaultPlan | None":
    """The armed plan, if any."""
    return _active


@contextlib.contextmanager
def injected(spec_or_plan, seed: int = 0):
    """Arm a plan (or a spec dict) for the duration of a ``with`` block."""
    plan = (
        spec_or_plan
        if isinstance(spec_or_plan, FaultPlan)
        else FaultPlan(spec_or_plan, seed=seed)
    )
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def should_fire(point: str) -> bool:
    """Consult ``point`` without acting — for call sites (the pool's
    per-payload worker faults) that carry the fault out of band."""
    plan = _active
    if plan is None:
        return False
    return plan.fires(point)


def maybe_fail(point: str, *, path: "str | None" = None) -> None:
    """Consult ``point`` and *perform* its failure when armed and firing.

    Zero-cost when disarmed. ``slab.enospc`` and ``spill.write_error``
    raise ``OSError(ENOSPC)``; ``slab.truncate`` silently chops the
    file at ``path`` in half (corruption the integrity footer must
    catch — no exception here by design).
    """
    plan = _active
    if plan is None:
        return
    if not plan.fires(point):
        return
    if point in ("slab.enospc", "spill.write_error"):
        raise OSError(
            _errno.ENOSPC, f"injected fault {point}: no space left on device"
        )
    if point == "slab.truncate":
        if path is None:
            return
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(size // 2, 1))
        except OSError:  # pragma: no cover - file already gone
            pass


def kill_self() -> None:  # pragma: no cover - the caller never returns
    """SIGKILL the current process — the crash the durability layer
    must survive. No atexit handlers, no buffers flushed, no cleanup:
    exactly what the OOM killer (or a yanked power cord) does."""
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL is not deliverable to this line; guard against exotic
    # platforms anyway so the crash point never silently continues.
    os._exit(137)


def maybe_crash(point: str) -> None:
    """Consult a crash point; when armed and firing, SIGKILL the process.

    Zero-cost when disarmed. Call sites that need a *partial write*
    before dying (the torn-frame ``wal.append`` crash) consult
    :func:`should_fire` themselves and call :func:`kill_self` after
    arranging the wreckage.
    """
    plan = _active
    if plan is None:
        return
    if plan.fires(point):  # pragma: no cover - dies in subprocess runs
        kill_self()


def arm_from_env(environ: "dict[str, str] | None" = None) -> "FaultPlan | None":
    """Arm a plan described by ``REPRO_FAULTS``, if set.

    The value is a comma-separated list of ``point:rule`` items where
    ``rule`` is either an int (fire the first N consultations) or
    ``@i`` (fire exactly consultation index ``i``). This is how the
    kill−9 harness arms crash points inside a fresh subprocess — the
    CLI entry point calls this before dispatching a command. Returns
    the armed plan, or ``None`` when the variable is absent/empty.
    """
    env = os.environ if environ is None else environ
    raw = env.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    spec: dict[str, object] = {}
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        point, _, rule = item.partition(":")
        if not rule:
            raise ConfigurationError(
                f"{FAULTS_ENV} item {item!r} needs a ':<rule>' part "
                "(an int count or '@<index>')"
            )
        if rule.startswith("@"):
            spec[point] = (int(rule[1:]),)
        else:
            spec[point] = int(rule)
    seed = int(env.get(f"{FAULTS_ENV}_SEED", "0"))
    return arm(FaultPlan(spec, seed=seed))


def execute_worker_fault(fault: str) -> None:
    """Worker-side execution of a fault token shipped with a task.

    ``pool.worker_kill`` exits the worker process hard (no cleanup, no
    exception — exactly what the OOM killer does);``pool.task_hang``
    sleeps :data:`HANG_SECONDS` so the parent's ``timeout`` machinery
    must reap it.
    """
    if fault == "pool.worker_kill":
        os._exit(1)
    if fault == "pool.task_hang":
        time.sleep(HANG_SECONDS)
