"""Minhash signature generation (paper §5.1 step 2).

A minhash signature of length ``n`` approximates the Jaccard similarity
between shingle sets: the probability that one signature component
agrees between two records equals their Jaccard similarity (Broder et
al., 2000).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.minhash.corpus import ShingledCorpus
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily

#: Upper bound on the number of gathered hash values a single batch
#: chunk may materialise (elements, not bytes): bounds the working set
#: of :meth:`MinHasher.signature_matrix` at ~64 MiB of uint64 per chunk.
_CHUNK_ELEMENTS = 8_000_000


def sentinel_stream(
    corpus: ShingledCorpus,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sentinel-extended token stream of a corpus: ``(tokens_ext,
    starts, empty_rows)``.

    The token stream gains one virtual sentinel token (vocabulary index
    ``V``, hashing to the modulus ``p`` under every function). This
    keeps every ``reduceat`` start index in range (a trailing empty
    record's start equals the stream length) without truncating the
    last non-empty segment, and ``p`` never wins a minimum because real
    hash values are < p. Empty records mid-stream reduce to a
    neighbour's value — callers overwrite ``empty_rows`` with the
    sentinel afterwards.
    """
    tokens_ext = np.concatenate([corpus.token_vocab, [corpus.vocab_size]])
    return tokens_ext, corpus.indptr[:-1], corpus.counts == 0


class MinHasher:
    """Produce minhash signatures with ``num_hashes`` hash functions.

    Parameters
    ----------
    num_hashes:
        Signature length ``n = k * l`` (rows per band times bands).
    seed:
        Seed for the universal hash coefficients; two MinHashers with
        the same seed produce identical signatures.
    """

    def __init__(self, num_hashes: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        self.num_hashes = num_hashes
        self.seed = seed
        self._family = UniversalHashFamily(num_hashes, seed)

    def signature(self, shingle_ids: np.ndarray) -> np.ndarray:
        """Minhash signature (uint64 array of length ``num_hashes``).

        Empty shingle sets yield the sentinel signature (all entries
        equal to the hash modulus), which never collides with non-empty
        records and collides with other empty records — mirroring the
        convention that two fully-missing records are textually
        identical.
        """
        return self._family.min_over(shingle_ids)

    def signature_matrix(
        self, corpus: ShingledCorpus, *, chunk_elements: int = _CHUNK_ELEMENTS
    ) -> np.ndarray:
        """Minhash signatures for a whole corpus in one vectorized pass.

        Evaluates the universal hash family over the interned shingle
        *vocabulary* once (each distinct shingle hashed ``num_hashes``
        times total, however many records contain it), gathers the
        values along the corpus's CSR token stream, and reduces
        per-record minima with ``np.minimum.reduceat``. The work is
        chunked over hash functions so no intermediate exceeds
        ``chunk_elements`` values (see DESIGN.md, "Batch signature
        engine").

        Returns a ``(num_records, num_hashes)`` uint64 matrix whose row
        ``i`` is byte-identical to ``signature(shingle_ids(record_i))``,
        including the empty-set sentinel rows.
        """
        n = corpus.num_records
        out = np.empty((n, self.num_hashes), dtype=np.uint64)
        if n == 0:
            return out
        if corpus.num_tokens == 0:
            out.fill(MERSENNE_PRIME_61)
            return out

        tokens_ext, starts, empty_rows = sentinel_stream(corpus)
        for lo, hi, gathered in self.gathered_chunks(
            corpus, tokens_ext, chunk_elements
        ):
            minima = np.minimum.reduceat(gathered, starts, axis=1)
            minima[:, empty_rows] = MERSENNE_PRIME_61
            out[:, lo:hi] = minima.T
        return out

    def gathered_chunks(
        self, corpus: ShingledCorpus, tokens_ext: np.ndarray, chunk_elements: int
    ):
        """Yield ``(lo, hi, gathered)`` hash-function chunks.

        ``gathered`` is the ``(hi - lo, num_tokens + 1)`` matrix of hash
        values along the sentinel-extended token stream: the family is
        evaluated once per chunk over the vocabulary (plus the sentinel
        column at value p) and gathered to the stream. Chunks are sized
        so ``gathered`` stays under ``chunk_elements`` values.
        """
        stream = tokens_ext.shape[0]
        sentinel = np.uint64(MERSENNE_PRIME_61)
        rows_per_chunk = max(1, min(self.num_hashes, chunk_elements // stream))
        for lo in range(0, self.num_hashes, rows_per_chunk):
            hi = min(lo + rows_per_chunk, self.num_hashes)
            vocab_values = self._family.hash_values(corpus.vocab_hashes, lo, hi)
            vocab_values = np.concatenate(
                [vocab_values, np.full((hi - lo, 1), sentinel, dtype=np.uint64)],
                axis=1,
            )
            yield lo, hi, vocab_values[:, tokens_ext]

    def estimate_jaccard(self, sig1: np.ndarray, sig2: np.ndarray) -> float:
        """Fraction of agreeing components — unbiased Jaccard estimate."""
        if sig1.shape != sig2.shape:
            raise ValueError("signatures must have the same length")
        return float(np.mean(sig1 == sig2))
