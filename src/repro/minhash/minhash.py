"""Minhash signature generation (paper §5.1 step 2).

A minhash signature of length ``n`` approximates the Jaccard similarity
between shingle sets: the probability that one signature component
agrees between two records equals their Jaccard similarity (Broder et
al., 2000).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.minhash.corpus import ShingledCorpus
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily
from repro.utils.parallel import chunk_spans, run_chunked

#: Upper bound on the number of gathered hash values a single batch
#: chunk may materialise (elements, not bytes): bounds the working set
#: of :meth:`MinHasher.signature_matrix` at ~64 MiB of uint64 per chunk.
#: With ``workers=w`` up to w chunks are in flight, so the transient
#: bound scales to w * 64 MiB.
_CHUNK_ELEMENTS = 8_000_000


def ensure_signature_out(
    out: np.ndarray | None, num_records: int, num_hashes: int
) -> np.ndarray:
    """Validate (or allocate) a signature output buffer.

    ``out`` may be any writable uint64 array of shape ``(num_records,
    num_hashes)`` — typically a slice of a memory-mapped ``.npy`` file
    created by :func:`repro.minhash.signature.open_signature_memmap`,
    which lets signature matrices larger than RAM spill to disk.
    """
    if out is None:
        return np.empty((num_records, num_hashes), dtype=np.uint64)
    if out.shape != (num_records, num_hashes):
        raise ConfigurationError(
            f"out has shape {out.shape}, expected {(num_records, num_hashes)}"
        )
    if out.dtype != np.uint64:
        raise ConfigurationError(f"out must be uint64, got {out.dtype}")
    return out


def sentinel_stream(
    corpus: ShingledCorpus,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sentinel-extended token stream of a corpus: ``(tokens_ext,
    starts, empty_rows)``.

    The token stream gains one virtual sentinel token (vocabulary index
    ``V``, hashing to the modulus ``p`` under every function). This
    keeps every ``reduceat`` start index in range (a trailing empty
    record's start equals the stream length) without truncating the
    last non-empty segment, and ``p`` never wins a minimum because real
    hash values are < p. Empty records mid-stream reduce to a
    neighbour's value — callers overwrite ``empty_rows`` with the
    sentinel afterwards.
    """
    tokens_ext = np.concatenate([corpus.token_vocab, [corpus.vocab_size]])
    return tokens_ext, corpus.indptr[:-1], corpus.counts == 0


def compact_vocabulary(
    corpus: ShingledCorpus, tokens_ext: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Restrict the vocabulary to the entries ``tokens_ext`` references.

    A corpus shingled against a shared growing
    :class:`~repro.minhash.corpus.ShingleVocabulary` (the streaming
    path) carries the *cumulative* vocabulary, of which a small slab
    may reference only a sliver — evaluating the hash family over all
    of it per slab would repeat work proportional to the stream's
    history. When the vocabulary outgrows the token stream (impossible
    for a one-shot corpus, whose every entry is referenced), remap the
    stream to the compact set of used entries; the appended sentinel
    index stays the largest, i.e. ``len(hashes)`` after compaction.

    Returns ``(vocab_hashes, tokens_ext)``, unchanged when compaction
    would not pay for its ``np.unique``.
    """
    if corpus.vocab_size <= tokens_ext.shape[0]:
        return corpus.vocab_hashes, tokens_ext
    used, remapped = np.unique(tokens_ext, return_inverse=True)
    # `used` is sorted, so its last entry is the sentinel index
    # (vocab_size, the largest value in the stream) — drop it from the
    # hash gather; the remapped sentinel lands on column len(used) - 1,
    # exactly where gathered_span appends the sentinel value.
    return corpus.vocab_hashes[used[:-1]], remapped


class MinHasher:
    """Produce minhash signatures with ``num_hashes`` hash functions.

    Parameters
    ----------
    num_hashes:
        Signature length ``n = k * l`` (rows per band times bands).
    seed:
        Seed for the universal hash coefficients; two MinHashers with
        the same seed produce identical signatures.
    """

    def __init__(self, num_hashes: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        self.num_hashes = num_hashes
        self.seed = seed
        self._family = UniversalHashFamily(num_hashes, seed)

    def signature(self, shingle_ids: np.ndarray) -> np.ndarray:
        """Minhash signature (uint64 array of length ``num_hashes``).

        Empty shingle sets yield the sentinel signature (all entries
        equal to the hash modulus), which never collides with non-empty
        records and collides with other empty records — mirroring the
        convention that two fully-missing records are textually
        identical.
        """
        return self._family.min_over(shingle_ids)

    def signature_matrix(
        self,
        corpus: ShingledCorpus,
        *,
        chunk_elements: int = _CHUNK_ELEMENTS,
        workers: int | None = 1,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Minhash signatures for a whole corpus in one vectorized pass.

        Evaluates the universal hash family over the interned shingle
        *vocabulary* once (each distinct shingle hashed ``num_hashes``
        times total, however many records contain it), gathers the
        values along the corpus's CSR token stream, and reduces
        per-record minima with ``np.minimum.reduceat``. The work is
        chunked over hash functions so no intermediate exceeds
        ``chunk_elements`` values (see DESIGN.md, "Batch signature
        engine").

        Parameters
        ----------
        chunk_elements:
            Per-chunk working-set cap (gathered uint64 values).
        workers:
            Number of threads evaluating hash-function chunks
            concurrently; ``None`` uses every CPU. Chunks are
            independent and write disjoint column slices, and the numpy
            kernels they run release the GIL — results are
            byte-identical for every worker count (see DESIGN.md,
            "Parallel & streaming runtime").
        out:
            Optional preallocated ``(num_records, num_hashes)`` uint64
            buffer, e.g. a memory-mapped ``.npy`` slice from
            :func:`~repro.minhash.signature.open_signature_memmap`, so
            signature matrices larger than RAM spill to disk.

        Returns a ``(num_records, num_hashes)`` uint64 matrix whose row
        ``i`` is byte-identical to ``signature(shingle_ids(record_i))``,
        including the empty-set sentinel rows.
        """
        n = corpus.num_records
        out = ensure_signature_out(out, n, self.num_hashes)
        if n == 0:
            return out
        if corpus.num_tokens == 0:
            out[:] = np.uint64(MERSENNE_PRIME_61)
            return out

        tokens_ext, starts, empty_rows = sentinel_stream(corpus)
        vocab_hashes, tokens_ext = compact_vocabulary(corpus, tokens_ext)

        def compute(lo: int, hi: int) -> None:
            gathered = self.gathered_span(vocab_hashes, tokens_ext, lo, hi)
            minima = np.minimum.reduceat(gathered, starts, axis=1)
            minima[:, empty_rows] = MERSENNE_PRIME_61
            out[:, lo:hi] = minima.T

        run_chunked(
            compute,
            chunk_spans(
                self.num_hashes,
                self.rows_per_chunk(tokens_ext.shape[0], chunk_elements),
            ),
            workers,
        )
        return out

    def rows_per_chunk(self, stream: int, chunk_elements: int) -> int:
        """Hash functions per chunk keeping the gather under the cap."""
        return max(1, min(self.num_hashes, chunk_elements // max(stream, 1)))

    def gathered_span(
        self,
        vocab_hashes: np.ndarray,
        tokens_ext: np.ndarray,
        lo: int,
        hi: int,
    ) -> np.ndarray:
        """Hash values of functions ``lo..hi`` along the token stream.

        The ``(hi - lo, num_tokens + 1)`` matrix of hash values along
        the sentinel-extended token stream: the family is evaluated over
        ``vocab_hashes`` (plus the sentinel column at value p, indexed
        by ``len(vocab_hashes)``) and gathered to the stream. Pure
        function of its inputs — safe to evaluate concurrently for
        disjoint spans.
        """
        sentinel = np.uint64(MERSENNE_PRIME_61)
        vocab_values = self._family.hash_values(vocab_hashes, lo, hi)
        vocab_values = np.concatenate(
            [vocab_values, np.full((hi - lo, 1), sentinel, dtype=np.uint64)],
            axis=1,
        )
        return vocab_values[:, tokens_ext]

    def estimate_jaccard(self, sig1: np.ndarray, sig2: np.ndarray) -> float:
        """Fraction of agreeing components — unbiased Jaccard estimate."""
        if sig1.shape != sig2.shape:
            raise ValueError("signatures must have the same length")
        return float(np.mean(sig1 == sig2))
