"""Minhash signature generation (paper §5.1 step 2).

A minhash signature of length ``n`` approximates the Jaccard similarity
between shingle sets: the probability that one signature component
agrees between two records equals their Jaccard similarity (Broder et
al., 2000).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.hashing import UniversalHashFamily


class MinHasher:
    """Produce minhash signatures with ``num_hashes`` hash functions.

    Parameters
    ----------
    num_hashes:
        Signature length ``n = k * l`` (rows per band times bands).
    seed:
        Seed for the universal hash coefficients; two MinHashers with
        the same seed produce identical signatures.
    """

    def __init__(self, num_hashes: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        self.num_hashes = num_hashes
        self.seed = seed
        self._family = UniversalHashFamily(num_hashes, seed)

    def signature(self, shingle_ids: np.ndarray) -> np.ndarray:
        """Minhash signature (uint64 array of length ``num_hashes``).

        Empty shingle sets yield the sentinel signature (all entries
        equal to the hash modulus), which never collides with non-empty
        records and collides with other empty records — mirroring the
        convention that two fully-missing records are textually
        identical.
        """
        return self._family.min_over(shingle_ids)

    def estimate_jaccard(self, sig1: np.ndarray, sig2: np.ndarray) -> float:
        """Fraction of agreeing components — unbiased Jaccard estimate."""
        if sig1.shape != sig2.shape:
            raise ValueError("signatures must have the same length")
        return float(np.mean(sig1 == sig2))
