"""Minhash signatures over q-gram shingles (paper Section 5.1)."""

from repro.minhash.corpus import ShingledCorpus, ShingleVocabulary
from repro.minhash.shingling import Shingler
from repro.minhash.minhash import MinHasher
from repro.minhash.signature import (
    GrowableSignatureSpill,
    SignatureMatrix,
    build_signature_matrix,
    open_signature_memmap,
)

__all__ = [
    "ShingledCorpus",
    "ShingleVocabulary",
    "Shingler",
    "MinHasher",
    "GrowableSignatureSpill",
    "SignatureMatrix",
    "build_signature_matrix",
    "open_signature_memmap",
]
