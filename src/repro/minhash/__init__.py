"""Minhash signatures over q-gram shingles (paper Section 5.1)."""

from repro.minhash.corpus import ShingledCorpus
from repro.minhash.shingling import Shingler
from repro.minhash.minhash import MinHasher
from repro.minhash.signature import SignatureMatrix, build_signature_matrix

__all__ = [
    "ShingledCorpus",
    "Shingler",
    "MinHasher",
    "SignatureMatrix",
    "build_signature_matrix",
]
