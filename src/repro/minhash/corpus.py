"""Corpus-level shingle layout for the batch signature engine.

A :class:`ShingledCorpus` is the output of one pass of
:meth:`repro.minhash.shingling.Shingler.shingle_corpus` over a dataset:
the shingle *vocabulary* is interned (each distinct q-gram hashed
exactly once) and every record's shingle set is stored as a slice of a
single concatenated token array — a CSR-style layout that downstream
batch kernels (:meth:`repro.minhash.minhash.MinHasher.signature_matrix`)
reduce with ``np.minimum.reduceat`` instead of n per-record broadcasts.
See DESIGN.md, "Batch signature engine".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class ShingledCorpus:
    """Interned shingle sets of a record collection.

    Attributes
    ----------
    record_ids:
        Record identifiers, one per CSR row, in dataset order.
    indptr:
        ``(n + 1,)`` int64 row pointers: record ``i`` owns tokens
        ``token_vocab[indptr[i]:indptr[i + 1]]``. Empty shingle sets are
        empty slices (the batch minhash kernel maps them to the same
        sentinel signature as the per-record path).
    token_vocab:
        Concatenated per-record vocabulary indices (int64). Within a
        record the tokens are distinct; their order is unspecified —
        minhash minima are order-invariant.
    vocab_hashes:
        ``(V,)`` uint64 stable 61-bit shingle ids (already reduced
        modulo 2^61 - 1), one per distinct shingle string.
    """

    record_ids: tuple[str, ...]
    indptr: np.ndarray
    token_vocab: np.ndarray
    vocab_hashes: np.ndarray

    @property
    def num_records(self) -> int:
        return len(self.record_ids)

    @property
    def num_tokens(self) -> int:
        return int(self.indptr[-1])

    @property
    def vocab_size(self) -> int:
        return int(self.vocab_hashes.shape[0])

    @cached_property
    def row_index(self) -> dict[str, int]:
        """Record id -> CSR row."""
        return {rid: i for i, rid in enumerate(self.record_ids)}

    @cached_property
    def counts(self) -> np.ndarray:
        """Shingle-set size per record."""
        return np.diff(self.indptr)

    def tokens_of(self, row: int) -> np.ndarray:
        """Vocabulary indices of one record's shingle set."""
        return self.token_vocab[self.indptr[row] : self.indptr[row + 1]]

    def shingle_ids_of(self, row: int) -> np.ndarray:
        """Stable hashed shingle ids of one record (unsorted uint64)."""
        return self.vocab_hashes[self.tokens_of(row)]

    def jaccard(self, row1: int, row2: int) -> float:
        """Exact Jaccard similarity of two records' shingle sets.

        Operates on interned vocabulary indices, so (unlike comparing
        hashed ids) it is exact even under 61-bit hash collisions.
        Two empty sets are fully similar, matching
        :meth:`repro.minhash.shingling.Shingler.jaccard`.
        """
        s1, s2 = self.tokens_of(row1), self.tokens_of(row2)
        if s1.size == 0 and s2.size == 0:
            return 1.0
        intersection = np.intersect1d(s1, s2, assume_unique=True).size
        union = s1.size + s2.size - intersection
        return intersection / union if union else 1.0
