"""Corpus-level shingle layout for the batch signature engine.

A :class:`ShingledCorpus` is the output of one pass of
:meth:`repro.minhash.shingling.Shingler.shingle_corpus` over a dataset:
the shingle *vocabulary* is interned (each distinct q-gram hashed
exactly once) and every record's shingle set is stored as a slice of a
single concatenated token array — a CSR-style layout that downstream
batch kernels (:meth:`repro.minhash.minhash.MinHasher.signature_matrix`)
reduce with ``np.minimum.reduceat`` instead of n per-record broadcasts.
See DESIGN.md, "Batch signature engine".

For streaming ingestion, a :class:`ShingleVocabulary` carries the
interned vocabulary *across* shingling calls: successive record slabs
extend one growing vocabulary instead of re-interning (and
re-hashing) the grams every slab shares with its predecessors.
Signatures themselves are a pure function of the hashed gram multiset
— they would be byte-identical even with a private vocabulary per
slab — so the shared vocabulary is a throughput optimisation plus a
single token id space for token-level work, not a correctness
requirement (see DESIGN.md, "Parallel & streaming runtime").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.cache import LRUCache
from repro.utils.hashing import MERSENNE_PRIME_61, stable_hash

#: Default capacity of the per-value / per-value-tuple memo caches of a
#: :class:`ShingleVocabulary`. The caches only save recomputation —
#: capping them bounds the memory of long-running streaming ingestion
#: without affecting results.
DEFAULT_VALUE_CACHE_SIZE = 65_536


class ShingleVocabulary:
    """Mutable interned shingle vocabulary for (incremental) shingling.

    One :class:`ShingleVocabulary` maps each distinct shingle string to
    a stable index and its 61-bit hash, exactly once, no matter how many
    corpus slabs are shingled against it — repeated grams across slabs
    skip interning, SHA-1 digesting and the memo caches' recomputation.
    Indices are append-only: a gram interned in slab 1 keeps its index
    in every later slab, so :class:`ShingledCorpus` objects built
    against the same vocabulary share one token id space (convenient
    for token-level work; minhash signatures are hash-based and do not
    depend on it).

    The vocabulary also owns the two memo caches used by
    :meth:`repro.minhash.shingling.Shingler.shingle_corpus` — token ids
    per attribute value and per value *tuple*. Both are LRU-capped
    (``max_cached_values``) so unbounded streams of distinct values
    cannot leak memory; an eviction merely costs re-tokenising that
    value if it reappears.

    A vocabulary is bound to the configuration of the first
    :class:`~repro.minhash.shingling.Shingler` that uses it; reusing it
    with a differently-configured shingler raises
    :class:`~repro.errors.ConfigurationError` (the memoised token ids
    would silently be wrong otherwise).
    """

    __slots__ = ("_index", "_hashes", "_snapshot", "_config",
                 "value_tokens", "row_tokens")

    def __init__(self, *, max_cached_values: int = DEFAULT_VALUE_CACHE_SIZE) -> None:
        self._index: dict[str, int] = {}
        self._hashes: list[int] = []
        self._snapshot: np.ndarray | None = None
        self._config: tuple[Hashable, ...] | None = None
        self.value_tokens = LRUCache(max_cached_values)
        self.row_tokens = LRUCache(max_cached_values)

    def __len__(self) -> int:
        return len(self._index)

    def intern(self, gram: str) -> int:
        """Index of ``gram``, interning (and hashing) it on first sight."""
        index = self._index.get(gram)
        if index is None:
            index = len(self._index)
            self._index[gram] = index
            self._hashes.append(stable_hash(gram) % MERSENNE_PRIME_61)
        return index

    def hashes(self) -> np.ndarray:
        """Stable 61-bit ids of the vocabulary, index-aligned (uint64).

        The returned array is a snapshot: growing the vocabulary later
        produces a new, longer array and leaves previously returned
        snapshots (held by earlier :class:`ShingledCorpus` slabs)
        untouched.
        """
        if self._snapshot is None or self._snapshot.shape[0] != len(self._hashes):
            self._snapshot = np.asarray(self._hashes, dtype=np.uint64)
        return self._snapshot

    def bind_config(self, config: tuple[Hashable, ...]) -> None:
        """Pin the shingler configuration this vocabulary serves."""
        if self._config is None:
            self._config = config
        elif self._config != config:
            raise ConfigurationError(
                "ShingleVocabulary is bound to shingler configuration "
                f"{self._config!r}; cannot reuse it with {config!r}"
            )


@dataclass(frozen=True)
class ShingledCorpus:
    """Interned shingle sets of a record collection.

    Attributes
    ----------
    record_ids:
        Record identifiers, one per CSR row, in dataset order.
    indptr:
        ``(n + 1,)`` int64 row pointers: record ``i`` owns tokens
        ``token_vocab[indptr[i]:indptr[i + 1]]``. Empty shingle sets are
        empty slices (the batch minhash kernel maps them to the same
        sentinel signature as the per-record path).
    token_vocab:
        Concatenated per-record vocabulary indices (int64). Within a
        record the tokens are distinct; their order is unspecified —
        minhash minima are order-invariant.
    vocab_hashes:
        ``(V,)`` uint64 stable 61-bit shingle ids (already reduced
        modulo 2^61 - 1), one per distinct shingle string.
    """

    record_ids: tuple[str, ...]
    indptr: np.ndarray
    token_vocab: np.ndarray
    vocab_hashes: np.ndarray

    @property
    def num_records(self) -> int:
        return len(self.record_ids)

    @property
    def num_tokens(self) -> int:
        return int(self.indptr[-1])

    @property
    def vocab_size(self) -> int:
        return int(self.vocab_hashes.shape[0])

    @cached_property
    def row_index(self) -> dict[str, int]:
        """Record id -> CSR row."""
        return {rid: i for i, rid in enumerate(self.record_ids)}

    @cached_property
    def counts(self) -> np.ndarray:
        """Shingle-set size per record."""
        return np.diff(self.indptr)

    def tokens_of(self, row: int) -> np.ndarray:
        """Vocabulary indices of one record's shingle set."""
        return self.token_vocab[self.indptr[row] : self.indptr[row + 1]]

    def shingle_ids_of(self, row: int) -> np.ndarray:
        """Stable hashed shingle ids of one record (unsorted uint64)."""
        return self.vocab_hashes[self.tokens_of(row)]

    def jaccard(self, row1: int, row2: int) -> float:
        """Exact Jaccard similarity of two records' shingle sets.

        Operates on interned vocabulary indices, so (unlike comparing
        hashed ids) it is exact even under 61-bit hash collisions.
        Two empty sets are fully similar, matching
        :meth:`repro.minhash.shingling.Shingler.jaccard`.
        """
        s1, s2 = self.tokens_of(row1), self.tokens_of(row2)
        if s1.size == 0 and s2.size == 0:
            return 1.0
        intersection = np.intersect1d(s1, s2, assume_unique=True).size
        union = s1.size + s2.size - intersection
        return intersection / union if union else 1.0
