"""Signature matrices: minhash signatures for a whole dataset.

Includes the on-disk form: :func:`open_signature_memmap` creates a
``.npy``-backed memory map that :meth:`MinHasher.signature_matrix`
(via its ``out=`` argument) and
:meth:`repro.core.lsh_blocker.LSHBlocker.block_stream` (via
``signatures_out=``) fill slab by slab, so signature matrices larger
than RAM spill to disk instead of failing (see DESIGN.md, "Parallel &
streaming runtime").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset


@dataclass(frozen=True)
class SignatureMatrix:
    """Minhash signatures for every record of a dataset.

    Attributes
    ----------
    record_ids:
        Row order of the matrix.
    matrix:
        ``(num_records, num_hashes)`` uint64 array.
    """

    record_ids: tuple[str, ...]
    matrix: np.ndarray

    def row(self, record_id: str) -> np.ndarray:
        """Signature of one record (linear scan; use indices in bulk code)."""
        index = self.record_ids.index(record_id)
        return self.matrix[index]

    @property
    def num_records(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_hashes(self) -> int:
        return self.matrix.shape[1]


def build_signature_matrix(
    dataset: Dataset,
    shingler: Shingler,
    hasher: MinHasher,
    *,
    workers: int | None = 1,
) -> SignatureMatrix:
    """Shingle and minhash every record of ``dataset``.

    Runs on the corpus-level batch engine: one interned shingling pass
    and a chunked vectorized minhash (``workers`` threads evaluate the
    chunks), byte-identical to hashing each record separately.
    """
    corpus = shingler.shingle_corpus(dataset)
    return SignatureMatrix(
        record_ids=corpus.record_ids,
        matrix=hasher.signature_matrix(corpus, workers=workers),
    )


def open_signature_memmap(
    path: str | os.PathLike, num_records: int, num_hashes: int
) -> np.memmap:
    """Create a writable ``.npy``-backed signature matrix on disk.

    The returned ``(num_records, num_hashes)`` uint64 memory map can be
    passed whole to :meth:`MinHasher.signature_matrix` (``out=``) or to
    :meth:`repro.core.lsh_blocker.LSHBlocker.block_stream`
    (``signatures_out=``), which fills consecutive row slabs as records
    stream in. The file is a valid ``.npy`` array, so a later process
    can reopen it with ``np.load(path, mmap_mode="r")``.
    """
    return np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=np.uint64,
        shape=(num_records, num_hashes),
    )
