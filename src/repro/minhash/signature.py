"""Signature matrices: minhash signatures for a whole dataset."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset


@dataclass(frozen=True)
class SignatureMatrix:
    """Minhash signatures for every record of a dataset.

    Attributes
    ----------
    record_ids:
        Row order of the matrix.
    matrix:
        ``(num_records, num_hashes)`` uint64 array.
    """

    record_ids: tuple[str, ...]
    matrix: np.ndarray

    def row(self, record_id: str) -> np.ndarray:
        """Signature of one record (linear scan; use indices in bulk code)."""
        index = self.record_ids.index(record_id)
        return self.matrix[index]

    @property
    def num_records(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_hashes(self) -> int:
        return self.matrix.shape[1]


def build_signature_matrix(
    dataset: Dataset, shingler: Shingler, hasher: MinHasher
) -> SignatureMatrix:
    """Shingle and minhash every record of ``dataset``.

    Runs on the corpus-level batch engine: one interned shingling pass
    and a chunked vectorized minhash, byte-identical to hashing each
    record separately.
    """
    corpus = shingler.shingle_corpus(dataset)
    return SignatureMatrix(
        record_ids=corpus.record_ids, matrix=hasher.signature_matrix(corpus)
    )
