"""Signature matrices: minhash signatures for a whole dataset.

Includes the on-disk forms:

* :func:`open_signature_memmap` creates a fixed-size ``.npy``-backed
  memory map that :meth:`MinHasher.signature_matrix` (via its ``out=``
  argument) and :meth:`repro.core.lsh_blocker.LSHBlocker.block_stream`
  (via ``signatures_out=``) fill slab by slab — for streams whose
  record count is known up front;
* :class:`GrowableSignatureSpill` appends row slabs to a ``.npy`` file
  of *unknown* final length and patches the header on
  :meth:`~GrowableSignatureSpill.finalize` — for plain generators with
  no ``len()`` (see DESIGN.md, "Process-sharded streaming runtime").

Either way signature matrices larger than RAM spill to disk instead of
failing.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SlabTransportError
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.utils import faults
from repro.utils.parallel import slab_integrity_enabled


@dataclass(frozen=True)
class SignatureMatrix:
    """Minhash signatures for every record of a dataset.

    Attributes
    ----------
    record_ids:
        Row order of the matrix.
    matrix:
        ``(num_records, num_hashes)`` uint64 array.
    """

    record_ids: tuple[str, ...]
    matrix: np.ndarray

    def row(self, record_id: str) -> np.ndarray:
        """Signature of one record (O(1) via a lazily built id index).

        Raises :class:`KeyError` for unknown ids (previously a
        ``ValueError`` from the linear ``list.index`` scan).
        """
        index = self._row_index().get(record_id)
        if index is None:
            raise KeyError(record_id)
        return self.matrix[index]

    def _row_index(self) -> dict[str, int]:
        """id → row mapping, built once on first lookup.

        The dataclass is frozen, so the cache is stashed through
        ``object.__setattr__``; ``record_ids`` never mutates, which
        keeps the mapping valid for the matrix's lifetime.
        """
        cached = self.__dict__.get("_row_index_cache")
        if cached is None:
            cached = {rid: i for i, rid in enumerate(self.record_ids)}
            object.__setattr__(self, "_row_index_cache", cached)
        return cached

    @property
    def num_records(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_hashes(self) -> int:
        return self.matrix.shape[1]


def build_signature_matrix(
    dataset: Dataset,
    shingler: Shingler,
    hasher: MinHasher,
    *,
    workers: int | None = 1,
) -> SignatureMatrix:
    """Shingle and minhash every record of ``dataset``.

    Runs on the corpus-level batch engine: one interned shingling pass
    and a chunked vectorized minhash (``workers`` threads evaluate the
    chunks), byte-identical to hashing each record separately.
    """
    corpus = shingler.shingle_corpus(dataset)
    return SignatureMatrix(
        record_ids=corpus.record_ids,
        matrix=hasher.signature_matrix(corpus, workers=workers),
    )


def open_signature_memmap(
    path: str | os.PathLike, num_records: int, num_hashes: int
) -> np.memmap:
    """Create a writable ``.npy``-backed signature matrix on disk.

    The returned ``(num_records, num_hashes)`` uint64 memory map can be
    passed whole to :meth:`MinHasher.signature_matrix` (``out=``) or to
    :meth:`repro.core.lsh_blocker.LSHBlocker.block_stream`
    (``signatures_out=``), which fills consecutive row slabs as records
    stream in. The file is a valid ``.npy`` array, so a later process
    can reopen it with ``np.load(path, mmap_mode="r")``.
    """
    return np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=np.uint64,
        shape=(num_records, num_hashes),
    )


#: Fixed byte length of the spill's ``.npy`` header dict (padding
#: included, trailing newline excluded). Writing the placeholder and the
#: finalized header at the same length lets :meth:`finalize` patch the
#: shape in place; 118 + the 10 magic/length bytes align the row data at
#: 128 bytes and leave room for any shape below 2**32 rows.
_SPILL_HEADER_LEN = 118

#: Bytes of the ``.npy`` magic string, version and header-length field
#: that precede the header dict.
_SPILL_MAGIC_LEN = 10

#: File offset where a spill's row data starts — everything before it
#: is the fixed-length ``.npy`` preamble.
SPILL_DATA_OFFSET = _SPILL_MAGIC_LEN + _SPILL_HEADER_LEN


def _spill_header(shape: tuple[int, int]) -> bytes:
    """A version-1.0 ``.npy`` header for a C-order uint64 array, padded
    to the fixed spill length."""
    descr = np.lib.format.dtype_to_descr(np.dtype(np.uint64))
    header = (
        "{'descr': %r, 'fortran_order': False, 'shape': %r, }"
        % (descr, shape)
    ).encode("latin1")
    padding = _SPILL_HEADER_LEN - 1 - len(header)
    if padding < 0:  # pragma: no cover - shapes this large never fit RAM
        raise ConfigurationError(f"npy header for shape {shape} too long")
    return (
        b"\x93NUMPY\x01\x00"
        + struct.pack("<H", _SPILL_HEADER_LEN)
        + header
        + b" " * padding
        + b"\n"
    )


#: 16-byte integrity footer a finalized spill carries after its row
#: data: magic, CRC32 of the (header-patched) preamble, row count.
#: ``np.load`` ignores trailing bytes, so footered spills stay plain
#: ``.npy`` files; :func:`validate_spill` uses the footer to reject
#: truncated or header-corrupted spills on attach.
SPILL_FOOTER_MAGIC = b"RSPF"
_SPILL_FOOTER_LEN = 16


def _spill_footer(rows: int, num_hashes: int) -> bytes:
    preamble = _spill_header((rows, num_hashes))
    return (
        SPILL_FOOTER_MAGIC
        + struct.pack("<I", zlib.crc32(preamble))
        + struct.pack("<Q", rows)
    )


def validate_spill(path: str | os.PathLike, num_hashes: int) -> int:
    """Validate a closed spill's integrity footer; return its row count.

    Checks that the footer is present, that its CRC matches the
    ``.npy`` preamble for the advertised shape, and that the file holds
    exactly the advertised row bytes — i.e. the spill was closed
    cleanly and not truncated or corrupted since. Raises
    :class:`~repro.errors.SlabTransportError` on any mismatch.
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            preamble = handle.read(SPILL_DATA_OFFSET)
            handle.seek(max(size - _SPILL_FOOTER_LEN, 0))
            footer = handle.read(_SPILL_FOOTER_LEN)
    except OSError as exc:
        raise SlabTransportError(
            f"spill file {path} unreadable: {exc}", path=path,
            errno=exc.errno,
        ) from exc
    if size < SPILL_DATA_OFFSET + _SPILL_FOOTER_LEN or len(footer) < _SPILL_FOOTER_LEN:
        raise SlabTransportError(
            f"spill file {path} too short for an integrity footer "
            f"({size} bytes)", path=path,
        )
    if footer[:4] != SPILL_FOOTER_MAGIC:
        raise SlabTransportError(
            f"spill file {path} is missing its integrity footer "
            "(truncated, or closed by a pre-footer writer)", path=path,
        )
    (crc,) = struct.unpack("<I", footer[4:8])
    (rows,) = struct.unpack("<Q", footer[8:16])
    expected = _spill_header((rows, num_hashes))
    if preamble != expected or crc != zlib.crc32(expected):
        raise SlabTransportError(
            f"spill file {path} failed its header checksum "
            f"(advertised {rows} rows x {num_hashes} hashes)", path=path,
        )
    data_end = SPILL_DATA_OFFSET + rows * 8 * num_hashes
    if size != data_end + _SPILL_FOOTER_LEN:
        raise SlabTransportError(
            f"spill file {path} holds {size - SPILL_DATA_OFFSET - _SPILL_FOOTER_LEN} "
            f"data bytes but advertises {rows} rows", path=path,
        )
    # Round-trip check: the patched header must parse back (through
    # numpy's own reader, not our renderer) to exactly the advertised
    # shape — what np.load, rows_so_far() and reopen() will all see.
    try:
        with open(path, "rb") as handle:
            version = np.lib.format.read_magic(handle)
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                handle
            )
    except (OSError, ValueError) as exc:
        raise SlabTransportError(
            f"spill file {path} header does not parse as .npy: {exc}",
            path=path,
        ) from exc
    if (
        version != (1, 0)
        or fortran
        or dtype != np.dtype(np.uint64)
        or shape != (rows, num_hashes)
    ):
        raise SlabTransportError(
            f"spill file {path} header round-trips to {shape} "
            f"{dtype}, not the advertised ({rows}, {num_hashes}) uint64",
            path=path,
        )
    return rows


class GrowableSignatureSpill:
    """Append-to-file signature spill for streams of unknown length.

    Where :func:`open_signature_memmap` needs ``num_records`` up front,
    a growable spill starts from a placeholder ``.npy`` header with
    shape ``(0, num_hashes)``, appends row slabs as raw chunked writes,
    and rewrites the (fixed-length) header with the final row count on
    :meth:`finalize` — the slab pattern of the PR 2 memory-mapped spill
    without the up-front count. Each :meth:`append` returns a read-only
    *file-backed* view of the rows it just wrote, so band keys derived
    from it stay pageable instead of pinning every slab in RAM.

    Until :meth:`finalize` runs the file's header undersells the data
    (readers see zero rows); after it the file is a plain ``.npy`` that
    any later process can ``np.load(path, mmap_mode="r")``.

    The spill is a context manager: ``with GrowableSignatureSpill(...)``
    guarantees the file handle is released (and the header patched to
    the rows written so far) even when the stream aborts mid-way —
    the ``block_stream`` spill paths use the same :meth:`close` on
    error, so an interrupted stream leaves a valid, salvageable
    ``.npy`` instead of a leaked handle over a zero-row file.
    """

    def __init__(self, path: str | os.PathLike, num_hashes: int) -> None:
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        self.path = os.fspath(path)
        self.num_hashes = num_hashes
        self._rows = 0
        self._file = open(self.path, "w+b")
        self._file.write(_spill_header((0, num_hashes)))
        self._file.flush()

    @classmethod
    def reopen(
        cls, path: str | os.PathLike, num_hashes: int
    ) -> "GrowableSignatureSpill":
        """Resume appending to a closed (or salvaged) spill.

        Validates the sealed file first — footer, header checksum and
        the header round-trip, so a spill that :meth:`close` patched
        after a failed append is accepted exactly at its salvaged row
        count. The integrity footer is dropped and the writer
        positioned after the existing rows: :meth:`rows_so_far`
        immediately reports every previously written row and later
        appends extend them; :meth:`close` re-seals the file.
        """
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}"
            )
        rows = validate_spill(path, num_hashes)
        spill = cls.__new__(cls)
        spill.path = os.fspath(path)
        spill.num_hashes = num_hashes
        spill._rows = rows
        handle = open(spill.path, "r+b")
        data_end = SPILL_DATA_OFFSET + rows * 8 * num_hashes
        handle.truncate(data_end)
        handle.seek(data_end)
        spill._file = handle
        return spill

    @property
    def num_records(self) -> int:
        """Rows appended so far."""
        return self._rows

    @property
    def finalized(self) -> bool:
        return self._file is None

    def append(self, matrix: np.ndarray) -> np.ndarray:
        """Append a ``(n, num_hashes)`` uint64 slab; return its on-disk view.

        The returned array is a read-only ``np.memmap`` over the bytes
        just written (empty slabs return a plain empty array). Views
        remain valid after :meth:`finalize`.
        """
        if self._file is None:
            raise ConfigurationError("spill is finalized; cannot append")
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_hashes:
            raise ConfigurationError(
                f"expected (n, {self.num_hashes}) rows, got shape "
                f"{matrix.shape}"
            )
        if matrix.dtype != np.uint64:
            raise ConfigurationError(
                f"spill rows must be uint64, got {matrix.dtype}"
            )
        n = matrix.shape[0]
        if n == 0:
            return np.empty((0, self.num_hashes), dtype=np.uint64)
        offset = SPILL_DATA_OFFSET + self._rows * 8 * self.num_hashes
        try:
            faults.maybe_fail("spill.write_error", path=self.path)
            self._file.write(np.ascontiguousarray(matrix).tobytes())
            self._file.flush()
        except OSError as exc:
            # Close-and-salvage: the rows written *before* this slab
            # are intact, so patch them into the header (dropping any
            # partial bytes of the failed slab) and surface a typed,
            # transient error instead of leaving the spill with a
            # live handle over inconsistent state.
            self.close()
            raise SlabTransportError(
                f"spill write failed after {self._rows} rows "
                f"({exc}); spill closed and salvaged at {self.path}",
                path=self.path, errno=exc.errno,
            ) from exc
        self._rows += n
        return np.memmap(
            self.path, dtype=np.uint64, mode="r", offset=offset,
            shape=(n, self.num_hashes),
        )

    def rows_so_far(self) -> np.ndarray:
        """Read-only file-backed view of every row appended so far.

        Unlike :meth:`finalize` this neither patches the header nor
        closes the handle, so a long-lived writer — the online index
        spilling signature slabs as records arrive — can inspect its
        accumulated matrix mid-stream and keep appending afterwards.
        An empty spill returns a plain ``(0, num_hashes)`` array.
        """
        if self._rows == 0:
            return np.empty((0, self.num_hashes), dtype=np.uint64)
        return np.memmap(
            self.path, dtype=np.uint64, mode="r",
            offset=SPILL_DATA_OFFSET, shape=(self._rows, self.num_hashes),
        )

    def finalize(self) -> np.memmap:
        """Patch the header with the final shape; return the full matrix.

        Idempotent: later calls reopen the finalized file. The returned
        memory map is read-only; an empty stream finalizes to a valid
        ``(0, num_hashes)`` array. When slab integrity is enabled (the
        default) the file's footer is validated before attaching, so a
        spill truncated or corrupted behind the writer's back raises
        :class:`~repro.errors.SlabTransportError` instead of handing
        out a garbage matrix.
        """
        self.close()
        if slab_integrity_enabled():
            validate_spill(self.path, self.num_hashes)
        return np.load(self.path, mmap_mode="r")

    def close(self) -> None:
        """Release the file handle, patching the header first.

        Idempotent. The handle is closed even if the header patch
        fails (e.g. a full disk), so an aborted stream never leaks it;
        on the normal path the closed file is a valid ``.npy`` holding
        every row appended so far.
        """
        if self._file is None:
            return
        file, self._file = self._file, None
        try:
            data_end = SPILL_DATA_OFFSET + self._rows * 8 * self.num_hashes
            file.seek(0)
            file.write(_spill_header((self._rows, self.num_hashes)))
            file.flush()
            # Drop any partial bytes of an aborted append, then seal
            # the consistent prefix with the integrity footer.
            file.truncate(data_end)
            file.seek(data_end)
            file.write(_spill_footer(self._rows, self.num_hashes))
            file.flush()
        finally:
            file.close()

    def __enter__(self) -> "GrowableSignatureSpill":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
