"""Shingling: record -> set of shingle ids (paper §5.1 step 1).

A shingler converts the values of the selected blocking attributes into
a set of q-grams (or whole-value tokens when ``q is None``, the paper's
"Exact Value" configuration), each mapped to a stable 61-bit integer id
so minhash can work on numeric arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.minhash.corpus import ShingledCorpus, ShingleVocabulary
from repro.records.record import Record
from repro.text.normalize import normalize
from repro.text.qgrams import qgrams
from repro.utils.hashing import MERSENNE_PRIME_61, stable_hash


@dataclass(frozen=True)
class Shingler:
    """Convert records into shingle (q-gram) id sets.

    Parameters
    ----------
    attributes:
        Attribute names whose values are shingled, e.g.
        ``("authors", "title")`` for Cora or ``("first_name",
        "last_name")`` for NC Voter.
    q:
        q-gram length, or ``None`` for whole-value shingles ("Exact
        Value" in Fig. 6).
    padded:
        Pad values before extracting q-grams (see :mod:`repro.text.qgrams`).
    """

    attributes: tuple[str, ...]
    q: int | None = 3
    padded: bool = False

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigurationError("Shingler needs at least one attribute")
        if self.q is not None and self.q < 1:
            raise ConfigurationError(f"q must be >= 1 or None, got {self.q}")

    def shingles(self, record: Record) -> frozenset[str]:
        """The set of textual shingles of a record."""
        grams: set[str] = set()
        for attribute in self.attributes:
            value = normalize(record.get(attribute))
            if not value:
                continue
            if self.q is None:
                grams.add(f"{attribute}={value}")
            else:
                grams.update(qgrams(value, self.q, padded=self.padded))
        return frozenset(grams)

    def shingle_ids(self, record: Record) -> np.ndarray:
        """Stable numeric ids of the record's shingles (uint64).

        The *multiset* of ids is deterministic (SHA-1 based), but the
        array order is unspecified: minhash minima are order-invariant,
        so sorting here would be wasted work. Callers that need a
        canonical order (none in this library) must sort themselves.
        """
        ids = [
            stable_hash(gram) % MERSENNE_PRIME_61 for gram in self.shingles(record)
        ]
        return np.array(ids, dtype=np.uint64)

    def shingle_corpus(
        self,
        records: Iterable[Record],
        *,
        vocabulary: ShingleVocabulary | None = None,
    ) -> ShingledCorpus:
        """One-pass corpus shingling with an interned vocabulary.

        Each distinct shingle string across the whole corpus is
        SHA-1-hashed exactly once; records are stored as CSR rows of
        vocabulary indices. This is the entry point of the batch
        signature engine (see DESIGN.md): downstream kernels evaluate
        hash families over the vocabulary instead of per record.

        Parameters
        ----------
        records:
            The records to shingle, in dataset order.
        vocabulary:
            Optional :class:`~repro.minhash.corpus.ShingleVocabulary`
            extended *in place* — the incremental/streaming mode. Pass
            the same vocabulary for successive record slabs and grams
            shared with earlier slabs are neither re-interned nor
            re-hashed, and all slabs share one token id space.
            Signatures are a pure function of the hashed gram multiset,
            so they are identical with or without a shared vocabulary —
            sharing buys throughput, not correctness. ``None`` (the
            default) uses a fresh private vocabulary, the one-shot
            behaviour.
        """
        vocab = ShingleVocabulary() if vocabulary is None else vocabulary
        vocab.bind_config((self.attributes, self.q, self.padded))
        indptr: list[int] = [0]
        tokens: list[int] = []
        record_ids: list[str] = []

        def intern_value(attribute: str, value: str) -> list[int]:
            """Token ids of one attribute value's shingles."""
            grams: Iterable[str]
            normalized = normalize(value)
            if not normalized:
                grams = ()
            elif self.q is None:
                grams = (f"{attribute}={normalized}",)
            else:
                grams = qgrams(normalized, self.q, padded=self.padded)
            return [vocab.intern(gram) for gram in grams]

        # Shingle sets depend only on the attribute values, which repeat
        # heavily in real corpora (duplicate entities, small name
        # pools): memoize token ids per value — and per value *tuple* —
        # so repeated records skip normalization, q-gram extraction and
        # interning entirely. The memos live on the vocabulary and are
        # LRU-capped, so streaming ingestion cannot leak through them.
        by_value = vocab.value_tokens
        by_values = vocab.row_tokens
        for record in records:
            record_ids.append(record.record_id)
            values = tuple(record.get(attribute) for attribute in self.attributes)
            row_tokens = by_values.get(values)
            if row_tokens is None:
                merged: list[int] = []
                for attribute, value in zip(self.attributes, values):
                    key = (attribute, value)
                    value_tokens = by_value.get(key)
                    if value_tokens is None:
                        value_tokens = intern_value(attribute, value)
                        by_value[key] = value_tokens
                    merged.extend(value_tokens)
                # A record's shingles form a set: q-grams repeated
                # within a value or shared across attributes count once.
                row_tokens = list(dict.fromkeys(merged))
                by_values[values] = row_tokens
            tokens.extend(row_tokens)
            indptr.append(len(tokens))
        return ShingledCorpus(
            record_ids=tuple(record_ids),
            indptr=np.asarray(indptr, dtype=np.int64),
            token_vocab=np.asarray(tokens, dtype=np.int64),
            vocab_hashes=vocab.hashes(),
        )

    def jaccard(self, record1: Record, record2: Record) -> float:
        """Exact Jaccard similarity of two records' shingle sets.

        This is the textual similarity that minhash signatures
        approximate; used for similarity-distribution analysis (Fig. 6)
        and in tests.
        """
        s1, s2 = self.shingles(record1), self.shingles(record2)
        if not s1 and not s2:
            return 1.0
        union = len(s1 | s2)
        return len(s1 & s2) / union if union else 1.0
