"""Shingling: record -> set of shingle ids (paper §5.1 step 1).

A shingler converts the values of the selected blocking attributes into
a set of q-grams (or whole-value tokens when ``q is None``, the paper's
"Exact Value" configuration), each mapped to a stable 61-bit integer id
so minhash can work on numeric arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.records.record import Record
from repro.text.normalize import normalize
from repro.text.qgrams import qgrams
from repro.utils.hashing import MERSENNE_PRIME_61, stable_hash


@dataclass(frozen=True)
class Shingler:
    """Convert records into shingle (q-gram) id sets.

    Parameters
    ----------
    attributes:
        Attribute names whose values are shingled, e.g.
        ``("authors", "title")`` for Cora or ``("first_name",
        "last_name")`` for NC Voter.
    q:
        q-gram length, or ``None`` for whole-value shingles ("Exact
        Value" in Fig. 6).
    padded:
        Pad values before extracting q-grams (see :mod:`repro.text.qgrams`).
    """

    attributes: tuple[str, ...]
    q: int | None = 3
    padded: bool = False

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigurationError("Shingler needs at least one attribute")
        if self.q is not None and self.q < 1:
            raise ConfigurationError(f"q must be >= 1 or None, got {self.q}")

    def shingles(self, record: Record) -> frozenset[str]:
        """The set of textual shingles of a record."""
        grams: set[str] = set()
        for attribute in self.attributes:
            value = normalize(record.get(attribute))
            if not value:
                continue
            if self.q is None:
                grams.add(f"{attribute}={value}")
            else:
                grams.update(qgrams(value, self.q, padded=self.padded))
        return frozenset(grams)

    def shingle_ids(self, record: Record) -> np.ndarray:
        """Stable numeric ids of the record's shingles (sorted uint64)."""
        ids = sorted(
            stable_hash(gram) % MERSENNE_PRIME_61 for gram in self.shingles(record)
        )
        return np.array(ids, dtype=np.uint64)

    def jaccard(self, record1: Record, record2: Record) -> float:
        """Exact Jaccard similarity of two records' shingle sets.

        This is the textual similarity that minhash signatures
        approximate; used for similarity-distribution analysis (Fig. 6)
        and in tests.
        """
        s1, s2 = self.shingles(record1), self.shingles(record2)
        if not s1 and not s2:
            return 1.0
        union = len(s1 | s2)
        return len(s1 & s2) / union if union else 1.0
