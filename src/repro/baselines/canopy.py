"""Canopy clustering blockers (CaTh, CaNN) — McCallum et al., 2000.

A random seed record is drawn from the pool; records cheaply similar to
it form a canopy (block). Records *very* similar to the seed are removed
from the pool, so canopies overlap but the pool shrinks every round.

* CaTh uses loose/tight similarity thresholds.
* CaNN replaces the thresholds with nearest-neighbour counts (the n1
  nearest records form the canopy, the n2 nearest leave the pool).

Candidate similarities are computed only for records sharing at least
one q-gram with the seed (inverted index), which is the standard trick
that keeps canopies sub-quadratic in practice.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.text.jaccard import jaccard_similarity
from repro.text.qgrams import qgram_set, qgrams
from repro.text.tfidf import TfidfVectorizer, cosine_similarity
from repro.utils.rand import rng_from_seed

#: Similarity flavours accepted by the canopy blockers.
CANOPY_SIMILARITIES = ("jaccard", "tfidf")


class _CanopyBase(KeyedBlocker):
    """Shared canopy machinery: token index and similarity backend."""

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "tfidf",
        q: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes)
        if similarity not in CANOPY_SIMILARITIES:
            raise ConfigurationError(
                f"similarity must be one of {CANOPY_SIMILARITIES}, got {similarity!r}"
            )
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.similarity_name = similarity
        self.q = q
        self.seed = seed

    def _prepare(self, dataset: Dataset):
        """Tokenise keys, build the inverted index and similarity fn.

        Runs on the batch key path: keys come from one memoized
        :meth:`~repro.baselines.base.KeyedBlocker.keys_of` pass and the
        q-gram tokenisation is computed once per distinct key.
        """
        tokens_of: dict[str, tuple[str, ...]] = {}
        grams_of: dict[str, tuple[str, ...]] = {}
        for record_id, key in zip(dataset.record_ids, self.keys_of(dataset)):
            grams = grams_of.get(key)
            if grams is None:
                grams = tuple(qgrams(key, self.q))
                grams_of[key] = grams
            tokens_of[record_id] = grams

        index: dict[str, set[str]] = defaultdict(set)
        for record_id, tokens in tokens_of.items():
            for token in set(tokens):
                index[token].add(record_id)

        if self.similarity_name == "tfidf":
            vectorizer = TfidfVectorizer().fit(tokens_of.values())
            vectors = {
                rid: vectorizer.transform(tokens) for rid, tokens in tokens_of.items()
            }

            def sim(a: str, b: str) -> float:
                return cosine_similarity(vectors[a], vectors[b])

        else:
            sets = {rid: frozenset(tokens) for rid, tokens in tokens_of.items()}

            def sim(a: str, b: str) -> float:
                return jaccard_similarity(sets[a], sets[b])

        return tokens_of, index, sim

    def _candidates(
        self,
        seed_id: str,
        tokens_of: dict[str, tuple[str, ...]],
        index: dict[str, set[str]],
        pool: set[str],
    ) -> set[str]:
        found: set[str] = set()
        for token in set(tokens_of[seed_id]):
            found |= index[token] & pool
        found.discard(seed_id)
        return found


class ThresholdCanopy(_CanopyBase):
    """CaTh — canopy clustering with loose/tight similarity thresholds."""

    name = "CaTh"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "tfidf",
        loose: float = 0.8,
        tight: float = 0.9,
        q: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes, similarity, q, seed)
        if not 0.0 < loose <= tight <= 1.0:
            raise ConfigurationError(
                f"need 0 < loose <= tight <= 1, got loose={loose}, tight={tight}"
            )
        self.loose = loose
        self.tight = tight

    def describe(self) -> str:
        return (
            f"CaTh(sim={self.similarity_name}, q={self.q}, "
            f"loose={self.loose}, tight={self.tight})"
        )

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        tokens_of, index, sim = self._prepare(dataset)
        rng = rng_from_seed(self.seed, "canopy-th", dataset.name)
        pool = set(tokens_of)
        groups: list[list[str]] = []
        while pool:
            seed_id = rng.choice(sorted(pool))
            canopy = [seed_id]
            removed = {seed_id}
            for candidate in self._candidates(seed_id, tokens_of, index, pool):
                similarity = sim(seed_id, candidate)
                if similarity >= self.loose:
                    canopy.append(candidate)
                    if similarity >= self.tight:
                        removed.add(candidate)
            pool -= removed
            groups.append(canopy)
        return groups


class NearestNeighbourCanopy(_CanopyBase):
    """CaNN — canopy clustering with nearest-neighbour counts."""

    name = "CaNN"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "tfidf",
        n_canopy: int = 10,
        n_remove: int = 5,
        q: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes, similarity, q, seed)
        if not 1 <= n_remove <= n_canopy:
            raise ConfigurationError(
                f"need 1 <= n_remove <= n_canopy, got {n_remove} / {n_canopy}"
            )
        self.n_canopy = n_canopy
        self.n_remove = n_remove

    def describe(self) -> str:
        return (
            f"CaNN(sim={self.similarity_name}, q={self.q}, "
            f"n1={self.n_canopy}, n2={self.n_remove})"
        )

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        tokens_of, index, sim = self._prepare(dataset)
        rng = rng_from_seed(self.seed, "canopy-nn", dataset.name)
        pool = set(tokens_of)
        groups: list[list[str]] = []
        while pool:
            seed_id = rng.choice(sorted(pool))
            scored = sorted(
                (
                    (sim(seed_id, candidate), candidate)
                    for candidate in self._candidates(seed_id, tokens_of, index, pool)
                ),
                reverse=True,
            )
            canopy = [seed_id] + [rid for _, rid in scored[: self.n_canopy]]
            removed = {seed_id} | {rid for _, rid in scored[: self.n_remove]}
            pool -= removed
            groups.append(canopy)
        return groups
