"""Shared machinery for the baseline blockers: blocking keys.

Key extraction runs on a batch path analogous to the LSH engine's
corpus shingling: :meth:`KeyedBlocker.keys_of` derives every record's
blocking key value in one memoized pass (normalisation per distinct
attribute value, key assembly per distinct value *tuple* — both repeat
heavily in deduplication corpora), and every helper and baseline
builds on that list instead of re-normalising record by record. The
keys are pure functions of the attribute values, so the batch path is
output-identical to calling :meth:`KeyedBlocker.key` per record.
"""

from __future__ import annotations

import time
from abc import abstractmethod

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.text.normalize import normalize


class KeyedBlocker(Blocker):
    """Base class for blockers driven by a blocking-key string.

    The blocking key value (BKV) is the normalised concatenation of the
    configured attributes — e.g. ``authors + title`` for Cora, ``first
    name + last name`` for NC Voter, matching §6.3.4.
    """

    def __init__(self, attributes: tuple[str, ...]) -> None:
        if not attributes:
            raise ConfigurationError("need at least one key attribute")
        self.attributes = tuple(attributes)

    def key(self, record: Record) -> str:
        """The record's blocking key value (per-record reference form)."""
        parts = [normalize(record.get(a)) for a in self.attributes]
        return " ".join(p for p in parts if p)

    def keys_of(self, dataset: Dataset) -> list[str]:
        """Every record's blocking key, one memoized pass (batch path).

        Normalisation is computed once per distinct attribute value and
        keys once per distinct value tuple; element ``i`` equals
        ``self.key(record_i)`` exactly.
        """
        normalized: dict[str, str] = {}
        by_values: dict[tuple[str, ...], str] = {}
        keys: list[str] = []
        for record in dataset:
            values = tuple(record.get(a) for a in self.attributes)
            key = by_values.get(values)
            if key is None:
                parts = []
                for value in values:
                    part = normalized.get(value)
                    if part is None:
                        part = normalize(value)
                        normalized[value] = part
                    if part:
                        parts.append(part)
                key = " ".join(parts)
                by_values[values] = key
            keys.append(key)
        return keys

    @abstractmethod
    def _groups(self, dataset: Dataset) -> list[list[str]]:
        """Raw record-id groups before normalisation."""

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        blocks = make_blocks(self._groups(dataset))
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={"description": self.describe()},
        )

    def sorted_keyed_records(self, dataset: Dataset) -> list[tuple[str, str]]:
        """(key, record_id) pairs sorted by key, then id (determinism)."""
        return sorted(zip(self.keys_of(dataset), dataset.record_ids))

    def key_index(self, dataset: Dataset) -> dict[str, list[str]]:
        """Inverted index: key value -> record ids (insertion order)."""
        index: dict[str, list[str]] = {}
        for record_id, key in zip(dataset.record_ids, self.keys_of(dataset)):
            index.setdefault(key, []).append(record_id)
        return index
