"""Shared machinery for the baseline blockers: blocking keys."""

from __future__ import annotations

import time
from abc import abstractmethod

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.text.normalize import normalize


class KeyedBlocker(Blocker):
    """Base class for blockers driven by a blocking-key string.

    The blocking key value (BKV) is the normalised concatenation of the
    configured attributes — e.g. ``authors + title`` for Cora, ``first
    name + last name`` for NC Voter, matching §6.3.4.
    """

    def __init__(self, attributes: tuple[str, ...]) -> None:
        if not attributes:
            raise ConfigurationError("need at least one key attribute")
        self.attributes = tuple(attributes)

    def key(self, record: Record) -> str:
        """The record's blocking key value."""
        parts = [normalize(record.get(a)) for a in self.attributes]
        return " ".join(p for p in parts if p)

    @abstractmethod
    def _groups(self, dataset: Dataset) -> list[list[str]]:
        """Raw record-id groups before normalisation."""

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        blocks = make_blocks(self._groups(dataset))
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={"description": self.describe()},
        )

    def sorted_keyed_records(self, dataset: Dataset) -> list[tuple[str, str]]:
        """(key, record_id) pairs sorted by key, then id (determinism)."""
        return sorted((self.key(r), r.record_id) for r in dataset)

    def key_index(self, dataset: Dataset) -> dict[str, list[str]]:
        """Inverted index: key value -> record ids (insertion order)."""
        index: dict[str, list[str]] = {}
        for record in dataset:
            index.setdefault(self.key(record), []).append(record.record_id)
        return index
