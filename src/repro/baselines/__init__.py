"""The twelve survey blocking techniques of the paper's Table 3.

Abbreviations follow Christen's survey (TKDE 2012): TBlo, SorA, SorII,
ASor, QGr, CaTh, CaNN, StMT, StMNN, SuA, SuAS, RSuA. The registry module
reproduces the paper's 163-setting parameter grid.
"""

from repro.baselines.standard import StandardBlocker
from repro.baselines.sorted_neighbourhood import (
    ArraySortedNeighbourhood,
    InvertedIndexSortedNeighbourhood,
)
from repro.baselines.adaptive_sn import AdaptiveSortedNeighbourhood
from repro.baselines.qgram_index import QGramBlocker
from repro.baselines.canopy import NearestNeighbourCanopy, ThresholdCanopy
from repro.baselines.stringmap import (
    StringMapEmbedder,
    StringMapNNBlocker,
    StringMapThresholdBlocker,
)
from repro.baselines.token import TokenBlocker
from repro.baselines.suffix_array import (
    AllSubstringsBlocker,
    RobustSuffixArrayBlocker,
    SuffixArrayBlocker,
)
from repro.baselines.registry import (
    TECHNIQUE_ORDER,
    iter_parameter_grid,
    make_blockers,
    paper_grid_sizes,
)

__all__ = [
    "StandardBlocker",
    "TokenBlocker",
    "ArraySortedNeighbourhood",
    "InvertedIndexSortedNeighbourhood",
    "AdaptiveSortedNeighbourhood",
    "QGramBlocker",
    "ThresholdCanopy",
    "NearestNeighbourCanopy",
    "StringMapEmbedder",
    "StringMapThresholdBlocker",
    "StringMapNNBlocker",
    "SuffixArrayBlocker",
    "AllSubstringsBlocker",
    "RobustSuffixArrayBlocker",
    "TECHNIQUE_ORDER",
    "make_blockers",
    "iter_parameter_grid",
    "paper_grid_sizes",
]
