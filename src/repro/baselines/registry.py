"""Registry of the survey techniques and the paper's parameter grids.

The paper evaluates 163 parameter settings across the 12 survey
techniques (§6.3.4): TBlo 1, SorA 5, SorII 5, ASor 8, QGr 4, CaTh 8,
CaNN 8, StMT 32, StMNN 32, SuA 6, SuAS 6, RSuA 48. This module encodes
exactly those grids, parameterised only by the blocking-key attributes,
so benchmark code can sweep them and report each technique at its
best-FM setting as the survey protocol requires.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.baselines.adaptive_sn import AdaptiveSortedNeighbourhood
from repro.baselines.canopy import NearestNeighbourCanopy, ThresholdCanopy
from repro.baselines.qgram_index import QGramBlocker
from repro.baselines.sorted_neighbourhood import (
    ArraySortedNeighbourhood,
    InvertedIndexSortedNeighbourhood,
)
from repro.baselines.standard import StandardBlocker
from repro.baselines.stringmap import StringMapNNBlocker, StringMapThresholdBlocker
from repro.baselines.suffix_array import (
    AllSubstringsBlocker,
    RobustSuffixArrayBlocker,
    SuffixArrayBlocker,
)
from repro.core.base import Blocker
from repro.errors import ConfigurationError
from repro.text.similarity import PAPER_COMPARATORS

#: Display order of Table 3 / Fig. 11.
TECHNIQUE_ORDER: tuple[str, ...] = (
    "TBlo", "SorA", "SorII", "ASor", "QGr", "CaTh",
    "CaNN", "StMT", "StMNN", "SuA", "SuAS", "RSuA",
)

_WINDOWS = (2, 3, 5, 7, 10)
_THRESHOLDS = (0.8, 0.9)
_QS = (2, 3)
# (loose, tight) — §6.3.4: "thresholds were set to {0.95/0.85, 0.9/0.8}".
_CANOPY_THRESHOLDS = ((0.85, 0.95), (0.8, 0.9))
_CANOPY_NN = ((10, 5), (20, 10))  # (n_canopy, n_remove)
_STM_THRESHOLDS = ((0.85, 0.95), (0.8, 0.9))  # (loose, tight)
_GRIDS = (100, 1000)
_DIMS = (15, 20)
_SUFFIX_MIN = (3, 5)
_SUFFIX_MAX = (5, 10, 20)


def iter_parameter_grid(
    technique: str, attributes: tuple[str, ...]
) -> Iterator[Blocker]:
    """Yield one configured blocker per paper parameter setting."""
    if technique == "TBlo":
        yield StandardBlocker(attributes)
    elif technique == "SorA":
        for window in _WINDOWS:
            yield ArraySortedNeighbourhood(attributes, window=window)
    elif technique == "SorII":
        for window in _WINDOWS:
            yield InvertedIndexSortedNeighbourhood(attributes, window=window)
    elif technique == "ASor":
        for similarity, threshold in product(PAPER_COMPARATORS, _THRESHOLDS):
            yield AdaptiveSortedNeighbourhood(
                attributes, similarity=similarity, threshold=threshold
            )
    elif technique == "QGr":
        for q, threshold in product(_QS, _THRESHOLDS):
            yield QGramBlocker(attributes, q=q, threshold=threshold)
    elif technique == "CaTh":
        for similarity, (loose, tight), q in product(
            ("jaccard", "tfidf"), _CANOPY_THRESHOLDS, _QS
        ):
            yield ThresholdCanopy(
                attributes, similarity=similarity, loose=loose, tight=tight, q=q
            )
    elif technique == "CaNN":
        for similarity, (n_canopy, n_remove), q in product(
            ("jaccard", "tfidf"), _CANOPY_NN, _QS
        ):
            yield NearestNeighbourCanopy(
                attributes,
                similarity=similarity,
                n_canopy=n_canopy,
                n_remove=n_remove,
                q=q,
            )
    elif technique == "StMT":
        for similarity, (loose, tight), grid, dim in product(
            PAPER_COMPARATORS, _STM_THRESHOLDS, _GRIDS, _DIMS
        ):
            yield StringMapThresholdBlocker(
                attributes,
                similarity=similarity,
                loose=loose,
                tight=tight,
                grid=grid,
                dim=dim,
            )
    elif technique == "StMNN":
        for similarity, (n_canopy, n_remove), grid, dim in product(
            PAPER_COMPARATORS, _CANOPY_NN, _GRIDS, _DIMS
        ):
            yield StringMapNNBlocker(
                attributes,
                similarity=similarity,
                n_canopy=n_canopy,
                n_remove=n_remove,
                grid=grid,
                dim=dim,
            )
    elif technique == "SuA":
        for min_length, max_block in product(_SUFFIX_MIN, _SUFFIX_MAX):
            yield SuffixArrayBlocker(
                attributes, min_length=min_length, max_block_size=max_block
            )
    elif technique == "SuAS":
        for min_length, max_block in product(_SUFFIX_MIN, _SUFFIX_MAX):
            yield AllSubstringsBlocker(
                attributes, min_length=min_length, max_block_size=max_block
            )
    elif technique == "RSuA":
        for similarity, threshold, min_length, max_block in product(
            PAPER_COMPARATORS, _THRESHOLDS, _SUFFIX_MIN, _SUFFIX_MAX
        ):
            yield RobustSuffixArrayBlocker(
                attributes,
                similarity=similarity,
                threshold=threshold,
                min_length=min_length,
                max_block_size=max_block,
            )
    else:
        raise ConfigurationError(
            f"unknown technique {technique!r}; known: {TECHNIQUE_ORDER}"
        )


def make_blockers(
    attributes: tuple[str, ...],
    techniques: tuple[str, ...] = TECHNIQUE_ORDER,
    *,
    max_settings: int | None = None,
) -> dict[str, list[Blocker]]:
    """Instantiate (a prefix of) each technique's grid.

    ``max_settings`` truncates each grid — useful for quick runs; the
    full grids reproduce the paper's 163 settings.
    """
    grids: dict[str, list[Blocker]] = {}
    for technique in techniques:
        blockers = list(iter_parameter_grid(technique, attributes))
        if max_settings is not None:
            blockers = blockers[:max_settings]
        grids[technique] = blockers
    return grids


def paper_grid_sizes() -> dict[str, int]:
    """The per-technique setting counts (sums to 163 as in §6.3.4)."""
    return {
        technique: sum(1 for _ in iter_parameter_grid(technique, ("key",)))
        for technique in TECHNIQUE_ORDER
    }
