"""q-gram based indexing (QGr) — Baxter, Christen & Churches, 2003.

Each blocking key is split into q-grams; sub-lists containing at least
``ceil(threshold * L)`` of the L grams become index keys, so records
whose keys differ by a few grams still meet in some bucket. The number
of sub-lists is combinatorial in the deletion budget, which is why the
survey (and our Table 3) reports QGr among the slower methods; a cap on
the gram-list length keeps worst-case keys tractable (survey
implementations truncate long BKVs the same way).
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.text.qgrams import qgrams


class QGramBlocker(KeyedBlocker):
    """QGr — sub-list q-gram indexing."""

    name = "QGr"

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int = 2,
        threshold: float = 0.8,
        *,
        max_grams: int = 12,
    ) -> None:
        super().__init__(attributes)
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        if max_grams < 1:
            raise ConfigurationError(f"max_grams must be >= 1, got {max_grams}")
        self.q = q
        self.threshold = threshold
        self.max_grams = max_grams

    def describe(self) -> str:
        return f"QGr(q={self.q}, t={self.threshold})"

    def _sublists(self, grams: tuple[str, ...]) -> set[tuple[str, ...]]:
        """All sub-lists obtained by deleting grams down to the budget.

        Deleting any multiset of positions yields exactly the
        subsequences of ``grams``, so the frontier BFS of
        :meth:`_sublists_legacy` is equivalent to enumerating position
        combinations per surviving length directly — each sub-list is
        produced once per *distinct* way it appears instead of being
        rediscovered (and set-deduplicated) at every deletion depth,
        which removes the super-linear frontier blow-up from the inner
        loop of the batch key path.
        """
        min_len = max(1, math.ceil(self.threshold * len(grams)))
        results: set[tuple[str, ...]] = set()
        for keep in range(min_len, len(grams) + 1):
            results.update(
                tuple(grams[i] for i in chosen)
                for chosen in combinations(range(len(grams)), keep)
            )
        return results

    def _sublists_legacy(self, grams: tuple[str, ...]) -> set[tuple[str, ...]]:
        """The original deletion-frontier BFS (equivalence reference)."""
        min_len = max(1, math.ceil(self.threshold * len(grams)))
        results: set[tuple[str, ...]] = set()
        frontier = {grams}
        while frontier:
            results |= frontier
            next_frontier: set[tuple[str, ...]] = set()
            for current in frontier:
                if len(current) <= min_len:
                    continue
                for index in range(len(current)):
                    next_frontier.add(current[:index] + current[index + 1 :])
            frontier = next_frontier - results
        return {r for r in results if len(r) >= min_len}

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        # Batch key path: keys in one memoized pass, gram extraction
        # once per distinct key string, and the combinatorial sub-list
        # expansion once per distinct gram list — records sharing a key
        # (ubiquitous in dedup corpora) pay for the deletion frontier
        # once. The record-order loop is kept so bucket membership
        # order matches the per-record reference.
        buckets: dict[tuple[str, ...], list[str]] = {}
        grams_of: dict[str, tuple[str, ...]] = {}
        sublists_of: dict[tuple[str, ...], set[tuple[str, ...]]] = {}
        for record_id, key in zip(dataset.record_ids, self.keys_of(dataset)):
            grams = grams_of.get(key)
            if grams is None:
                grams = tuple(qgrams(key, self.q))[: self.max_grams]
                grams_of[key] = grams
            if not grams:
                continue
            sublists = sublists_of.get(grams)
            if sublists is None:
                sublists = self._sublists(grams)
                sublists_of[grams] = sublists
            for sublist in sublists:
                buckets.setdefault(sublist, []).append(record_id)
        return list(buckets.values())
