"""Adaptive sorted neighbourhood (ASor) — Yan et al., JCDL 2007.

Instead of a fixed window, the sorted key list is segmented where the
similarity between consecutive keys drops below a threshold; each
segment's records form one block. This adapts block sizes to the local
density of the key space.
"""

from __future__ import annotations

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.text.similarity import get_similarity


class AdaptiveSortedNeighbourhood(KeyedBlocker):
    """ASor — similarity-segmented sorted neighbourhood."""

    name = "ASor"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "jaro_winkler",
        threshold: float = 0.8,
        *,
        max_block_size: int = 100,
    ) -> None:
        super().__init__(attributes)
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.similarity_name = similarity
        self.similarity = get_similarity(similarity)
        self.threshold = threshold
        self.max_block_size = max_block_size

    def describe(self) -> str:
        return f"ASor(sim={self.similarity_name}, t={self.threshold})"

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        index = self.key_index(dataset)
        keys = sorted(index)
        groups: list[list[str]] = []
        current: list[str] = []

        def flush() -> None:
            if current:
                groups.append(list(current))
                current.clear()

        previous_key: str | None = None
        for key in keys:
            if previous_key is not None:
                boundary = self.similarity(previous_key, key) < self.threshold
                if boundary or len(current) >= self.max_block_size:
                    flush()
            current.extend(index[key])
            previous_key = key
        flush()
        return groups
