"""Traditional blocking (TBlo) — Fellegi & Sunter, 1969.

Records sharing the exact blocking key value form a block. Cheap and
precise, but any typo in the key separates true matches ("Qing Wang" vs
"Wang Qing" in the paper's introduction).
"""

from __future__ import annotations

from repro.baselines.base import KeyedBlocker
from repro.records.dataset import Dataset


class StandardBlocker(KeyedBlocker):
    """Group records by identical blocking key value.

    Runs on the batch key-extraction path
    (:meth:`~repro.baselines.base.KeyedBlocker.keys_of` via
    ``key_index``): one memoized pass over the corpus instead of
    per-record normalisation, identical blocks.
    """

    name = "TBlo"

    def describe(self) -> str:
        return f"TBlo(key={'+'.join(self.attributes)})"

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        return list(self.key_index(dataset).values())
