"""Sorted-neighbourhood blocking (SorA, SorII).

* SorA (Hernández & Stolfo): sort the records by key and slide a fixed
  window of ``window`` records; every window position is a block.
* SorII (Christen): slide the window over the *distinct sorted key
  values* of an inverted index, so frequent keys do not crowd the
  window.

Both run on the batch key-extraction path
(:meth:`~repro.baselines.base.KeyedBlocker.keys_of` via the shared
``sorted_keyed_records`` / ``key_index`` helpers): keys are derived in
one memoized pass, then sorted/windowed — identical blocks to the
per-record path at a fraction of the normalisation cost.
"""

from __future__ import annotations

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset


class ArraySortedNeighbourhood(KeyedBlocker):
    """SorA — sliding window over the sorted record array."""

    name = "SorA"

    def __init__(self, attributes: tuple[str, ...], window: int = 3) -> None:
        super().__init__(attributes)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.window = window

    def describe(self) -> str:
        return f"SorA(window={self.window})"

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        ordered = [record_id for _, record_id in self.sorted_keyed_records(dataset)]
        if len(ordered) <= self.window:
            return [ordered]
        return [
            ordered[i : i + self.window]
            for i in range(len(ordered) - self.window + 1)
        ]


class InvertedIndexSortedNeighbourhood(KeyedBlocker):
    """SorII — sliding window over distinct sorted key values."""

    name = "SorII"

    def __init__(self, attributes: tuple[str, ...], window: int = 3) -> None:
        super().__init__(attributes)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.window = window

    def describe(self) -> str:
        return f"SorII(window={self.window})"

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        index = self.key_index(dataset)
        keys = sorted(index)
        if not keys:
            return []
        if len(keys) <= self.window:
            return [[rid for key in keys for rid in index[key]]]
        groups = []
        for i in range(len(keys) - self.window + 1):
            window_keys = keys[i : i + self.window]
            groups.append([rid for key in window_keys for rid in index[key]])
        return groups
