"""Suffix-array blocking (SuA, SuAS, RSuA).

* SuA (Aizawa & Oyama, 2005): every suffix of the blocking key with at
  least ``min_length`` characters indexes the record; buckets larger
  than ``max_block_size`` are dropped (they are too common to be
  discriminative).
* SuAS: like SuA but with *all substrings* of at least ``min_length``.
* RSuA (de Vries et al., CIKM 2009): robust variant that merges
  alphabetically adjacent suffixes whose string similarity reaches a
  threshold, so typos near the front of a suffix do not split matches.
"""

from __future__ import annotations

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.text.similarity import get_similarity


class SuffixArrayBlocker(KeyedBlocker):
    """SuA — suffix-array based blocking."""

    name = "SuA"

    def __init__(
        self,
        attributes: tuple[str, ...],
        min_length: int = 3,
        max_block_size: int = 10,
    ) -> None:
        super().__init__(attributes)
        if min_length < 1:
            raise ConfigurationError(f"min_length must be >= 1, got {min_length}")
        if max_block_size < 2:
            raise ConfigurationError(
                f"max_block_size must be >= 2, got {max_block_size}"
            )
        self.min_length = min_length
        self.max_block_size = max_block_size

    def describe(self) -> str:
        return f"{self.name}(min_len={self.min_length}, max_block={self.max_block_size})"

    def _variants(self, key: str) -> set[str]:
        compact = key.replace(" ", "")
        return {
            compact[i:]
            for i in range(len(compact) - self.min_length + 1)
        } if len(compact) >= self.min_length else ({compact} if compact else set())

    def _suffix_index(self, dataset: Dataset) -> dict[str, list[str]]:
        # Batch key path: keys in one memoized pass, suffix/substring
        # expansion computed once per distinct key.
        index: dict[str, list[str]] = {}
        variants_of: dict[str, set[str]] = {}
        for record_id, key in zip(dataset.record_ids, self.keys_of(dataset)):
            variants = variants_of.get(key)
            if variants is None:
                variants = self._variants(key)
                variants_of[key] = variants
            for variant in variants:
                index.setdefault(variant, []).append(record_id)
        return index

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        return [
            members
            for members in self._suffix_index(dataset).values()
            if len(members) <= self.max_block_size
        ]


class AllSubstringsBlocker(SuffixArrayBlocker):
    """SuAS — suffix arrays over all substrings of the key."""

    name = "SuAS"

    def _variants(self, key: str) -> set[str]:
        compact = key.replace(" ", "")
        if len(compact) < self.min_length:
            return {compact} if compact else set()
        return {
            compact[i : i + length]
            for i in range(len(compact))
            for length in range(self.min_length, len(compact) - i + 1)
        }


class RobustSuffixArrayBlocker(SuffixArrayBlocker):
    """RSuA — suffix arrays with similarity-merged adjacent suffixes."""

    name = "RSuA"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "jaro_winkler",
        threshold: float = 0.9,
        min_length: int = 3,
        max_block_size: int = 10,
    ) -> None:
        super().__init__(attributes, min_length, max_block_size)
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        self.similarity_name = similarity
        self.similarity = get_similarity(similarity)
        self.threshold = threshold

    def describe(self) -> str:
        return (
            f"RSuA(sim={self.similarity_name}, t={self.threshold}, "
            f"min_len={self.min_length}, max_block={self.max_block_size})"
        )

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        index = self._suffix_index(dataset)
        suffixes = sorted(index)
        groups: list[list[str]] = []
        current_members: list[str] = []
        previous: str | None = None
        for suffix in suffixes:
            if previous is not None and self.similarity(previous, suffix) >= self.threshold:
                current_members.extend(index[suffix])
            else:
                if current_members:
                    groups.append(current_members)
                current_members = list(index[suffix])
            previous = suffix
        if current_members:
            groups.append(current_members)
        return [g for g in groups if len(g) <= self.max_block_size]
