"""Token blocking — the canonical input to meta-blocking.

Every whitespace token of the blocking key indexes the record; records
sharing any token co-occur in a block. This is the redundancy-heavy
scheme the meta-blocking paper (Papadakis et al., 2014) restructures,
and the source of the Fig. 12 "initial blocks".
"""

from __future__ import annotations

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset


class TokenBlocker(KeyedBlocker):
    """Group records by shared key tokens."""

    name = "Token"

    def __init__(
        self, attributes: tuple[str, ...], *, max_block_size: int | None = None
    ) -> None:
        super().__init__(attributes)
        if max_block_size is not None and max_block_size < 2:
            raise ConfigurationError(
                f"max_block_size must be >= 2 or None, got {max_block_size}"
            )
        self.max_block_size = max_block_size

    def describe(self) -> str:
        return f"Token(max_block={self.max_block_size})"

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        index: dict[str, list[str]] = {}
        for record in dataset:
            for token in set(self.key(record).split()):
                index.setdefault(token, []).append(record.record_id)
        groups = list(index.values())
        if self.max_block_size is not None:
            groups = [g for g in groups if len(g) <= self.max_block_size]
        return groups
