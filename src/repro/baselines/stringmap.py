"""String-map blocking (StMT, StMNN) — Jin, Li & Mehrotra, DASFAA 2003.

Blocking keys are embedded into a low-dimensional Euclidean space with a
FastMap-style algorithm driven by a string distance (1 - similarity);
similar strings land close together. Records are then grouped through a
grid over the embedded space:

* StMT keeps, per occupied cell neighbourhood, the records within a
  loose/tight similarity of a canopy seed (threshold flavour);
* StMNN keeps each seed's nearest neighbours (NN flavour).

Grid lookups use the first ``GRID_DIMS`` coordinates only — scanning all
3^dim neighbour cells of a 15-20 dimensional grid is infeasible, and the
leading FastMap axes carry most of the variance (the survey's
implementation relies on the same effect through its R-tree). Distances
*within* a candidate neighbourhood use the full embedding.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import KeyedBlocker
from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.text.similarity import get_similarity
from repro.utils.rand import rng_from_seed

#: Number of leading embedding axes used for grid bucketing.
GRID_DIMS = 2

#: Sample size used when searching for distant pivot strings.
_PIVOT_SAMPLE = 100


class StringMapEmbedder:
    """FastMap embedding of strings under an arbitrary distance.

    Coordinates are produced one axis at a time from pivot pairs
    (a_i, b_i); residual distances subtract the projections of earlier
    axes, as in the original FastMap (Faloutsos & Lin, 1995).
    """

    def __init__(self, similarity: str, dim: int, seed: int = 0) -> None:
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        self.similarity_name = similarity
        self._sim = get_similarity(similarity)
        self.dim = dim
        self.seed = seed
        self._pivots: list[tuple[str, str, float]] = []
        self._pivot_coords: list[tuple[np.ndarray, np.ndarray]] = []

    def _distance(self, s1: str, s2: str) -> float:
        return 1.0 - self._sim(s1, s2)

    def _residual_sq(
        self, s1: str, s2: str, c1: np.ndarray, c2: np.ndarray, axis: int
    ) -> float:
        """Squared distance after removing the first ``axis`` projections."""
        d_sq = self._distance(s1, s2) ** 2
        for j in range(axis):
            d_sq -= (c1[j] - c2[j]) ** 2
        return max(d_sq, 0.0)

    def fit(self, strings: list[str]) -> "StringMapEmbedder":
        """Choose pivot pairs from (a sample of) the given strings."""
        unique = sorted(set(strings))
        if not unique:
            raise ConfigurationError("cannot fit embedder on no strings")
        rng = rng_from_seed(self.seed, "stringmap", self.similarity_name, self.dim)
        sample = unique if len(unique) <= _PIVOT_SAMPLE else rng.sample(unique, _PIVOT_SAMPLE)
        coords = {s: np.zeros(self.dim) for s in sample}

        for axis in range(self.dim):
            # Farthest-pair heuristic on residual distances.
            anchor = rng.choice(sample)
            pivot_a = max(
                sample,
                key=lambda s: self._residual_sq(anchor, s, coords[anchor], coords[s], axis),
            )
            pivot_b = max(
                sample,
                key=lambda s: self._residual_sq(pivot_a, s, coords[pivot_a], coords[s], axis),
            )
            d_ab_sq = self._residual_sq(
                pivot_a, pivot_b, coords[pivot_a], coords[pivot_b], axis
            )
            d_ab = math.sqrt(d_ab_sq)
            self._pivots.append((pivot_a, pivot_b, d_ab))
            self._pivot_coords.append(
                (coords[pivot_a].copy(), coords[pivot_b].copy())
            )
            for s in sample:
                coords[s][axis] = self._project(
                    s, coords[s], axis, pivot_a, pivot_b, d_ab
                )
        return self

    def _project(
        self,
        s: str,
        partial: np.ndarray,
        axis: int,
        pivot_a: str,
        pivot_b: str,
        d_ab: float,
    ) -> float:
        if d_ab <= 0.0:
            return 0.0
        ca, cb = self._pivot_coords[axis]
        d_sa_sq = self._residual_sq(s, pivot_a, partial, ca, axis)
        d_sb_sq = self._residual_sq(s, pivot_b, partial, cb, axis)
        return (d_sa_sq + d_ab**2 - d_sb_sq) / (2.0 * d_ab)

    def transform(self, s: str) -> np.ndarray:
        """Embed one string (requires :meth:`fit`).

        The per-string reference path; :meth:`transform_many` is the
        batch engine and is value-identical.
        """
        if not self._pivots:
            raise ConfigurationError("StringMapEmbedder.transform before fit")
        point = np.zeros(self.dim)
        for axis, (pivot_a, pivot_b, d_ab) in enumerate(self._pivots):
            point[axis] = self._project(s, point, axis, pivot_a, pivot_b, d_ab)
        return point

    def _residual_sq_many(
        self,
        strings: list[str],
        pivot: str,
        partial: np.ndarray,
        pivot_coord: np.ndarray,
        axis: int,
    ) -> np.ndarray:
        """Batch :meth:`_residual_sq` against one pivot.

        Every floating-point operation replays the per-string order —
        distances first, then one squared-difference subtraction per
        earlier axis, then the final clip — so each element is bitwise
        identical to the scalar path. Edit distances route through the
        vectorized DP kernel (itself bitwise identical per pair).
        """
        if self.similarity_name == "edit":
            from repro.text.levenshtein import edit_similarities

            sims = edit_similarities(strings, [pivot] * len(strings))
        else:
            sims = np.fromiter(
                (self._sim(s, pivot) for s in strings),
                dtype=np.float64,
                count=len(strings),
            )
        d_sq = (1.0 - sims) ** 2
        for j in range(axis):
            d_sq = d_sq - (partial[:, j] - pivot_coord[j]) ** 2
        return np.maximum(d_sq, 0.0)

    def transform_many(self, strings) -> np.ndarray:
        """Embed many strings in one vectorized pass (requires fit).

        Returns an (n, dim) matrix aligned with the input; each row is
        bitwise identical to :meth:`transform` of that string. Distinct
        strings are projected once and scattered, so corpora with
        repeated blocking keys pay for their unique keys only.
        """
        if not self._pivots:
            raise ConfigurationError("StringMapEmbedder.transform before fit")
        strings = list(strings)
        if not strings:
            return np.zeros((0, self.dim))
        uniques, inverse = np.unique(
            np.asarray(strings, dtype=object), return_inverse=True
        )
        unique_list = uniques.tolist()
        points = np.zeros((len(unique_list), self.dim))
        for axis, (pivot_a, pivot_b, d_ab) in enumerate(self._pivots):
            if d_ab <= 0.0:
                continue  # the scalar path returns 0.0 for this axis
            ca, cb = self._pivot_coords[axis]
            d_sa_sq = self._residual_sq_many(
                unique_list, pivot_a, points, ca, axis
            )
            d_sb_sq = self._residual_sq_many(
                unique_list, pivot_b, points, cb, axis
            )
            points[:, axis] = (d_sa_sq + d_ab**2 - d_sb_sq) / (2.0 * d_ab)
        return points[inverse]


class _StringMapBase(KeyedBlocker):
    """Shared embedding + grid bucketing for both string-map blockers."""

    #: Keys are truncated to this many characters before embedding;
    #: quadratic string distances over full author+title keys would
    #: dominate the runtime (survey implementations bound BKV length
    #: the same way).
    max_key_length = 24

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "edit",
        dim: int = 15,
        grid: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes)
        if grid < 1:
            raise ConfigurationError(f"grid must be >= 1, got {grid}")
        self.similarity_name = similarity
        self.dim = dim
        self.grid = grid
        self.seed = seed

    def _embed(self, dataset: Dataset):
        ids = [r.record_id for r in dataset]
        keys = [self.key(r)[: self.max_key_length] for r in dataset]
        embedder = StringMapEmbedder(self.similarity_name, self.dim, self.seed)
        embedder.fit(keys)
        matrix = embedder.transform_many(keys)
        return {rid: matrix[row] for row, rid in enumerate(ids)}

    def _grid_cells(self, points: dict[str, np.ndarray]):
        """Bucket records by their cell on the first GRID_DIMS axes."""
        if not points:
            return {}, 0.0
        matrix = np.stack(list(points.values()))
        lo = matrix.min(axis=0)
        hi = matrix.max(axis=0)
        span = float(max((hi - lo)[:GRID_DIMS].max(), 1e-12))
        cell_width = span / self.grid
        cells: dict[tuple[int, ...], list[str]] = {}
        for rid, point in points.items():
            cell = tuple(
                int((point[d] - lo[d]) / cell_width) for d in range(min(GRID_DIMS, self.dim))
            )
            cells.setdefault(cell, []).append(rid)
        return cells, cell_width

    @staticmethod
    def _neighbour_cells(cell: tuple[int, ...]):
        """The 3^GRID_DIMS cells around (and including) ``cell``."""
        if len(cell) == 1:
            return [(cell[0] + dx,) for dx in (-1, 0, 1)]
        return [
            (cell[0] + dx, cell[1] + dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]


class StringMapThresholdBlocker(_StringMapBase):
    """StMT — canopy-style loose/tight grouping in the embedded space."""

    name = "StMT"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "edit",
        loose: float = 0.8,
        tight: float = 0.9,
        dim: int = 15,
        grid: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes, similarity, dim, grid, seed)
        if not 0.0 < loose <= tight <= 1.0:
            raise ConfigurationError(
                f"need 0 < loose <= tight <= 1, got loose={loose}, tight={tight}"
            )
        self.loose = loose
        self.tight = tight

    def describe(self) -> str:
        return (
            f"StMT(sim={self.similarity_name}, loose={self.loose}, "
            f"tight={self.tight}, grid={self.grid}, dim={self.dim})"
        )

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        points = self._embed(dataset)
        cells, _ = self._grid_cells(points)
        cell_of = {
            rid: cell for cell, members in cells.items() for rid in members
        }
        rng = rng_from_seed(self.seed, "stmt", dataset.name)
        # Embedded distances corresponding to the similarity thresholds.
        loose_dist = 1.0 - self.loose
        tight_dist = 1.0 - self.tight
        pool = set(points)
        groups: list[list[str]] = []
        while pool:
            seed_id = rng.choice(sorted(pool))
            seed_point = points[seed_id]
            canopy = [seed_id]
            removed = {seed_id}
            for cell in self._neighbour_cells(cell_of[seed_id]):
                for candidate in cells.get(cell, ()):
                    if candidate == seed_id or candidate not in pool:
                        continue
                    distance = float(np.linalg.norm(points[candidate] - seed_point))
                    if distance <= loose_dist:
                        canopy.append(candidate)
                        if distance <= tight_dist:
                            removed.add(candidate)
            pool -= removed
            groups.append(canopy)
        return groups


class StringMapNNBlocker(_StringMapBase):
    """StMNN — nearest-neighbour grouping in the embedded space."""

    name = "StMNN"

    def __init__(
        self,
        attributes: tuple[str, ...],
        similarity: str = "edit",
        n_canopy: int = 10,
        n_remove: int = 5,
        dim: int = 15,
        grid: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(attributes, similarity, dim, grid, seed)
        if not 1 <= n_remove <= n_canopy:
            raise ConfigurationError(
                f"need 1 <= n_remove <= n_canopy, got {n_remove} / {n_canopy}"
            )
        self.n_canopy = n_canopy
        self.n_remove = n_remove

    def describe(self) -> str:
        return (
            f"StMNN(sim={self.similarity_name}, n1={self.n_canopy}, "
            f"n2={self.n_remove}, grid={self.grid}, dim={self.dim})"
        )

    def _groups(self, dataset: Dataset) -> list[list[str]]:
        points = self._embed(dataset)
        cells, _ = self._grid_cells(points)
        cell_of = {
            rid: cell for cell, members in cells.items() for rid in members
        }
        rng = rng_from_seed(self.seed, "stmnn", dataset.name)
        pool = set(points)
        groups: list[list[str]] = []
        while pool:
            seed_id = rng.choice(sorted(pool))
            seed_point = points[seed_id]
            scored: list[tuple[float, str]] = []
            for cell in self._neighbour_cells(cell_of[seed_id]):
                for candidate in cells.get(cell, ()):
                    if candidate == seed_id or candidate not in pool:
                        continue
                    scored.append(
                        (float(np.linalg.norm(points[candidate] - seed_point)), candidate)
                    )
            scored.sort()
            canopy = [seed_id] + [rid for _, rid in scored[: self.n_canopy]]
            removed = {seed_id} | {rid for _, rid in scored[: self.n_remove]}
            pool -= removed
            groups.append(canopy)
        return groups
