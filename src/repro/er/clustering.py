"""Entity clustering from matched pairs (transitive closure).

The classic post-matching step: matched pairs induce a graph whose
connected components are the resolved entities (Hernández & Stolfo's
merge/purge closure). Union-find keeps it near-linear.
"""

from __future__ import annotations

from typing import Iterable

from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._rank: dict[str, int] = {}

    def add(self, item: str) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1

    def components(self) -> list[list[str]]:
        groups: dict[str, list[str]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return [sorted(members) for members in groups.values()]


def connected_components(
    record_ids: Iterable[str], matched_pairs: Iterable[Pair]
) -> list[list[str]]:
    """Entity clusters: connected components over matched pairs.

    Every record id appears in exactly one cluster; unmatched records
    form singletons. Clusters and members are sorted for determinism.
    """
    uf = _UnionFind()
    for record_id in record_ids:
        uf.add(record_id)
    for a, b in matched_pairs:
        uf.add(a)
        uf.add(b)
        uf.union(a, b)
    return sorted(uf.components())


def resolve(dataset: Dataset, matched_pairs: Iterable[Pair]) -> list[list[str]]:
    """Cluster a dataset's records given matched pairs."""
    return connected_components(dataset.record_ids, matched_pairs)
