"""Entity clustering from matched pairs (transitive closure).

The classic post-matching step: matched pairs induce a graph whose
connected components are the resolved entities (Hernández & Stolfo's
merge/purge closure).

Two engines produce identical clusters:

* ``array`` (default in :func:`resolve`) — the pair-engine route:
  matched pairs are encoded as ``uint64`` keys over the dataset's
  int32 id codec (:mod:`repro.records.pairs`) and components are found
  by vectorized min-label propagation with pointer jumping over the
  decoded index arrays — no per-edge Python work;
* ``legacy`` — the original string-keyed union-find, kept as the
  equivalence-tested reference.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair
from repro.records.pairs import decode_pair_keys, encode_pair_keys


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._rank: dict[str, int] = {}

    def add(self, item: str) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1

    def components(self) -> list[list[str]]:
        groups: dict[str, list[str]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return [sorted(members) for members in groups.values()]


def connected_components(
    record_ids: Iterable[str], matched_pairs: Iterable[Pair]
) -> list[list[str]]:
    """Entity clusters: connected components over matched pairs.

    The legacy (string/dict union-find) reference engine. Every record
    id appears in exactly one cluster; unmatched records form
    singletons. Clusters and members are sorted for determinism.
    """
    uf = _UnionFind()
    for record_id in record_ids:
        uf.add(record_id)
    for a, b in matched_pairs:
        uf.add(a)
        uf.add(b)
        uf.union(a, b)
    return sorted(uf.components())


def component_labels(num_records: int, pair_keys: np.ndarray) -> np.ndarray:
    """Connected-component labels over encoded pair keys.

    ``pair_keys`` are ``uint64`` keys (:func:`~repro.records.pairs.
    encode_pair_keys`) over indices in ``range(num_records)``. Returns
    an int64 array mapping every index to its component's smallest
    member index — the array union-find of the pair engine: each round
    propagates the minimum label across all edges at once
    (``np.minimum.at``) and then compresses label chains by pointer
    jumping (``labels = labels[labels]``), so convergence needs a few
    whole-array passes instead of one Python iteration per edge.
    """
    labels = np.arange(num_records, dtype=np.int64)
    if pair_keys.size == 0:
        return labels
    lo, hi = decode_pair_keys(np.asarray(pair_keys, dtype=np.uint64))
    if lo.size and (int(max(lo.max(), hi.max())) >= num_records):
        raise ConfigurationError(
            "pair keys reference indices outside range(num_records)"
        )
    while True:
        before = labels.copy()
        minimum = np.minimum(labels[lo], labels[hi])
        np.minimum.at(labels, lo, minimum)
        np.minimum.at(labels, hi, minimum)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            return labels


def connected_components_arrays(
    record_ids: Sequence[str], pair_keys: np.ndarray
) -> list[list[str]]:
    """Entity clusters over encoded pair keys — the array engine.

    ``record_ids`` positions define the index space of ``pair_keys``.
    Output is identical to :func:`connected_components` over the
    decoded pairs: every record in exactly one cluster, members and
    clusters sorted.
    """
    record_ids = list(record_ids)
    labels = component_labels(len(record_ids), pair_keys)
    clusters: dict[int, list[str]] = {}
    for index, label in enumerate(labels.tolist()):
        clusters.setdefault(label, []).append(record_ids[index])
    return sorted(sorted(members) for members in clusters.values())


def resolve(
    dataset: Dataset,
    matched_pairs: Iterable[Pair],
    *,
    engine: str = "array",
) -> list[list[str]]:
    """Cluster a dataset's records given matched pairs.

    The default ``array`` engine encodes the pairs through the
    dataset's id codec and unions over int32 indices (pairs must
    reference dataset records); ``engine="legacy"`` runs the reference
    union-find, which also tolerates pair ids outside the dataset.
    """
    if engine == "legacy":
        return connected_components(dataset.record_ids, matched_pairs)
    if engine != "array":
        raise ConfigurationError(
            f"engine must be 'array' or 'legacy', got {engine!r}"
        )
    pairs = list(matched_pairs)
    if not pairs:
        return connected_components_arrays(
            dataset.record_ids, np.empty(0, dtype=np.uint64)
        )
    flat = dataset.encode_ids([rid for pair in pairs for rid in pair])
    keys = encode_pair_keys(flat[0::2], flat[1::2])
    return connected_components_arrays(dataset.record_ids, keys)
