"""The online resolver service: "who matches *this* record?".

The paper's pipeline is batch-shaped — block a corpus, hand Γ to a
matcher — but production ER is the inverse: a long-lived index serving
single-record queries against an evolving corpus. :class:`Resolver`
composes the pieces this library already has into that serving surface:

* a mutable :class:`~repro.records.dataset.RecordStore` holding the
  live corpus,
* one of the four blockers' :class:`~repro.core.base.OnlineIndex`
  incarnations answering "which records co-block with this one"
  without a rebuild (optionally on a warm
  :class:`~repro.utils.parallel.ShardPool`),
* a :class:`~repro.er.matching.SimilarityMatcher` scoring the probe
  against exactly those candidates and tiering the answer by the §3
  three-region rule: ``match`` / ``possible`` / ``new``.

Store and index mutate in lockstep: :meth:`Resolver.add` validates the
id against both before touching either, so a failed insertion leaves
the service consistent. Removed ids are retired for the resolver's
lifetime (the index tombstones them permanently); replacements take a
fresh id, e.g. from :meth:`~repro.records.dataset.RecordStore.
allocate_id`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, DatasetError
from repro.records.dataset import RecordStore
from repro.records.record import Record
from repro.er.matching import SimilarityMatcher

#: Similarity measure used when no matcher is supplied.
_DEFAULT_MEASURE = "jaccard_q2"


@dataclass(frozen=True)
class CandidateScore:
    """One scored blocking candidate of a resolver query."""

    record_id: str
    score: float
    label: str  # 'match' | 'possible' | 'non-match'


@dataclass(frozen=True)
class ResolvedEntity:
    """Outcome of :meth:`Resolver.resolve_one`.

    ``tier`` is ``'match'`` when the best candidate clears the match
    threshold, ``'possible'`` when it only reaches the uncertain
    region, and ``'new'`` when nothing co-blocks or nothing scores
    above the possible threshold — the probe looks like a previously
    unseen entity. ``best_id`` is ``None`` exactly in the ``'new'``
    and ``'error'`` tiers; ``candidates`` holds every scored
    candidate, best first.

    ``tier='error'`` entries only come out of
    :meth:`Resolver.resolve_many` with error isolation on: the probe
    failed to resolve, ``error`` holds the failure message, and no
    candidates are reported.
    """

    record_id: str
    tier: str  # 'match' | 'possible' | 'new' | 'error'
    best_id: str | None
    best_score: float
    candidates: tuple[CandidateScore, ...]
    error: str | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


class Resolver:
    """Single-record resolution over a mutable corpus.

    Parameters
    ----------
    blocker:
        Any blocker exposing ``online()`` (LSH, SA-LSH, MP-LSH,
        LSH-Forest). The resolver builds the online index once and
        mutates it incrementally; a blocker carrying a persistent
        ``pool`` keeps its sharded grouping warm across calls.
    records:
        Initial corpus (indexed as one slab).
    matcher:
        Scoring matcher; defaults to q-gram Jaccard over the blocker's
        blocking attributes with the standard §3 thresholds.
    """

    def __init__(
        self,
        blocker,
        records: Iterable[Record] = (),
        *,
        matcher: SimilarityMatcher | None = None,
    ) -> None:
        online = getattr(blocker, "online", None)
        if online is None:
            raise ConfigurationError(
                f"blocker {blocker!r} has no online() factory; online "
                "resolution needs an incremental index"
            )
        self.blocker = blocker
        if matcher is None:
            matcher = SimilarityMatcher(
                {a: _DEFAULT_MEASURE for a in blocker.attributes}
            )
        self.matcher = matcher
        staged = list(records)
        self.store = RecordStore(staged, name="resolver")
        self.index = online(staged)

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self.store

    def add(self, record: Record) -> None:
        """Index one new record (store and index stay in lockstep)."""
        self.add_many([record])

    def add_many(self, records: Iterable[Record]) -> None:
        """Index a batch of new records.

        Validates every id upfront — present ids and retired (removed)
        ids are rejected before the store or the index mutates, so a
        failed call leaves the service unchanged.
        """
        staged = list(records)
        retired = sorted(
            r.record_id
            for r in staged
            if self.index.is_retired(r.record_id)
        )
        if retired:
            raise DatasetError(
                f"record ids {retired!r} were removed and are retired; "
                "use fresh ids (see RecordStore.allocate_id)"
            )
        self.store.add_many(staged)  # rejects duplicates atomically
        self.index.add_many(staged)

    def remove(self, record_id: str) -> Record:
        """Drop one record from store and index; returns the record.

        The id is retired permanently — adding it again later raises.
        """
        record = self.store.remove(record_id)
        self.index.remove(record_id)
        return record

    def query(self, record: Record) -> list[str]:
        """Candidate ids co-blocking with ``record`` (no scoring)."""
        return self.index.query(record)

    def resolve_one(self, record: Record) -> ResolvedEntity:
        """Resolve one probe record against the live corpus.

        Blocking-first, like the batch pipeline: only the records the
        online index co-blocks with the probe are scored (the paper's
        point — blocking output feeds any ER algorithm), then ranked
        by (score desc, id asc) and tiered by the matcher's
        thresholds. A probe that blocks with nothing — empty record,
        semantics unseen by a frozen encoder, or simply novel — comes
        back ``tier='new'`` with no candidates, never an error.
        """
        candidate_ids = self.index.query(record)
        candidates = [self.store[rid] for rid in candidate_ids]
        scores = self.matcher.score_against(record, candidates)
        ranked = sorted(
            (
                CandidateScore(
                    record_id=rid,
                    score=score,
                    label=self.matcher.label_for(score),
                )
                for rid, score in zip(candidate_ids, scores.tolist())
            ),
            key=lambda c: (-c.score, c.record_id),
        )
        if not ranked or ranked[0].label == "non-match":
            return ResolvedEntity(
                record_id=record.record_id,
                tier="new",
                best_id=None,
                best_score=ranked[0].score if ranked else 0.0,
                candidates=tuple(ranked),
            )
        best = ranked[0]
        return ResolvedEntity(
            record_id=record.record_id,
            tier="match" if best.label == "match" else "possible",
            best_id=best.record_id,
            best_score=best.score,
            candidates=tuple(ranked),
        )

    def resolve_many(
        self, records: Sequence[Record], *, isolate_errors: bool = True
    ) -> list[ResolvedEntity]:
        """Resolve a batch of probes (each against the same corpus).

        With ``isolate_errors`` (the default) one poisoned probe — a
        malformed record, a semantic function blowing up on unexpected
        input — yields a ``tier='error'`` entry carrying the failure
        message instead of aborting the rest of the batch; the service
        keeps answering for every well-formed probe. Pass
        ``isolate_errors=False`` to get the old fail-fast behaviour.
        """
        if not isolate_errors:
            return [self.resolve_one(record) for record in records]
        resolved = []
        for record in records:
            try:
                resolved.append(self.resolve_one(record))
            except Exception as exc:
                record_id = getattr(record, "record_id", None)
                resolved.append(
                    ResolvedEntity(
                        record_id=str(record_id) if record_id else "",
                        tier="error",
                        best_id=None,
                        best_score=0.0,
                        candidates=(),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
        return resolved
