"""The online resolver service: "who matches *this* record?".

The paper's pipeline is batch-shaped — block a corpus, hand Γ to a
matcher — but production ER is the inverse: a long-lived index serving
single-record queries against an evolving corpus. :class:`Resolver`
composes the pieces this library already has into that serving surface:

* a mutable :class:`~repro.records.dataset.RecordStore` holding the
  live corpus,
* one of the four blockers' :class:`~repro.core.base.OnlineIndex`
  incarnations answering "which records co-block with this one"
  without a rebuild (optionally on a warm
  :class:`~repro.utils.parallel.ShardPool`),
* a :class:`~repro.er.matching.SimilarityMatcher` scoring the probe
  against exactly those candidates and tiering the answer by the §3
  three-region rule: ``match`` / ``possible`` / ``new``.

Store and index mutate in lockstep: :meth:`Resolver.add` validates the
id against both before touching either, so a failed insertion leaves
the service consistent. Removed ids are retired for the resolver's
lifetime (the index tombstones them permanently); replacements take a
fresh id, e.g. from :meth:`~repro.records.dataset.RecordStore.
allocate_id`.

Durability (DESIGN.md, "Durability & crash recovery"): constructed with
a ``state_dir``, the resolver writes an initial checkpoint and then
journals every mutation through a :class:`~repro.store.journal.Journal`
*before* applying it, each ``add_many`` batch as one atomic frame. A
mutation is acknowledged — survives kill −9 — exactly when the call
returns; :meth:`Resolver.open` rebuilds the latest checkpoint and
replays the journal tail through the same apply path, so recovered
``blocks()``/``query()`` are byte-identical to a from-scratch build
over the acknowledged survivors (the incremental ≡ rebuild contract
the online indexes are locked to). :meth:`Resolver.save` publishes a
fresh checkpoint atomically and resets the journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, DatasetError, DurabilityError
from repro.records.dataset import LinkedCorpus, RecordStore
from repro.records.record import Record
from repro.er.matching import SimilarityMatcher
from repro.store.checkpoint import load_checkpoint, write_checkpoint
from repro.store.journal import Journal, journal_path, read_journal

#: Similarity measure used when no matcher is supplied.
_DEFAULT_MEASURE = "jaccard_q2"


@dataclass(frozen=True)
class CandidateScore:
    """One scored blocking candidate of a resolver query."""

    record_id: str
    score: float
    label: str  # 'match' | 'possible' | 'non-match'


@dataclass(frozen=True)
class ResolvedEntity:
    """Outcome of :meth:`Resolver.resolve_one`.

    ``tier`` is ``'match'`` when the best candidate clears the match
    threshold, ``'possible'`` when it only reaches the uncertain
    region, and ``'new'`` when nothing co-blocks or nothing scores
    above the possible threshold — the probe looks like a previously
    unseen entity. ``best_id`` is ``None`` exactly in the ``'new'``
    and ``'error'`` tiers; ``candidates`` holds every scored
    candidate, best first.

    ``tier='error'`` entries only come out of
    :meth:`Resolver.resolve_many` with error isolation on: the probe
    failed to resolve, ``error`` holds the failure message, and no
    candidates are reported.
    """

    record_id: str
    tier: str  # 'match' | 'possible' | 'new' | 'error'
    best_id: str | None
    best_score: float
    candidates: tuple[CandidateScore, ...]
    error: str | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


class Resolver:
    """Single-record resolution over a mutable corpus.

    Parameters
    ----------
    blocker:
        Any blocker exposing ``online()`` (LSH, SA-LSH, MP-LSH,
        LSH-Forest). The resolver builds the online index once and
        mutates it incrementally; a blocker carrying a persistent
        ``pool`` keeps its sharded grouping warm across calls.
    records:
        Initial corpus (indexed as one slab).
    matcher:
        Scoring matcher; defaults to q-gram Jaccard over the blocker's
        blocking attributes with the standard §3 thresholds.
    state_dir:
        Optional durability root. When given, the constructor writes
        an initial checkpoint there and every later mutation is
        journaled before it is applied; :meth:`open` restores the
        resolver after a crash or restart.
    fsync:
        Journal fsync discipline (``"always"``/``"batch"``/``"never"``,
        see :mod:`repro.store.journal`). Only meaningful with a
        ``state_dir``.
    """

    def __init__(
        self,
        blocker,
        records: Iterable[Record] = (),
        *,
        matcher: SimilarityMatcher | None = None,
        state_dir: "str | Path | None" = None,
        fsync: str = "always",
    ) -> None:
        online = getattr(blocker, "online", None)
        if online is None:
            raise ConfigurationError(
                f"blocker {blocker!r} has no online() factory; online "
                "resolution needs an incremental index"
            )
        self.blocker = blocker
        if matcher is None:
            matcher = SimilarityMatcher(
                {a: _DEFAULT_MEASURE for a in blocker.attributes}
            )
        self.matcher = matcher
        staged = list(records)
        self.store = RecordStore(staged, name="resolver")
        self.index = online(staged)
        self.state_dir: Path | None = None
        self.fsync = fsync
        self._journal: Journal | None = None
        #: Attached linkage corpus when built via :meth:`for_linkage`.
        self.linked: "LinkedCorpus | None" = None
        if state_dir is not None:
            self.state_dir = Path(state_dir)
            self.save()  # initial checkpoint + fresh journal

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self.store

    @classmethod
    def for_linkage(
        cls,
        blocker,
        source,
        target=None,
        *,
        matcher: SimilarityMatcher | None = None,
        state_dir: "str | Path | None" = None,
        fsync: str = "always",
    ) -> "Resolver":
        """A resolver in clean-clean linkage mode.

        The index holds the *target* side and probes come from the
        *source* — the production record-linkage shape, and exactly
        the orientation ``block_pair`` streams. Accepts a prebuilt
        :class:`~repro.records.dataset.LinkedCorpus` or two datasets.
        For SA-LSH the semhash encoder is frozen over the union of both
        sides (matching ``block_pair``), so source-only concepts still
        carry semantic bits when probing.

        The target corpus stays mutable — ``add_many``/``remove`` keep
        serving the index — and :meth:`link` resolves the source side
        without ever inserting it.
        """
        linked = (
            source
            if isinstance(source, LinkedCorpus)
            else LinkedCorpus(source, target)
        )
        resolver = cls(blocker, (), matcher=matcher)
        target_records = list(linked.target.records)
        if hasattr(blocker, "semantic_function"):
            from repro.semantic.semhash import SemhashEncoder

            encoder = SemhashEncoder(
                blocker.semantic_function, linked.union
            )
            resolver.index = blocker.online(
                target_records, encoder=encoder
            )
        else:
            resolver.index = blocker.online(target_records)
        resolver.store.add_many(target_records)
        resolver.linked = linked
        resolver.fsync = fsync
        if state_dir is not None:
            resolver.state_dir = Path(state_dir)
            resolver.save()
        return resolver

    def link(
        self,
        records: "Sequence[Record] | None" = None,
        *,
        isolate_errors: bool = True,
    ) -> list[ResolvedEntity]:
        """Resolve source probes against the target index.

        Probes are scored, never inserted — the target corpus is
        unchanged afterwards. With no argument, resolves every record
        of the attached linkage corpus's source side (requires
        :meth:`for_linkage`); an explicit batch links any records.
        """
        if records is None:
            if self.linked is None:
                raise ConfigurationError(
                    "link() without records needs a resolver built by "
                    "Resolver.for_linkage(...)"
                )
            records = list(self.linked.source.records)
        return self.resolve_many(records, isolate_errors=isolate_errors)

    def add(self, record: Record) -> None:
        """Index one new record (store and index stay in lockstep)."""
        self.add_many([record])

    def add_many(self, records: Iterable[Record]) -> None:
        """Index a batch of new records.

        Validates every id upfront — present ids, intra-batch
        duplicates and retired (removed) ids are rejected before the
        journal, the store or the index mutates, so a failed call
        leaves the service (and its durable state) unchanged. A
        durable resolver journals the whole batch as one frame before
        applying it: after a crash either every record of the batch is
        recovered or none is.
        """
        staged = list(records)
        retired = sorted(
            r.record_id
            for r in staged
            if self.index.is_retired(r.record_id)
        )
        if retired:
            raise DatasetError(
                f"record ids {retired!r} were removed and are retired; "
                "use fresh ids (see RecordStore.allocate_id)"
            )
        seen: set[str] = set()
        for record in staged:
            if record.record_id in self.store or record.record_id in seen:
                raise DatasetError(
                    f"duplicate record id {record.record_id!r}"
                )
            seen.add(record.record_id)
        if self._journal is not None:
            self._journal.append(
                "add",
                {
                    "records": [
                        [r.record_id, dict(r.fields), r.entity_id]
                        for r in staged
                    ]
                },
            )
        self.store.add_many(staged)
        self.index.add_many(staged)

    def remove(self, record_id: str) -> Record:
        """Drop one record from store and index; returns the record.

        The id is retired permanently — adding it again later raises.
        Durable resolvers journal the removal before applying it.
        """
        record = self.store[record_id]  # raises before the journal does
        if self._journal is not None:
            self._journal.append("remove", {"record_id": record_id})
        self.store.remove(record_id)
        self.index.remove(record_id)
        return record

    @property
    def last_seq(self) -> int:
        """Sequence number of the last acknowledged journaled mutation."""
        return self._journal.last_seq if self._journal is not None else 0

    def save(self, state_dir: "str | Path | None" = None) -> None:
        """Publish a checkpoint of the current state atomically.

        With no argument, checkpoints into the resolver's own
        ``state_dir`` and resets the journal (every entry it held is
        now covered by the snapshot — replay after a crash starts from
        this point). With an explicit ``state_dir``, exports a
        self-contained copy of the current state there without
        touching the attached journal; :meth:`open` accepts either.

        A crash at any point — including the injected
        ``checkpoint.rename`` kill −9 — leaves the previous
        checkpoint + journal pair intact and recoverable.
        """
        target = Path(state_dir) if state_dir is not None else self.state_dir
        if target is None:
            raise ConfigurationError(
                "save() needs a state_dir: pass one or construct the "
                "resolver with state_dir=..."
            )
        target.mkdir(parents=True, exist_ok=True)
        wal_seq = self.last_seq
        write_checkpoint(
            target,
            records_state=self.store.snapshot_state(),
            index_state=self.index.checkpoint(),
            wal_seq=wal_seq,
            blocker=self.blocker,
            matcher=self.matcher,
        )
        if target == self.state_dir:
            # Reset only after the checkpoint is published: a crash
            # above leaves the old pair, a crash below replays zero
            # entries on top of the new snapshot. Either is consistent.
            if self._journal is not None:
                self._journal.close()
            self._journal = Journal.create(
                journal_path(target), start_seq=wal_seq, fsync=self.fsync
            )
        else:
            # Exported copies get a fresh (empty) journal so open()
            # finds a complete state directory.
            Journal.create(
                journal_path(target), start_seq=wal_seq, fsync=self.fsync
            ).close()

    @classmethod
    def open(
        cls,
        state_dir: "str | Path",
        *,
        blocker=None,
        matcher: SimilarityMatcher | None = None,
        fsync: str = "always",
    ) -> "Resolver":
        """Recover a resolver from its durable state.

        Loads the latest published checkpoint, rebuilds the online
        index from the surviving records in their original insertion
        order (byte-identical by the incremental ≡ rebuild contract),
        restores index-only state — the retired-id set and, for SA-LSH,
        the frozen encoder — then replays the journal tail (entries
        past the checkpoint) through the normal apply path. The torn
        frame a kill −9 mid-append may have left is truncated, the
        journal is reopened, and the resolver is live again: every
        acknowledged mutation is present, every unacknowledged one is
        gone.

        ``blocker``/``matcher`` override the pickled ones from the
        checkpoint (a checkpoint written without a blocker *requires*
        one here).
        """
        state_dir = Path(state_dir)
        data = load_checkpoint(state_dir)
        blocker = blocker if blocker is not None else data.blocker
        if blocker is None:
            raise DurabilityError(
                f"checkpoint {data.name!r} carries no blocker; pass "
                "blocker= to open()", path=str(state_dir),
            )
        if matcher is None:
            matcher = data.matcher
        resolver = cls(blocker, (), matcher=matcher)
        try:
            resolver.store = RecordStore.from_snapshot_state(
                data.records_state
            )
        except DatasetError as exc:
            raise DurabilityError(
                f"checkpoint {data.name!r} is unusable: {exc}",
                path=str(state_dir),
            ) from exc
        survivors = list(resolver.store)
        index_state = data.index_state or {}
        encoder = index_state.get("encoder")
        if encoder is not None:
            resolver.index = blocker.online(survivors, encoder=encoder)
        else:
            resolver.index = blocker.online(survivors)
        resolver.index.restore(index_state)
        wal_file = journal_path(state_dir)
        if wal_file.exists():
            entries, _, _ = read_journal(wal_file)
            for entry in entries:
                if entry["seq"] > data.wal_seq:
                    resolver._apply_entry(entry)
            journal = Journal.open(wal_file, fsync=fsync)
        else:
            # A checkpoint-only directory (hand-assembled): start a
            # journal so the recovered resolver is durable too.
            journal = Journal.create(
                wal_file, start_seq=data.wal_seq, fsync=fsync
            )
        resolver.state_dir = state_dir
        resolver.fsync = fsync
        resolver._journal = journal
        return resolver

    def _apply_entry(self, entry: dict) -> None:
        """Apply one journal entry without re-journaling it."""
        op = entry.get("op")
        try:
            if op == "add":
                staged = [
                    Record(rid, fields, entity_id=entity)
                    for rid, fields, entity in entry["records"]
                ]
                self.store.add_many(staged)
                self.index.add_many(staged)
            elif op == "remove":
                self.store.remove(entry["record_id"])
                self.index.remove(entry["record_id"])
            else:
                raise DurabilityError(
                    f"journal entry {entry.get('seq')} has unknown op "
                    f"{op!r}"
                )
        except (KeyError, TypeError, ValueError, DatasetError) as exc:
            raise DurabilityError(
                f"journal entry {entry.get('seq')} does not apply to the "
                f"checkpointed state: {exc}"
            ) from exc

    def close(self) -> None:
        """Release the journal (fsyncs pending frames). Idempotent."""
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "Resolver":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def query(self, record: Record) -> list[str]:
        """Candidate ids co-blocking with ``record`` (no scoring)."""
        return self.index.query(record)

    def resolve_one(self, record: Record) -> ResolvedEntity:
        """Resolve one probe record against the live corpus.

        Blocking-first, like the batch pipeline: only the records the
        online index co-blocks with the probe are scored (the paper's
        point — blocking output feeds any ER algorithm), then ranked
        by (score desc, id asc) and tiered by the matcher's
        thresholds. A probe that blocks with nothing — empty record,
        semantics unseen by a frozen encoder, or simply novel — comes
        back ``tier='new'`` with no candidates, never an error.
        """
        candidate_ids = self.index.query(record)
        candidates = [self.store[rid] for rid in candidate_ids]
        scores = self.matcher.score_against(record, candidates)
        ranked = sorted(
            (
                CandidateScore(
                    record_id=rid,
                    score=score,
                    label=self.matcher.label_for(score),
                )
                for rid, score in zip(candidate_ids, scores.tolist())
            ),
            key=lambda c: (-c.score, c.record_id),
        )
        if not ranked or ranked[0].label == "non-match":
            return ResolvedEntity(
                record_id=record.record_id,
                tier="new",
                best_id=None,
                best_score=ranked[0].score if ranked else 0.0,
                candidates=tuple(ranked),
            )
        best = ranked[0]
        return ResolvedEntity(
            record_id=record.record_id,
            tier="match" if best.label == "match" else "possible",
            best_id=best.record_id,
            best_score=best.score,
            candidates=tuple(ranked),
        )

    def resolve_many(
        self, records: Sequence[Record], *, isolate_errors: bool = True
    ) -> list[ResolvedEntity]:
        """Resolve a batch of probes (each against the same corpus).

        With ``isolate_errors`` (the default) one poisoned probe — a
        malformed record, a semantic function blowing up on unexpected
        input — yields a ``tier='error'`` entry carrying the failure
        message instead of aborting the rest of the batch; the service
        keeps answering for every well-formed probe. Pass
        ``isolate_errors=False`` to get the old fail-fast behaviour.
        """
        if not isolate_errors:
            return [self.resolve_one(record) for record in records]
        resolved = []
        for record in records:
            try:
                resolved.append(self.resolve_one(record))
            except Exception as exc:
                record_id = getattr(record, "record_id", None)
                resolved.append(
                    ResolvedEntity(
                        record_id=str(record_id) if record_id else "",
                        tier="error",
                        best_id=None,
                        best_score=0.0,
                        candidates=(),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
        return resolved
