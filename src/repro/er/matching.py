"""Pairwise record matching over blocking candidates.

A :class:`SimilarityMatcher` scores candidate pairs with a weighted
combination of per-attribute string similarities (the classic
Fellegi-Sunter-style linear comparison vector) and classifies them as
matches, non-matches, or possible matches via two thresholds — matching
the three-region structure of the paper's §3.

Scoring has two engines. The per-pair path (:meth:`SimilarityMatcher.score`)
walks one pair at a time; :meth:`SimilarityMatcher.score_pairs` gathers
each attribute column once through the dataset's cached factorization
and scores all candidate pairs per attribute in one pass — exact
comparison as a code equality test, q-gram Jaccard as packed-bitset
popcounts, everything else by scoring each *distinct* value combination
once and scattering. The batch results are bitwise identical to the
per-pair path.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair
from repro.records.record import Record
from repro.text.levenshtein import edit_similarities
from repro.text.qgrams import qgram_set
from repro.text.similarity import StringSimilarity, get_similarity

#: Pairs per chunk in the bitset Jaccard kernel (bounds gather memory).
_JACCARD_CHUNK = 1 << 18

#: Measure names with a dedicated vectorized kernel.
_QGRAM_MEASURES = {"jaccard_q2": 2, "jaccard_q3": 3}

#: dataset -> {(attribute, q): (bitsets, set_sizes)}; weak so cached
#: bitsets die with their dataset.
_QGRAM_BITS: "weakref.WeakKeyDictionary[Dataset, dict]" = weakref.WeakKeyDictionary()


def _qgram_bitsets(
    dataset: Dataset, attribute: str, q: int
) -> tuple[np.ndarray, np.ndarray]:
    """Packed q-gram bitset and set size per distinct attribute value."""
    per_dataset = _QGRAM_BITS.setdefault(dataset, {})
    cached = per_dataset.get((attribute, q))
    if cached is None:
        _, uniques = dataset.attribute_codes(attribute)
        grams = [qgram_set(value, q) for value in uniques]
        vocabulary: dict[str, int] = {}
        for gram_set in grams:
            for gram in gram_set:
                if gram not in vocabulary:
                    vocabulary[gram] = len(vocabulary)
        words = max(1, (len(vocabulary) + 63) >> 6)
        bits = np.zeros((len(uniques), words), dtype=np.uint64)
        sizes = np.zeros(len(uniques), dtype=np.int64)
        one = np.uint64(1)
        for row, gram_set in enumerate(grams):
            sizes[row] = len(gram_set)
            for gram in gram_set:
                token = vocabulary[gram]
                bits[row, token >> 6] |= one << np.uint64(token & 63)
        cached = (bits, sizes)
        per_dataset[(attribute, q)] = cached
    return cached


def _jaccard_batch(
    bits: np.ndarray,
    sizes: np.ndarray,
    codes1: np.ndarray,
    codes2: np.ndarray,
) -> np.ndarray:
    """|A ∩ B| / |A ∪ B| per pair via popcounts (empty ∪ empty -> 1)."""
    scores = np.empty(codes1.size, dtype=np.float64)
    for start in range(0, codes1.size, _JACCARD_CHUNK):
        stop = start + _JACCARD_CHUNK
        c1, c2 = codes1[start:stop], codes2[start:stop]
        inter = (
            np.bitwise_count(bits[c1] & bits[c2]).sum(axis=1).astype(np.int64)
        )
        union = sizes[c1] + sizes[c2] - inter
        chunk = np.ones(c1.size, dtype=np.float64)
        np.divide(inter, union, out=chunk, where=union > 0)
        scores[start:stop] = chunk
    return scores


def _unique_combos(
    codes1: np.ndarray, codes2: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct (code1, code2) combinations and the scatter inverse."""
    combos = (codes1.astype(np.uint64) << np.uint64(32)) | codes2.astype(
        np.uint64
    )
    unique_combos, inverse = np.unique(combos, return_inverse=True)
    first = (unique_combos >> np.uint64(32)).astype(np.int64)
    second = (unique_combos & np.uint64(0xFFFFFFFF)).astype(np.int64)
    return first, second, inverse


def _generic_batch(
    similarity: StringSimilarity,
    uniques: Sequence[str],
    codes1: np.ndarray,
    codes2: np.ndarray,
) -> np.ndarray:
    """Score each distinct (value1, value2) combination once, scatter."""
    first, second, inverse = _unique_combos(codes1, codes2)
    scored = np.fromiter(
        (
            similarity(uniques[a], uniques[b])
            for a, b in zip(first.tolist(), second.tolist())
        ),
        dtype=np.float64,
        count=first.size,
    )
    return scored[inverse]


def _edit_batch(
    uniques: Sequence[str], codes1: np.ndarray, codes2: np.ndarray
) -> np.ndarray:
    """Edit similarities via the banded-DP batch kernel.

    Like :func:`_generic_batch`, each distinct value combination is
    scored once — but all of them go through one
    :func:`~repro.text.levenshtein.edit_similarities` call, so the DP
    itself is vectorized instead of one Python DP per combination.
    """
    first, second, inverse = _unique_combos(codes1, codes2)
    lefts = [uniques[a] for a in first.tolist()]
    rights = [uniques[b] for b in second.tolist()]
    return edit_similarities(lefts, rights)[inverse]


@dataclass(frozen=True)
class MatchDecision:
    """Outcome of scoring one candidate pair."""

    pair: Pair
    score: float
    label: str  # 'match' | 'possible' | 'non-match'


class SimilarityMatcher:
    """Weighted-average attribute similarity classifier.

    Parameters
    ----------
    attribute_similarities:
        Mapping attribute -> similarity function name (see
        :func:`repro.text.similarity.get_similarity`).
    weights:
        Optional per-attribute weights (default: uniform).
    match_threshold / possible_threshold:
        Scores >= ``match_threshold`` are matches; scores in
        [possible_threshold, match_threshold) are possible matches
        (the §3 uncertain region); the rest are non-matches.
    """

    def __init__(
        self,
        attribute_similarities: Mapping[str, str],
        *,
        weights: Mapping[str, float] | None = None,
        match_threshold: float = 0.85,
        possible_threshold: float = 0.65,
    ) -> None:
        if not attribute_similarities:
            raise ConfigurationError("need at least one attribute similarity")
        if not 0.0 <= possible_threshold <= match_threshold <= 1.0:
            raise ConfigurationError(
                "need 0 <= possible_threshold <= match_threshold <= 1, got "
                f"{possible_threshold} / {match_threshold}"
            )
        self._measure_names = dict(attribute_similarities)
        self._similarities: dict[str, StringSimilarity] = {
            attribute: get_similarity(name)
            for attribute, name in attribute_similarities.items()
        }
        raw_weights = dict(weights or {})
        self._weights = {
            attribute: raw_weights.get(attribute, 1.0)
            for attribute in self._similarities
        }
        total = sum(self._weights.values())
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self._weights = {a: w / total for a, w in self._weights.items()}
        self.match_threshold = match_threshold
        self.possible_threshold = possible_threshold

    def score(self, dataset: Dataset, pair: Pair) -> float:
        """Weighted similarity of one pair in [0, 1]."""
        record1, record2 = dataset[pair[0]], dataset[pair[1]]
        total = 0.0
        for attribute, similarity in self._similarities.items():
            total += self._weights[attribute] * similarity(
                record1.get(attribute), record2.get(attribute)
            )
        return total

    def score_pairs(
        self, dataset: Dataset, pairs: Sequence[Pair]
    ) -> np.ndarray:
        """Weighted similarities of many pairs in one vectorized pass.

        Aligned with the input pair order; bitwise identical to calling
        :meth:`score` on each pair.
        """
        pair_list = pairs if isinstance(pairs, list) else list(pairs)
        if not pair_list:
            return np.empty(0, dtype=np.float64)
        left = dataset.encode_ids([p[0] for p in pair_list])
        right = dataset.encode_ids([p[1] for p in pair_list])
        scores = np.zeros(left.size, dtype=np.float64)
        for attribute, similarity in self._similarities.items():
            codes, uniques = dataset.attribute_codes(attribute)
            codes1, codes2 = codes[left], codes[right]
            measure = self._measure_names[attribute]
            if measure == "exact":
                column = (codes1 == codes2).astype(np.float64)
            elif measure in _QGRAM_MEASURES:
                bits, sizes = _qgram_bitsets(
                    dataset, attribute, _QGRAM_MEASURES[measure]
                )
                column = _jaccard_batch(bits, sizes, codes1, codes2)
            elif measure == "edit":
                column = _edit_batch(uniques, codes1, codes2)
            else:
                column = _generic_batch(similarity, uniques, codes1, codes2)
            scores += self._weights[attribute] * column
        return scores

    def _label(self, score: float) -> str:
        if score >= self.match_threshold:
            return "match"
        if score >= self.possible_threshold:
            return "possible"
        return "non-match"

    def label_for(self, score: float) -> str:
        """Three-region label of a score — 'match', 'possible' or
        'non-match' (the resolver's confidence tiers)."""
        return self._label(score)

    def score_against(
        self, probe: Record, candidates: Iterable[Record]
    ) -> np.ndarray:
        """Weighted similarities of one probe record vs many candidates.

        The single-record form of :meth:`score_pairs` — no dataset or
        cached factorization required, so the online resolver can score
        a query record that belongs to no corpus. Each distinct
        (probe value, candidate value) combination per attribute is
        scored once and scattered; identical to :meth:`score` on each
        (probe, candidate) pair.
        """
        candidate_list = (
            candidates if isinstance(candidates, list) else list(candidates)
        )
        scores = np.zeros(len(candidate_list), dtype=np.float64)
        if not candidate_list:
            return scores
        for attribute, similarity in self._similarities.items():
            probe_value = probe.get(attribute)
            memo: dict[str, float] = {}
            weight = self._weights[attribute]
            for row, candidate in enumerate(candidate_list):
                value = candidate.get(attribute)
                cached = memo.get(value)
                if cached is None:
                    cached = similarity(probe_value, value)
                    memo[value] = cached
                scores[row] += weight * cached
        return scores

    def classify(self, dataset: Dataset, pair: Pair) -> MatchDecision:
        score = self.score(dataset, pair)
        return MatchDecision(pair=pair, score=score, label=self._label(score))

    def match_pairs(
        self,
        dataset: Dataset,
        candidate_pairs: Iterable[Pair],
        *,
        batch: bool = True,
    ) -> list[MatchDecision]:
        """Classify every candidate pair (sorted for determinism).

        ``batch=False`` scores one pair at a time (the reference path);
        both engines produce identical decisions.
        """
        pairs = sorted(candidate_pairs)
        if not batch:
            return [self.classify(dataset, pair) for pair in pairs]
        scores = self.score_pairs(dataset, pairs)
        return [
            MatchDecision(pair=pair, score=score, label=self._label(score))
            for pair, score in zip(pairs, scores.tolist())
        ]

    def matches(
        self, dataset: Dataset, candidate_pairs: Iterable[Pair]
    ) -> set[Pair]:
        """Just the pairs classified as matches."""
        return {
            decision.pair
            for decision in self.match_pairs(dataset, candidate_pairs)
            if decision.label == "match"
        }
