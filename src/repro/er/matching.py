"""Pairwise record matching over blocking candidates.

A :class:`SimilarityMatcher` scores candidate pairs with a weighted
combination of per-attribute string similarities (the classic
Fellegi-Sunter-style linear comparison vector) and classifies them as
matches, non-matches, or possible matches via two thresholds — matching
the three-region structure of the paper's §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair
from repro.text.similarity import StringSimilarity, get_similarity


@dataclass(frozen=True)
class MatchDecision:
    """Outcome of scoring one candidate pair."""

    pair: Pair
    score: float
    label: str  # 'match' | 'possible' | 'non-match'


class SimilarityMatcher:
    """Weighted-average attribute similarity classifier.

    Parameters
    ----------
    attribute_similarities:
        Mapping attribute -> similarity function name (see
        :func:`repro.text.similarity.get_similarity`).
    weights:
        Optional per-attribute weights (default: uniform).
    match_threshold / possible_threshold:
        Scores >= ``match_threshold`` are matches; scores in
        [possible_threshold, match_threshold) are possible matches
        (the §3 uncertain region); the rest are non-matches.
    """

    def __init__(
        self,
        attribute_similarities: Mapping[str, str],
        *,
        weights: Mapping[str, float] | None = None,
        match_threshold: float = 0.85,
        possible_threshold: float = 0.65,
    ) -> None:
        if not attribute_similarities:
            raise ConfigurationError("need at least one attribute similarity")
        if not 0.0 <= possible_threshold <= match_threshold <= 1.0:
            raise ConfigurationError(
                "need 0 <= possible_threshold <= match_threshold <= 1, got "
                f"{possible_threshold} / {match_threshold}"
            )
        self._similarities: dict[str, StringSimilarity] = {
            attribute: get_similarity(name)
            for attribute, name in attribute_similarities.items()
        }
        raw_weights = dict(weights or {})
        self._weights = {
            attribute: raw_weights.get(attribute, 1.0)
            for attribute in self._similarities
        }
        total = sum(self._weights.values())
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self._weights = {a: w / total for a, w in self._weights.items()}
        self.match_threshold = match_threshold
        self.possible_threshold = possible_threshold

    def score(self, dataset: Dataset, pair: Pair) -> float:
        """Weighted similarity of one pair in [0, 1]."""
        record1, record2 = dataset[pair[0]], dataset[pair[1]]
        total = 0.0
        for attribute, similarity in self._similarities.items():
            total += self._weights[attribute] * similarity(
                record1.get(attribute), record2.get(attribute)
            )
        return total

    def classify(self, dataset: Dataset, pair: Pair) -> MatchDecision:
        score = self.score(dataset, pair)
        if score >= self.match_threshold:
            label = "match"
        elif score >= self.possible_threshold:
            label = "possible"
        else:
            label = "non-match"
        return MatchDecision(pair=pair, score=score, label=label)

    def match_pairs(
        self, dataset: Dataset, candidate_pairs: Iterable[Pair]
    ) -> list[MatchDecision]:
        """Classify every candidate pair (sorted for determinism)."""
        return [
            self.classify(dataset, pair) for pair in sorted(candidate_pairs)
        ]

    def matches(
        self, dataset: Dataset, candidate_pairs: Iterable[Pair]
    ) -> set[Pair]:
        """Just the pairs classified as matches."""
        return {
            decision.pair
            for decision in self.match_pairs(dataset, candidate_pairs)
            if decision.label == "match"
        }
