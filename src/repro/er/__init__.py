"""Downstream entity resolution: matching and clustering.

The paper performs blocking only, noting that "our blocking results can
be used as input to any ER algorithms for classifying records" (§1) and
describing the standard two-stage process — blocking, then clustering —
in §2. This package supplies that second stage so the library is usable
end to end: a similarity-threshold pairwise matcher over the candidate
pairs a blocker emits, transitive-closure clustering, and cluster-level
evaluation.
"""

from repro.er.matching import MatchDecision, SimilarityMatcher
from repro.er.resolver import CandidateScore, ResolvedEntity, Resolver
from repro.er.clustering import (
    component_labels,
    connected_components,
    connected_components_arrays,
    resolve,
)
from repro.er.evaluation import ResolutionMetrics, evaluate_resolution

__all__ = [
    "SimilarityMatcher",
    "MatchDecision",
    "Resolver",
    "ResolvedEntity",
    "CandidateScore",
    "component_labels",
    "connected_components",
    "connected_components_arrays",
    "resolve",
    "ResolutionMetrics",
    "evaluate_resolution",
]
