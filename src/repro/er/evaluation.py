"""Cluster-level evaluation of end-to-end entity resolution.

Pairwise precision / recall / F1 against the ground-truth entity map:
the standard measures for the *clustering* stage, complementing the
blocking measures of :mod:`repro.evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair, sorted_pair


@dataclass(frozen=True)
class ResolutionMetrics:
    """Pairwise precision/recall/F1 of a clustering."""

    precision: float
    recall: float
    f1: float
    num_clusters: int
    num_predicted_pairs: int
    num_true_pairs: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.4f} R={self.recall:.4f} F1={self.f1:.4f} "
            f"(clusters={self.num_clusters})"
        )


def _cluster_pairs(clusters: Sequence[Sequence[str]]) -> set[Pair]:
    pairs: set[Pair] = set()
    for cluster in clusters:
        members = sorted(set(cluster))
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                pairs.add(sorted_pair(first, second))
    return pairs


def evaluate_resolution(
    clusters: Sequence[Sequence[str]], dataset: Dataset
) -> ResolutionMetrics:
    """Score predicted entity clusters against the ground truth."""
    predicted = _cluster_pairs(clusters)
    truth = dataset.true_matches
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return ResolutionMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        num_clusters=len(clusters),
        num_predicted_pairs=len(predicted),
        num_true_pairs=len(truth),
    )
