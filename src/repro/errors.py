"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent options."""


class TaxonomyError(ReproError):
    """A taxonomy tree or forest violates its structural invariants."""


class SemanticFunctionError(ReproError):
    """A semantic function produced an invalid interpretation."""


class BlockingError(ReproError):
    """A blocker could not produce blocks for the given dataset."""


class DatasetError(ReproError):
    """A dataset or generator was asked for something impossible."""


class EvaluationError(ReproError):
    """Evaluation was attempted on inconsistent inputs."""
