"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent options."""


class TaxonomyError(ReproError):
    """A taxonomy tree or forest violates its structural invariants."""


class SemanticFunctionError(ReproError):
    """A semantic function produced an invalid interpretation."""


class BlockingError(ReproError):
    """A blocker could not produce blocks for the given dataset."""


class DatasetError(ReproError):
    """A dataset or generator was asked for something impossible."""


class EvaluationError(ReproError):
    """Evaluation was attempted on inconsistent inputs."""


class TransientRuntimeError(ReproError):
    """A runtime failure that a retry (or a rebuilt worker pool) may fix.

    The fault-tolerant parallel runtime (DESIGN.md, "Fault tolerance &
    the degradation ladder") treats these as recoverable: the failed
    payloads are re-shipped under the active
    :class:`~repro.utils.retry.RetryPolicy` instead of aborting the
    whole map.
    """


class SlabTransportError(TransientRuntimeError):
    """A slab or spill file failed an integrity or write check.

    Raised when a shared-memory slab (``.npy``/``.pkl``) or a signature
    spill file is truncated, fails its length+checksum footer, or
    cannot be written (e.g. a full tmpfs). Carries the offending
    ``path`` and, for write failures, the OS ``errno`` — the retry
    path uses both to decide between re-shipping the payload and
    falling back to a disk-backed slab directory.
    """

    def __init__(
        self, message: str, *, path: "str | None" = None,
        errno: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.errno = errno

    def __reduce__(self):
        # Exceptions pickle by positional args only; carry the keyword
        # attributes across the worker/parent process boundary too.
        return (
            _rebuild_slab_error,
            (str(self), self.path, self.errno),
        )


def _rebuild_slab_error(message, path, errno):
    return SlabTransportError(message, path=path, errno=errno)


class PoolBrokenError(ReproError):
    """A persistent worker pool died (or hung past its timeout).

    Raised by :class:`~repro.utils.parallel.ShardPool` when its
    executor breaks (e.g. an OOM-killed worker) or a map exceeds its
    ``timeout`` and recovery is disabled or exhausted. The broken
    executor is always torn down first, so the pool itself stays
    usable: the next map forks a fresh executor.
    """


class DurabilityError(ReproError):
    """Persistent resolver state is missing, corrupt, or inconsistent.

    Raised by the :mod:`repro.store` durability layer when a checkpoint
    manifest fails its per-file checksums, an on-disk index segment is
    truncated or carries the wrong magic, a state directory has no
    recoverable checkpoint, or a journal's header is not a journal at
    all. A *torn tail* on the write-ahead journal is not an error — the
    replay truncates at the first bad frame by design; this exception
    marks damage recovery must not paper over. Carries the offending
    ``path`` when one is known.
    """

    def __init__(self, message: str, *, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path
