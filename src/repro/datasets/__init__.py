"""Synthetic datasets standing in for Cora and NC Voter.

The paper evaluates on the Cora bibliography (1,879 records) and the
North Carolina voter registry (292,892 records). Neither is shipped
here, so seeded generators produce corpora with the properties the
experiments depend on (see DESIGN.md "Substitutions"): Cora-like data is
dirty and heavily duplicated with venue-driven missing-value patterns;
NC-Voter-like data is large, relatively clean, with uncertain race and
gender values.
"""

from repro.datasets.corruption import Corruptor
from repro.datasets.cora import CoraLikeGenerator
from repro.datasets.ncvoter import NCVoterLikeGenerator
from repro.datasets.fig1 import fig1_dataset, fig1_semantic_function

__all__ = [
    "Corruptor",
    "CoraLikeGenerator",
    "NCVoterLikeGenerator",
    "fig1_dataset",
    "fig1_semantic_function",
]
