"""Synthetic Cora-like bibliography generator.

Cora is a heavily duplicated, dirty corpus of machine-learning
publications (1,879 records, ~190 entities). The generator reproduces
the properties the paper's experiments depend on:

* skewed cluster sizes (some publications appear a dozen times);
* character/token noise in titles and author lists;
* venue-type-driven population of *journal* / *booktitle* /
  *institution*, so the Table 1 missing-value patterns carry signal;
* pattern noise — some duplicates get their venue attributes dropped or
  spuriously filled, making semantic features *noisy* exactly as the
  paper reports for Cora (§6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import wordpools
from repro.datasets.corruption import Corruptor
from repro.errors import DatasetError
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.utils.rand import rng_from_seed

#: Publication types and their base probabilities.
VENUE_TYPES: tuple[tuple[str, float], ...] = (
    ("journal", 0.28),
    ("proceedings", 0.40),
    ("techreport", 0.15),
    ("thesis", 0.05),
    ("book", 0.08),
    ("patent", 0.04),
)


@dataclass(frozen=True)
class CoraLikeGenerator:
    """Generate a Cora-like dataset.

    Parameters
    ----------
    num_records:
        Total records (the real Cora has 1,879).
    num_entities:
        Distinct publications (the real Cora has ~190).
    seed:
        Master seed; all randomness derives from it.
    typo_rate:
        Probability that a duplicate's title/authors get character noise.
    missing_rate:
        Probability that a duplicate loses its author list.
    pattern_noise:
        Probability that a duplicate's venue attributes are perturbed
        (dropped or spuriously filled), making its missing-value pattern
        — and hence its semantic interpretation — wrong.
    related_rate:
        Probability that a new entity's title is a mutation of an
        earlier entity's title. Real Cora is full of such families
        ("the cascade-correlation learning architecture" vs "a genetic
        cascade correlation learning algorithm", Fig. 1): they are the
        textually-similar non-matches that semantic features filter.
    """

    num_records: int = 1879
    num_entities: int = 190
    seed: int = 0
    typo_rate: float = 0.7
    missing_rate: float = 0.15
    pattern_noise: float = 0.12
    related_rate: float = 0.45

    def generate(self) -> Dataset:
        """Build the dataset (deterministic in the constructor args)."""
        if self.num_entities < 1 or self.num_records < self.num_entities:
            raise DatasetError(
                f"need 1 <= num_entities <= num_records, got "
                f"{self.num_entities} / {self.num_records}"
            )
        rng = rng_from_seed(self.seed, "cora")
        corruptor = Corruptor(rng_from_seed(self.seed, "cora-corrupt"))

        cluster_sizes = self._cluster_sizes(rng)
        records: list[Record] = []
        record_counter = 0
        previous_titles: list[str] = []
        for entity_index, size in enumerate(cluster_sizes):
            entity_id = f"pub{entity_index:04d}"
            base = self._base_publication(rng, previous_titles)
            previous_titles.append(base["title"])
            for copy_index in range(size):
                record_counter += 1
                fields = self._render(base, copy_index, rng, corruptor)
                records.append(
                    Record(
                        record_id=f"r{record_counter:05d}",
                        fields=fields,
                        entity_id=entity_id,
                    )
                )
        return Dataset(records, name=f"cora-like-{self.num_records}")

    # -- internals --------------------------------------------------------------

    def _cluster_sizes(self, rng) -> list[int]:
        """Skewed cluster sizes summing to ``num_records``.

        Every entity has at least one record; the remainder is spread
        with a geometric-flavoured preference for a few big clusters.
        """
        sizes = [1] * self.num_entities
        remaining = self.num_records - self.num_entities
        # Zipf-ish weights over entities.
        weights = [1.0 / (rank + 1) ** 0.7 for rank in range(self.num_entities)]
        total_weight = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total_weight
            cumulative.append(acc)
        for _ in range(remaining):
            roll = rng.random()
            for index, bound in enumerate(cumulative):
                if roll <= bound:
                    sizes[index] += 1
                    break
        rng.shuffle(sizes)
        return sizes

    def _mutated_title(self, source: str, rng) -> str:
        """A new, distinct title derived from an existing one."""
        words = source.split()
        for _ in range(rng.randint(1, 2)):
            operation = rng.random()
            if operation < 0.45 or len(words) <= 3:
                position = rng.randrange(len(words) + 1)
                words.insert(position, rng.choice(wordpools.TITLE_WORDS))
            elif operation < 0.75:
                words[rng.randrange(len(words))] = rng.choice(
                    wordpools.TITLE_WORDS
                )
            else:
                words.pop(rng.randrange(len(words)))
        return " ".join(words)

    def _base_publication(self, rng, previous_titles: list[str] | None = None) -> dict:
        """The clean 'ground truth' form of one publication."""
        if previous_titles and rng.random() < self.related_rate:
            title = self._mutated_title(rng.choice(previous_titles), rng)
        else:
            title_length = rng.randint(4, 8)
            title = " ".join(
                rng.choice(wordpools.TITLE_WORDS) for _ in range(title_length)
            )
        num_authors = rng.randint(1, 3)
        authors = [
            (rng.choice(wordpools.AUTHOR_FIRST), rng.choice(wordpools.AUTHOR_LAST))
            for _ in range(num_authors)
        ]
        roll = rng.random()
        acc = 0.0
        venue_type = VENUE_TYPES[-1][0]
        for name, probability in VENUE_TYPES:
            acc += probability
            if roll <= acc:
                venue_type = name
                break
        venue = {
            "journal": lambda: rng.choice(wordpools.JOURNALS),
            "proceedings": lambda: rng.choice(wordpools.CONFERENCES),
            "techreport": lambda: rng.choice(wordpools.INSTITUTIONS),
            "thesis": lambda: rng.choice(wordpools.INSTITUTIONS),
            "book": lambda: rng.choice(wordpools.BOOK_PUBLISHERS),
            "patent": lambda: "",
        }[venue_type]()
        year = str(rng.randint(1985, 2002))
        return {
            "title": title,
            "authors": authors,
            "venue_type": venue_type,
            "venue": venue,
            "year": year,
        }

    def _author_string(self, authors: list, style: int) -> str:
        """Render the author list in one of several citation styles."""
        if style == 0:
            rendered = [f"{first[0]}. {last}" for first, last in authors]
            return " and ".join(rendered)
        if style == 1:
            rendered = [f"{last}, {first[0]}." for first, last in authors]
            return " & ".join(rendered)
        if style == 2:
            rendered = [f"{first} {last}" for first, last in authors]
            return ", ".join(rendered)
        rendered = [f"{last} {first[0]}" for first, last in authors]
        return "; ".join(rendered)

    def _venue_fields(self, base: dict) -> dict[str, str]:
        """Populate journal/booktitle/institution per the venue type.

        This is what ties records to the Table 1 patterns: journal
        articles fill *journal*, conference papers fill *booktitle*,
        technical reports and theses fill *institution*; books and
        patents fill none of the three (pattern 8 -> Publication).
        """
        venue_type = base["venue_type"]
        fields = {"journal": "", "booktitle": "", "institution": ""}
        if venue_type == "journal":
            fields["journal"] = base["venue"]
        elif venue_type == "proceedings":
            fields["booktitle"] = base["venue"]
        elif venue_type in ("techreport", "thesis"):
            fields["institution"] = base["venue"]
        return fields

    def _render(self, base: dict, copy_index: int, rng, corruptor: Corruptor) -> dict:
        """One concrete record of the cluster; copy 0 stays clean-ish."""
        title = base["title"]
        authors = self._author_string(base["authors"], rng.randrange(4))
        fields = self._venue_fields(base)

        if copy_index > 0:
            if corruptor.maybe(self.typo_rate):
                title = corruptor.corrupt_title(title, errors=rng.randint(1, 2))
            if corruptor.maybe(self.typo_rate * 0.6):
                authors = corruptor.corrupt_name(authors)
            if corruptor.maybe(self.missing_rate):
                authors = ""
            if corruptor.maybe(self.pattern_noise):
                fields = self._perturb_pattern(fields, rng)

        record_fields = {
            "title": title,
            "authors": authors,
            "year": base["year"],
            "publisher": base["venue"],
            **fields,
        }
        return record_fields

    def _perturb_pattern(self, fields: dict[str, str], rng) -> dict[str, str]:
        """Semantic noise shifting the record to a different Table 1 row.

        Most perturbations are mild (drop a present venue attribute or
        fill an absent one — the interpretation stays related); a
        quarter are *flips* (drop everything present, fill a different
        attribute), which can make duplicates semantically disjoint —
        the source of the paper's ~3.5% PC loss on Cora.
        """
        filler = {
            "journal": wordpools.JOURNALS,
            "booktitle": wordpools.CONFERENCES,
            "institution": wordpools.INSTITUTIONS,
        }
        perturbed = dict(fields)
        present = [a for a, v in perturbed.items() if v]
        absent = [a for a, v in perturbed.items() if not v]
        flip = present and absent and rng.random() < 0.25
        if flip:
            for attribute in present:
                perturbed[attribute] = ""
            attribute = rng.choice(absent)
            perturbed[attribute] = rng.choice(filler[attribute])
        elif present and (not absent or rng.random() < 0.5):
            perturbed[rng.choice(present)] = ""
        elif absent:
            attribute = rng.choice(absent)
            perturbed[attribute] = rng.choice(filler[attribute])
        return perturbed
