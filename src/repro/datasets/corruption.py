"""Data corruption engine for synthetic duplicate generation.

Implements the error channels real dirty data exhibits — keyboard
typos, OCR confusions, token drops/swaps, abbreviation, missing values —
in the style of GeCo (Christen & Vatsalan, 2013), which produced the
survey's synthetic corpora. Every operation draws from an explicit RNG
so whole corpora regenerate byte-identically from a seed.
"""

from __future__ import annotations

import random
import string

#: Keyboard adjacency (qwerty) for realistic substitution typos.
_KEYBOARD_NEIGHBOURS: dict[str, str] = {
    "a": "qwsz", "b": "vghn", "c": "xdfv", "d": "serfcx", "e": "wsdr",
    "f": "drtgvc", "g": "ftyhbv", "h": "gyujnb", "i": "ujko", "j": "huikmn",
    "k": "jiolm", "l": "kop", "m": "njk", "n": "bhjm", "o": "iklp",
    "p": "ol", "q": "wa", "r": "edft", "s": "awedxz", "t": "rfgy",
    "u": "yhji", "v": "cfgb", "w": "qase", "x": "zsdc", "y": "tghu",
    "z": "asx",
}

#: OCR confusion pairs (source -> lookalike).
_OCR_CONFUSIONS: list[tuple[str, str]] = [
    ("m", "rn"), ("w", "vv"), ("d", "cl"), ("0", "o"), ("1", "l"),
    ("5", "s"), ("8", "b"), ("g", "q"), ("e", "c"),
]


class Corruptor:
    """Applies randomised corruption operations to strings.

    Parameters
    ----------
    rng:
        The random stream; pass a dedicated :class:`random.Random` so
        corruption is reproducible and independent of other components.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    # -- character-level -------------------------------------------------------

    def typo_insert(self, text: str) -> str:
        """Insert one random lowercase letter."""
        position = self._rng.randrange(len(text) + 1)
        letter = self._rng.choice(string.ascii_lowercase)
        return text[:position] + letter + text[position:]

    def typo_delete(self, text: str) -> str:
        """Delete one character (no-op on empty strings)."""
        if not text:
            return text
        position = self._rng.randrange(len(text))
        return text[:position] + text[position + 1 :]

    def typo_substitute(self, text: str) -> str:
        """Replace one character with a keyboard neighbour."""
        if not text:
            return text
        position = self._rng.randrange(len(text))
        original = text[position].lower()
        neighbours = _KEYBOARD_NEIGHBOURS.get(original)
        if not neighbours:
            return text
        replacement = self._rng.choice(neighbours)
        return text[:position] + replacement + text[position + 1 :]

    def typo_transpose(self, text: str) -> str:
        """Swap two adjacent characters."""
        if len(text) < 2:
            return text
        position = self._rng.randrange(len(text) - 1)
        return (
            text[:position]
            + text[position + 1]
            + text[position]
            + text[position + 2 :]
        )

    def ocr_error(self, text: str) -> str:
        """Apply one OCR confusion if any source pattern occurs."""
        candidates = [(src, dst) for src, dst in _OCR_CONFUSIONS if src in text]
        if not candidates:
            return text
        src, dst = self._rng.choice(candidates)
        return text.replace(src, dst, 1)

    def character_noise(self, text: str, num_errors: int = 1) -> str:
        """Apply ``num_errors`` random character-level operations."""
        operations = (
            self.typo_insert,
            self.typo_delete,
            self.typo_substitute,
            self.typo_transpose,
        )
        for _ in range(num_errors):
            text = self._rng.choice(operations)(text)
        return text

    # -- token-level -----------------------------------------------------------

    def drop_token(self, text: str) -> str:
        """Remove one whitespace-delimited token (keeps at least one)."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        tokens.pop(self._rng.randrange(len(tokens)))
        return " ".join(tokens)

    def swap_tokens(self, text: str) -> str:
        """Swap two adjacent tokens (e.g. "Qing Wang" -> "Wang Qing")."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        position = self._rng.randrange(len(tokens) - 1)
        tokens[position], tokens[position + 1] = (
            tokens[position + 1],
            tokens[position],
        )
        return " ".join(tokens)

    def abbreviate_token(self, text: str) -> str:
        """Truncate one token to its initial plus a period."""
        tokens = text.split()
        candidates = [i for i, t in enumerate(tokens) if len(t) > 2]
        if not candidates:
            return text
        index = self._rng.choice(candidates)
        tokens[index] = tokens[index][0] + "."
        return " ".join(tokens)

    # -- convenience -----------------------------------------------------------

    def maybe(self, probability: float) -> bool:
        """Biased coin flip on this corruptor's stream."""
        return self._rng.random() < probability

    def corrupt_name(self, name: str, *, errors: int = 1) -> str:
        """Name-flavoured corruption: typo, abbreviation or token swap."""
        roll = self._rng.random()
        if roll < 0.6:
            return self.character_noise(name, errors)
        if roll < 0.8:
            return self.abbreviate_token(name)
        return self.swap_tokens(name)

    def corrupt_title(self, title: str, *, errors: int = 1) -> str:
        """Title-flavoured corruption: typos, word drops, OCR noise."""
        roll = self._rng.random()
        if roll < 0.55:
            return self.character_noise(title, errors)
        if roll < 0.8:
            return self.drop_token(title)
        return self.ocr_error(title)
