"""The running example of the paper's Fig. 1 (records r1-r6).

Six bibliographic records about cascade-correlation learning: r1, r2
are conference versions of the same paper, r6 is a semantically
ambiguous copy of it, r4 is the technical-report edition (a different
entity under the paper's semantics), r3 a different genetic-algorithm
paper and r5 an unrelated technical report.

Interpretations follow Example 4.2: ζ(r1)={c4}, ζ(r2)={c2}, ζ(r3)={c4},
ζ(r4)={c7}, ζ(r5)={c7}, ζ(r6)={c0}.
"""

from __future__ import annotations

from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.semantic.interpretation import CallableSemanticFunction
from repro.taxonomy.builders import bibliographic_tree

#: PUBLISHER value -> concept of ``tbib`` (Example 4.2).
_PUBLISHER_CONCEPTS = {
    "NISPS Proceedings": "c4",
    "Neural Information Systems": "c2",
    "Proceedings on Neural Ntw.": "c4",
    "TR": "c7",
    "Technical Report (TR)": "c7",
    "": "c0",
}


def fig1_dataset() -> Dataset:
    """The six records of Fig. 1 with ground-truth entities."""
    rows = [
        ("r1", "The cascade-correlation learning architecture",
         "E. Fahlman and C. Lebiere", "NISPS Proceedings", "cascade"),
        ("r2", "Cascade correlation learning architecture",
         "E. Fahlman & C. Lebiere", "Neural Information Systems", "cascade"),
        ("r3", "A genetic cascade correlation learning algorithm",
         "", "Proceedings on Neural Ntw.", "genetic"),
        ("r4", "The cascade corelation learning architecture",
         "Fahlman, S., & Lebiere, C.", "TR", "cascade-tr"),
        ("r5", "Controlled growth of cascade correlation nets",
         "", "Technical Report (TR)", "growth-tr"),
        ("r6", "The cascade-correlation learn architecture",
         "Lebiere, C. and Fahlman, S.", "", "cascade"),
    ]
    records = [
        Record(
            record_id=record_id,
            fields={"title": title, "authors": authors, "publisher": publisher},
            entity_id=entity,
        )
        for record_id, title, authors, publisher, entity in rows
    ]
    return Dataset(records, name="fig1")


def _interpret_publisher(record):
    # Module-level (not a closure) so the semantic function pickles
    # into process-sharded workers.
    concept = _PUBLISHER_CONCEPTS.get(record.get("publisher"), "c0")
    return (concept,)


def fig1_semantic_function() -> CallableSemanticFunction:
    """Semantic function mapping PUBLISHER values to ``tbib`` concepts."""
    return CallableSemanticFunction(bibliographic_tree(), _interpret_publisher)
