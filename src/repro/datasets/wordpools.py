"""Word pools for the synthetic generators.

Separate module so tests and both generators share the same vocabulary
without importing each other.
"""

from __future__ import annotations

#: Machine-learning flavoured title vocabulary (Cora is an ML corpus).
TITLE_WORDS: tuple[str, ...] = (
    "learning", "neural", "network", "networks", "cascade", "correlation",
    "architecture", "genetic", "algorithm", "algorithms", "bayesian",
    "inference", "markov", "models", "hidden", "reinforcement", "gradient",
    "descent", "stochastic", "optimization", "classification", "clustering",
    "regression", "kernel", "methods", "support", "vector", "machines",
    "decision", "trees", "boosting", "bagging", "ensemble", "feature",
    "selection", "extraction", "dimensionality", "reduction", "principal",
    "component", "analysis", "recognition", "speech", "vision", "image",
    "probabilistic", "graphical", "temporal", "sequence", "prediction",
    "adaptive", "control", "dynamic", "programming", "search", "heuristic",
    "knowledge", "representation", "reasoning", "planning", "scheduling",
    "evolutionary", "computation", "swarm", "annealing", "entropy",
    "information", "theory", "coding", "compression", "sampling",
    "approximation", "convergence", "stability", "generalization",
    "regularization", "sparse", "latent", "variable", "mixture", "experts",
)

#: Author name pools.
AUTHOR_FIRST: tuple[str, ...] = (
    "scott", "christian", "michael", "david", "john", "robert", "richard",
    "thomas", "charles", "daniel", "matthew", "donald", "mark", "paul",
    "steven", "andrew", "kenneth", "george", "joshua", "kevin", "brian",
    "edward", "ronald", "anthony", "mary", "patricia", "jennifer", "linda",
    "elizabeth", "barbara", "susan", "jessica", "sarah", "karen", "nancy",
    "lisa", "margaret", "betty", "sandra", "ashley", "emily", "michelle",
    "carol", "amanda", "dorothy", "melissa", "deborah", "stephanie",
    "rebecca", "sharon", "qing", "mingyuan", "huizhi", "wei", "juan",
)

AUTHOR_LAST: tuple[str, ...] = (
    "fahlman", "lebiere", "smith", "johnson", "williams", "brown", "jones",
    "garcia", "miller", "davis", "rodriguez", "martinez", "hernandez",
    "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor", "moore",
    "jackson", "martin", "lee", "perez", "thompson", "white", "harris",
    "sanchez", "clark", "ramirez", "lewis", "robinson", "walker", "young",
    "allen", "king", "wright", "scott", "torres", "nguyen", "hill",
    "flores", "green", "adams", "nelson", "baker", "hall", "rivera",
    "campbell", "mitchell", "carter", "roberts", "wang", "cui", "liang",
    "christen", "papadakis", "hinton", "jordan", "bishop", "mackay",
)

#: Venue names per publication type.
JOURNALS: tuple[str, ...] = (
    "machine learning journal", "neural computation",
    "journal of artificial intelligence research",
    "ieee transactions on neural networks",
    "journal of machine learning research", "artificial intelligence",
    "pattern recognition", "data mining and knowledge discovery",
    "ieee transactions on pattern analysis", "cognitive science",
)

CONFERENCES: tuple[str, ...] = (
    "advances in neural information processing systems",
    "international conference on machine learning",
    "national conference on artificial intelligence",
    "international joint conference on artificial intelligence",
    "conference on computational learning theory",
    "international conference on pattern recognition",
    "proceedings of the cognitive science society",
    "international conference on genetic algorithms",
)

INSTITUTIONS: tuple[str, ...] = (
    "carnegie mellon university", "stanford university",
    "massachusetts institute of technology", "university of toronto",
    "australian national university", "university of edinburgh",
    "california institute of technology", "university of cambridge",
)

BOOK_PUBLISHERS: tuple[str, ...] = (
    "morgan kaufmann", "mit press", "springer verlag",
    "cambridge university press", "addison wesley",
)

#: First names by gender for the voter generator.
VOTER_FIRST_M: tuple[str, ...] = (
    "james", "john", "robert", "michael", "william", "david", "richard",
    "joseph", "thomas", "charles", "christopher", "daniel", "matthew",
    "anthony", "donald", "mark", "paul", "steven", "andrew", "kenneth",
    "joshua", "kevin", "brian", "george", "edward", "ronald", "timothy",
    "jason", "jeffrey", "ryan", "jacob", "gary", "nicholas", "eric",
    "jonathan", "stephen", "larry", "justin", "scott", "brandon",
    "benjamin", "samuel", "gregory", "frank", "alexander", "raymond",
    "patrick", "jack", "dennis", "jerry",
)

VOTER_FIRST_F: tuple[str, ...] = (
    "mary", "patricia", "jennifer", "linda", "elizabeth", "barbara",
    "susan", "jessica", "sarah", "karen", "nancy", "lisa", "margaret",
    "betty", "sandra", "ashley", "dorothy", "kimberly", "emily", "donna",
    "michelle", "carol", "amanda", "melissa", "deborah", "stephanie",
    "rebecca", "laura", "sharon", "cynthia", "kathleen", "amy", "shirley",
    "angela", "helen", "anna", "brenda", "pamela", "nicole", "samantha",
    "katherine", "christine", "debra", "rachel", "catherine", "carolyn",
    "janet", "ruth", "maria", "heather",
)

_VOTER_LAST_BASE: tuple[str, ...] = AUTHOR_LAST + (
    "turner", "phillips", "evans", "parker", "edwards", "collins",
    "stewart", "morris", "murphy", "cook", "rogers", "peterson", "cooper",
    "reed", "bailey", "bell", "gomez", "kelly", "howard", "ward", "cox",
    "diaz", "richardson", "wood", "watson", "brooks", "bennett", "gray",
    "james", "reyes", "cruz", "hughes", "price", "myers", "long", "foster",
    "sanders", "ross", "morales", "powell", "sullivan", "russell", "ortiz",
    "jenkins", "gutierrez", "perry", "butler", "barnes", "fisher",
)

# Real voter registries have near-unique names (the NC extract holds
# ~250k distinct name pairs among 292k rows). A base pool of ~110
# surnames would give a 3,000-record subset heavy name collisions that
# no technique can resolve, depressing every PQ. Expanding the pool by
# systematic prefix/suffix composition restores realistic cardinality
# (~2,700 surnames) while keeping names plausible and deterministic.
_SURNAME_PREFIXES: tuple[str, ...] = (
    "", "mc", "o", "van", "de", "la", "st", "del",
)
_SURNAME_SUFFIXES: tuple[str, ...] = ("", "son", "s", "er")

# Plain base surnames come first so that frequency-skewed sampling
# (which treats the pool head as the "common names") draws realistic
# high-frequency surnames.
VOTER_LAST: tuple[str, ...] = _VOTER_LAST_BASE + tuple(
    f"{prefix}{base}{suffix}"
    for base in _VOTER_LAST_BASE
    for prefix in _SURNAME_PREFIXES
    for suffix in _SURNAME_SUFFIXES
    if prefix or suffix
)

NC_CITIES: tuple[str, ...] = (
    "charlotte", "raleigh", "greensboro", "durham", "winston salem",
    "fayetteville", "cary", "wilmington", "high point", "concord",
    "asheville", "greenville", "gastonia", "jacksonville", "chapel hill",
    "rocky mount", "burlington", "huntersville", "wilson", "kannapolis",
)
