"""Synthetic NC-Voter-like registry generator.

The real NC Voter extract is large (paper: 292,892 records) and
*relatively clean*: duplicates differ by small typos, and the semantic
attributes race and gender carry uncertain values ('u') but are rarely
wrong. The generator reproduces exactly those properties at a
configurable scale so the Fig. 13 sweep runs anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import wordpools
from repro.datasets.corruption import Corruptor
from repro.errors import DatasetError
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.taxonomy.builders import VOTER_RACES
from repro.utils.rand import rng_from_seed

#: Race distribution roughly mirroring the NC registry mix.
_RACE_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("w", 0.62),
    ("b", 0.24),
    ("a", 0.03),
    ("i", 0.02),
    ("m", 0.02),
    ("o", 0.07),
)


@dataclass(frozen=True)
class NCVoterLikeGenerator:
    """Generate an NC-Voter-like dataset.

    Parameters
    ----------
    num_records:
        Total records including duplicates.
    duplicate_fraction:
        Fraction of records that are duplicates of some entity's first
        record (the registry's re-registrations / data-entry copies).
    seed:
        Master seed.
    uncertain_gender_rate / uncertain_race_rate:
        Probability that a record's gender / race reads 'u' — the
        paper's "uncertain values" (§6.2).
    typo_errors:
        Character errors applied to a corrupted duplicate's name field.
    exact_duplicate_fraction:
        Share of duplicates whose names are copied verbatim (registry
        re-registrations); the rest get a small typo. This is what
        makes the "Exact Value" similarity distribution of Fig. 6 mass
        near 1.0 and keeps key-equality techniques (TBlo) competitive,
        as in the real data.
    """

    num_records: int = 30000
    duplicate_fraction: float = 0.10
    seed: int = 0
    uncertain_gender_rate: float = 0.06
    uncertain_race_rate: float = 0.12
    typo_errors: int = 1
    exact_duplicate_fraction: float = 0.5

    def generate(self) -> Dataset:
        if self.num_records < 1:
            raise DatasetError(f"num_records must be >= 1, got {self.num_records}")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise DatasetError(
                f"duplicate_fraction must be in [0, 1), got {self.duplicate_fraction}"
            )
        rng = rng_from_seed(self.seed, "ncvoter")
        corruptor = Corruptor(rng_from_seed(self.seed, "ncvoter-corrupt"))

        num_duplicates = int(self.num_records * self.duplicate_fraction)
        num_entities = self.num_records - num_duplicates

        records: list[Record] = []
        bases: list[dict] = []
        for entity_index in range(num_entities):
            base = self._base_voter(rng)
            bases.append(base)
            records.append(
                Record(
                    record_id=f"v{entity_index:07d}",
                    fields=self._render(base, rng, clean=True),
                    entity_id=f"voter{entity_index:07d}",
                )
            )

        # Duplicates reference a random entity; small clusters dominate,
        # as in a registry where few voters have many stale rows.
        for duplicate_index in range(num_duplicates):
            entity_index = rng.randrange(num_entities)
            base = bases[entity_index]
            records.append(
                Record(
                    record_id=f"d{duplicate_index:07d}",
                    fields=self._duplicate_fields(base, rng, corruptor),
                    entity_id=f"voter{entity_index:07d}",
                )
            )
        return Dataset(records, name=f"ncvoter-like-{self.num_records}")

    # -- internals --------------------------------------------------------------

    def _pick_race(self, rng) -> str:
        roll = rng.random()
        acc = 0.0
        for race, weight in _RACE_WEIGHTS:
            acc += weight
            if roll <= acc:
                return race
        return VOTER_RACES[-1]

    def _pick_name(self, pool, rng) -> str:
        """Zipf-flavoured name draw: a third of the population shares
        the thirty most common names, as in real registries. Common
        names create the large same-name record groups whose pairs only
        demographic (semantic) features can tell apart."""
        if rng.random() < 0.35:
            return rng.choice(pool[: min(30, len(pool))])
        return rng.choice(pool)

    def _base_voter(self, rng) -> dict:
        gender = rng.choice(("m", "f"))
        first_pool = (
            wordpools.VOTER_FIRST_M if gender == "m" else wordpools.VOTER_FIRST_F
        )
        return {
            "first_name": self._pick_name(first_pool, rng),
            "last_name": self._pick_name(wordpools.VOTER_LAST, rng),
            "gender": gender,
            "race": self._pick_race(rng),
            "city": rng.choice(wordpools.NC_CITIES),
            "zip": f"{rng.randint(27000, 28999)}",
        }

    def _uncertain(self, value: str, rate: float, rng) -> str:
        return "u" if rng.random() < rate else value

    def _render(self, base: dict, rng, *, clean: bool) -> dict[str, str]:
        return {
            "first_name": base["first_name"],
            "last_name": base["last_name"],
            "gender": self._uncertain(base["gender"], self.uncertain_gender_rate, rng),
            "race": self._uncertain(base["race"], self.uncertain_race_rate, rng),
            "city": base["city"],
            "zip": base["zip"],
        }

    def _duplicate_fields(self, base: dict, rng, corruptor: Corruptor) -> dict[str, str]:
        """A duplicate: verbatim or lightly typo'd names, fresh
        uncertainty rolls on the semantic attributes."""
        fields = self._render(base, rng, clean=False)
        if rng.random() >= self.exact_duplicate_fraction:
            # Perturb one of the name fields with a small typo; registry
            # duplicates rarely mangle both.
            target = rng.choice(("first_name", "last_name"))
            fields[target] = corruptor.character_noise(
                fields[target], self.typo_errors
            )
        return fields
