"""The blocking graph: records as nodes, co-occurrence as edges."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import BlockingResult
from repro.records.ground_truth import Pair, sorted_pair


@dataclass(frozen=True)
class BlockingGraph:
    """Weighted blocking graph derived from a block collection.

    Attributes
    ----------
    edges:
        Pair -> weight.
    block_ids_of:
        Record id -> set of block indices containing it.
    num_blocks:
        Number of blocks in the source collection.
    block_sizes:
        Size of each source block (for ARCS).
    """

    edges: dict[Pair, float]
    block_ids_of: dict[str, frozenset[int]]
    num_blocks: int
    block_sizes: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.block_ids_of)

    def degree(self, record_id: str) -> int:
        """Number of graph edges incident to the record."""
        count = 0
        for a, b in self.edges:
            if a == record_id or b == record_id:
                count += 1
        return count

    def adjacency(self) -> dict[str, list[tuple[str, float]]]:
        """Node -> [(neighbour, weight)] (built on demand)."""
        adj: dict[str, list[tuple[str, float]]] = {}
        for (a, b), weight in self.edges.items():
            adj.setdefault(a, []).append((b, weight))
            adj.setdefault(b, []).append((a, weight))
        return adj


def build_blocking_graph(result: BlockingResult, scheme: str) -> BlockingGraph:
    """Construct the weighted graph for one weighting scheme.

    Edge weights are computed by :func:`repro.metablocking.weights.edge_weight`
    from the co-occurrence statistics gathered here.
    """
    from repro.metablocking.weights import edge_weight

    block_ids_of: dict[str, set[int]] = {}
    for index, block in enumerate(result.blocks):
        for record_id in set(block):
            block_ids_of.setdefault(record_id, set()).add(index)

    frozen = {rid: frozenset(ids) for rid, ids in block_ids_of.items()}
    block_sizes = tuple(len(b) for b in result.blocks)

    # Degrees (|v_i| for EJS) need the distinct-neighbour counts first.
    neighbour_sets: dict[str, set[str]] = {}
    for pair in result.distinct_pairs:
        a, b = pair
        neighbour_sets.setdefault(a, set()).add(b)
        neighbour_sets.setdefault(b, set()).add(a)
    degrees = {rid: len(ns) for rid, ns in neighbour_sets.items()}
    total_edges = len(result.distinct_pairs)

    edges: dict[Pair, float] = {}
    for pair in result.distinct_pairs:
        a, b = pair
        edges[sorted_pair(a, b)] = edge_weight(
            scheme,
            blocks_a=frozen[a],
            blocks_b=frozen[b],
            num_blocks=len(result.blocks),
            block_sizes=block_sizes,
            degree_a=degrees[a],
            degree_b=degrees[b],
            total_edges=total_edges,
        )
    return BlockingGraph(
        edges=edges,
        block_ids_of=frozen,
        num_blocks=len(result.blocks),
        block_sizes=block_sizes,
    )
