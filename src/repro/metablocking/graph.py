"""The blocking graph: records as nodes, co-occurrence as edges.

Two representations coexist:

* :class:`BlockingGraph` — the original dict-of-edges form, kept as the
  legacy/reference path;
* :class:`ArrayBlockingGraph` — the candidate-pair engine's form
  (DESIGN.md, "Candidate-pair engine"): edges as sorted ``uint64`` pair
  keys over the result's local id codec, per-edge co-occurrence
  statistics as flat arrays, and a CSR record→block incidence matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.base import BlockingResult
from repro.records.ground_truth import Pair, sorted_pair
from repro.records.pairs import (
    PAIR_SHIFT,
    decode_pair_keys,
    enumerate_csr_pairs,
    sorted_unique_keys,
)


@dataclass(frozen=True)
class BlockingGraph:
    """Weighted blocking graph derived from a block collection.

    Attributes
    ----------
    edges:
        Pair -> weight.
    block_ids_of:
        Record id -> set of block indices containing it.
    num_blocks:
        Number of blocks in the source collection.
    block_sizes:
        Size of each source block (for ARCS).
    """

    edges: dict[Pair, float]
    block_ids_of: dict[str, frozenset[int]]
    num_blocks: int
    block_sizes: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.block_ids_of)

    @cached_property
    def degrees(self) -> dict[str, int]:
        """Incident-edge count per node, derived once from the edges."""
        counts: dict[str, int] = dict.fromkeys(self.block_ids_of, 0)
        for a, b in self.edges:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        return counts

    def degree(self, record_id: str) -> int:
        """Number of graph edges incident to the record."""
        return self.degrees.get(record_id, 0)

    def adjacency(self) -> dict[str, list[tuple[str, float]]]:
        """Node -> [(neighbour, weight)] (built on demand)."""
        adj: dict[str, list[tuple[str, float]]] = {}
        for (a, b), weight in self.edges.items():
            adj.setdefault(a, []).append((b, weight))
            adj.setdefault(b, []).append((a, weight))
        return adj


@dataclass(frozen=True)
class ArrayBlockingGraph:
    """Array-backed blocking graph over the result's local id codec.

    Edges are the distinct co-occurring pairs, held as sorted ``uint64``
    keys (``edge_keys``) with their decoded endpoint indices
    (``edge_left`` < ``edge_right``). The scheme-independent
    co-occurrence statistics every weighting scheme consumes are
    precomputed as whole arrays; scheme-specific weights come from
    :func:`repro.metablocking.weights.compute_weights`.
    """

    #: Sorted local vocabulary: index -> record id.
    ids: list[str]
    #: Distinct edges as sorted ``uint64`` pair keys.
    edge_keys: np.ndarray
    #: Decoded endpoints per edge (``edge_left`` < ``edge_right``).
    edge_left: np.ndarray
    edge_right: np.ndarray
    #: |B_i ∩ B_j| per edge (CBS, float64).
    common_blocks: np.ndarray
    #: Σ_{b ∈ B_i ∩ B_j} 1/||b|| per edge (ARCS, float64).
    arcs: np.ndarray
    #: |B_i| per vocabulary index (distinct blocks containing the record).
    blocks_per_record: np.ndarray
    #: Distinct-neighbour count |v_i| per vocabulary index.
    node_degrees: np.ndarray
    #: Deduped block membership entries, block-major (block id / record
    #: index per entry) — the transposed incidence is derived lazily.
    member_block: np.ndarray
    member_record: np.ndarray
    #: Number of blocks and their *original* sizes (duplicates included).
    num_blocks: int
    block_sizes: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return int(self.edge_keys.size)

    @cached_property
    def _record_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        order = np.lexsort((self.member_block, self.member_record))
        offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(self.blocks_per_record, out=offsets[1:])
        return offsets, self.member_block[order]

    @property
    def record_block_offsets(self) -> np.ndarray:
        """CSR record -> block incidence offsets (built on demand)."""
        return self._record_incidence[0]

    @property
    def record_block_ids(self) -> np.ndarray:
        """Sorted block ids per record (CSR values of the incidence)."""
        return self._record_incidence[1]


def build_array_graph(result: BlockingResult) -> ArrayBlockingGraph:
    """Scheme-independent co-occurrence statistics as whole arrays.

    One pass builds everything every weighting scheme needs: the block
    membership is deduped per block (``np.unique`` over combined
    block<<32|record labels), pairs are enumerated per block with their
    block ids, and one sort of the pair keys yields the distinct edge
    list, the common-block counts (CBS) and — accumulating the per-block
    reciprocal-comparison contributions per edge — ARCS. ARCS
    contributions are ordered by ascending block index inside each edge
    segment, reproducing the legacy sum bit for bit.
    """
    arrays = result.local_arrays
    num_blocks = len(result.blocks)
    block_sizes = np.diff(arrays.offsets)
    num_records = len(arrays.ids)

    if arrays.indices.size:
        block_of = np.repeat(np.arange(num_blocks, dtype=np.int64), block_sizes)
        membership = sorted_unique_keys(
            (block_of.astype(np.uint64) << PAIR_SHIFT)
            | arrays.indices.astype(np.uint64)
        )
        member_block, member_record = decode_pair_keys(membership)
    else:
        member_block = np.empty(0, dtype=np.int64)
        member_record = np.empty(0, dtype=np.int64)

    blocks_per_record = np.bincount(member_record, minlength=num_records)

    # Deduped block -> member CSR, then the per-block pair multiset.
    dedup_offsets = np.zeros(num_blocks + 1, dtype=np.int64)
    np.cumsum(np.bincount(member_block, minlength=num_blocks), out=dedup_offsets[1:])
    left, right, pair_blocks = enumerate_csr_pairs(
        dedup_offsets, member_record, with_group_ids=True
    )

    if left.size:
        keys = (
            np.minimum(left, right).astype(np.uint64) << PAIR_SHIFT
        ) | np.maximum(left, right).astype(np.uint64)
        order = np.lexsort((pair_blocks, keys))
        keys = keys[order]
        pair_blocks = pair_blocks[order]
        # keys are sorted — derive the distinct edges, counts and
        # inverse from the run boundaries instead of a second sort.
        boundary = np.empty(keys.size, dtype=bool)
        boundary[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
        edge_keys = keys[boundary]
        inverse = np.cumsum(boundary) - 1
        counts = np.diff(np.append(np.flatnonzero(boundary), keys.size))
        comparisons = block_sizes * (block_sizes - 1) / 2.0
        contributions = np.zeros(num_blocks, dtype=np.float64)
        np.divide(1.0, comparisons, out=contributions, where=comparisons > 0)
        # np.add.at accumulates strictly in element order (ascending
        # block index within each edge here), reproducing the legacy
        # sequential sum bit for bit — reduceat's pairwise summation
        # rounds differently.
        arcs = np.zeros(edge_keys.size, dtype=np.float64)
        np.add.at(arcs, inverse, contributions[pair_blocks])
    else:
        edge_keys = np.empty(0, dtype=np.uint64)
        counts = np.empty(0, dtype=np.int64)
        arcs = np.empty(0, dtype=np.float64)

    edge_left, edge_right = decode_pair_keys(edge_keys)
    node_degrees = np.bincount(
        np.concatenate([edge_left, edge_right]), minlength=num_records
    )

    return ArrayBlockingGraph(
        ids=arrays.ids,
        edge_keys=edge_keys,
        edge_left=edge_left,
        edge_right=edge_right,
        common_blocks=counts.astype(np.float64),
        arcs=arcs,
        blocks_per_record=blocks_per_record,
        node_degrees=node_degrees,
        member_block=member_block,
        member_record=member_record,
        num_blocks=num_blocks,
        block_sizes=block_sizes,
    )


def build_blocking_graph(result: BlockingResult, scheme: str) -> BlockingGraph:
    """Construct the legacy weighted graph for one weighting scheme.

    Edge weights are computed by :func:`repro.metablocking.weights.edge_weight`
    from the co-occurrence statistics gathered here. Kept as the
    per-pair reference path; the array engine is
    :func:`build_array_graph` + ``compute_weights``.
    """
    from repro.metablocking.weights import edge_weight

    block_ids_of: dict[str, set[int]] = {}
    for index, block in enumerate(result.blocks):
        for record_id in set(block):
            block_ids_of.setdefault(record_id, set()).add(index)

    frozen = {rid: frozenset(ids) for rid, ids in block_ids_of.items()}
    block_sizes = tuple(len(b) for b in result.blocks)

    # Degrees (|v_i| for EJS) need the distinct-neighbour counts first.
    neighbour_sets: dict[str, set[str]] = {}
    for pair in result.distinct_pairs:
        a, b = pair
        neighbour_sets.setdefault(a, set()).add(b)
        neighbour_sets.setdefault(b, set()).add(a)
    degrees = {rid: len(ns) for rid, ns in neighbour_sets.items()}
    total_edges = len(result.distinct_pairs)

    edges: dict[Pair, float] = {}
    for pair in result.distinct_pairs:
        a, b = pair
        edges[sorted_pair(a, b)] = edge_weight(
            scheme,
            blocks_a=frozen[a],
            blocks_b=frozen[b],
            num_blocks=len(result.blocks),
            block_sizes=block_sizes,
            degree_a=degrees[a],
            degree_b=degrees[b],
            total_edges=total_edges,
        )
    return BlockingGraph(
        edges=edges,
        block_ids_of=frozen,
        num_blocks=len(result.blocks),
        block_sizes=block_sizes,
    )
