"""Meta-blocking (Papadakis et al., TKDE 2014) — the Fig. 12 comparator.

Meta-blocking restructures an existing block collection: build the
*blocking graph* (nodes = records, edges = co-occurring pairs), weight
the edges, prune weak ones, and emit the surviving edges as the new
candidate pairs.
"""

from repro.metablocking.graph import (
    ArrayBlockingGraph,
    BlockingGraph,
    build_array_graph,
    build_blocking_graph,
)
from repro.metablocking.weights import WEIGHT_SCHEMES, compute_weights, edge_weight
from repro.metablocking.pruning import PRUNING_ALGORITHMS, prune, prune_array
from repro.metablocking.pipeline import run_metablocking

__all__ = [
    "ArrayBlockingGraph",
    "BlockingGraph",
    "build_array_graph",
    "build_blocking_graph",
    "WEIGHT_SCHEMES",
    "edge_weight",
    "compute_weights",
    "PRUNING_ALGORITHMS",
    "prune",
    "prune_array",
    "run_metablocking",
]
