"""Pruning algorithms of meta-blocking (Papadakis et al., 2014).

* WEP — Weighted Edge Pruning: keep edges with weight >= the global
  mean weight.
* CEP — Cardinality Edge Pruning: keep the K globally heaviest edges,
  K = floor(Σ_b |b| / 2).
* WNP — Weighted Node Pruning: per node, keep edges >= the node's mean
  incident weight; surviving edges are the union over nodes.
* CNP — Cardinality Node Pruning: per node, keep its k heaviest edges,
  k = max(1, floor(Σ_b |b| / |V|)); union over nodes.

:func:`prune` walks the legacy dict graph; :func:`prune_array` applies
the same policies to an :class:`ArrayBlockingGraph` edge list with
vectorized thresholding (WEP), one global lexsort (CEP), and per-node
segment partitioning of the doubled directed edge list (WNP/CNP). Ties
break identically to the legacy heaps: by weight, then by pair key /
neighbour index — and index order over the sorted local vocabulary *is*
lexicographic id order.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError
from repro.metablocking.graph import ArrayBlockingGraph, BlockingGraph
from repro.records.ground_truth import Pair, sorted_pair

#: Pruning algorithm names accepted by :func:`prune`.
PRUNING_ALGORITHMS = ("WEP", "CEP", "WNP", "CNP")


def _mean_threshold(weights) -> float:
    """Mean with a relative tolerance.

    Summation error can push the computed mean infinitesimally above
    every element when all weights are equal (e.g. a single block under
    ARCS); without the tolerance such graphs would prune *every* edge.
    """
    weights = list(weights)
    mean = sum(weights) / len(weights)
    return mean - 1e-12 * max(1.0, abs(mean))


def _wep(graph: BlockingGraph) -> set[Pair]:
    if not graph.edges:
        return set()
    threshold = _mean_threshold(graph.edges.values())
    return {pair for pair, weight in graph.edges.items() if weight >= threshold}


def _cep(graph: BlockingGraph) -> set[Pair]:
    if not graph.edges:
        return set()
    budget = sum(graph.block_sizes) // 2
    budget = max(1, min(budget, len(graph.edges)))
    heaviest = heapq.nlargest(
        budget, graph.edges.items(), key=lambda item: (item[1], item[0])
    )
    return {pair for pair, _ in heaviest}


def _wnp(graph: BlockingGraph) -> set[Pair]:
    kept: set[Pair] = set()
    for node, neighbours in graph.adjacency().items():
        if not neighbours:
            continue
        threshold = _mean_threshold(w for _, w in neighbours)
        for other, weight in neighbours:
            if weight >= threshold:
                kept.add(sorted_pair(node, other))
    return kept


def _cnp(graph: BlockingGraph) -> set[Pair]:
    if graph.num_nodes == 0:
        return set()
    k = max(1, sum(graph.block_sizes) // graph.num_nodes)
    kept: set[Pair] = set()
    for node, neighbours in graph.adjacency().items():
        top = heapq.nlargest(k, neighbours, key=lambda item: (item[1], item[0]))
        for other, _ in top:
            kept.add(sorted_pair(node, other))
    return kept


def prune(graph: BlockingGraph, algorithm: str) -> set[Pair]:
    """Apply one pruning algorithm; returns the surviving pairs."""
    if algorithm == "WEP":
        return _wep(graph)
    if algorithm == "CEP":
        return _cep(graph)
    if algorithm == "WNP":
        return _wnp(graph)
    if algorithm == "CNP":
        return _cnp(graph)
    raise ConfigurationError(
        f"unknown pruning algorithm {algorithm!r}; known: {PRUNING_ALGORITHMS}"
    )


# -- array engine -------------------------------------------------------------


def _mean_threshold_scalar(mean: float) -> float:
    return mean - 1e-12 * max(1.0, abs(mean))


def _wep_array(graph: ArrayBlockingGraph, weights: np.ndarray) -> np.ndarray:
    threshold = _mean_threshold_scalar(float(weights.mean()))
    return graph.edge_keys[weights >= threshold]


def _cep_array(graph: ArrayBlockingGraph, weights: np.ndarray) -> np.ndarray:
    budget = int(graph.block_sizes.sum()) // 2
    budget = max(1, min(budget, graph.num_edges))
    # Ascending (weight, key) sort; the heaviest `budget` edges are the
    # tail — the same selection as nlargest keyed on (weight, pair).
    order = np.lexsort((graph.edge_keys, weights))
    return np.sort(graph.edge_keys[order[-budget:]])


def _directed_edges(
    graph: ArrayBlockingGraph, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Each edge twice, once per endpoint: (node, neighbour, weight, edge)."""
    num_edges = graph.num_edges
    nodes = np.concatenate([graph.edge_left, graph.edge_right])
    neighbours = np.concatenate([graph.edge_right, graph.edge_left])
    doubled_weights = np.concatenate([weights, weights])
    edge_ids = np.concatenate([np.arange(num_edges), np.arange(num_edges)])
    return nodes, neighbours, doubled_weights, edge_ids


def _survivors(graph: ArrayBlockingGraph, edge_ids_kept: np.ndarray) -> np.ndarray:
    """Union the kept directed entries back onto the sorted edge list."""
    survive = np.zeros(graph.num_edges, dtype=bool)
    survive[edge_ids_kept] = True
    return graph.edge_keys[survive]


def _wnp_array(graph: ArrayBlockingGraph, weights: np.ndarray) -> np.ndarray:
    nodes, _, w, edge_ids = _directed_edges(graph, weights)
    order = np.argsort(nodes, kind="stable")
    nodes_sorted, w_sorted = nodes[order], w[order]
    counts = np.bincount(nodes, minlength=graph.num_nodes)
    active = counts > 0
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])[active]
    means = np.add.reduceat(w_sorted, starts) / counts[active]
    thresholds = np.empty(graph.num_nodes, dtype=np.float64)
    thresholds[active] = means - 1e-12 * np.maximum(1.0, np.abs(means))
    keep = w_sorted >= thresholds[nodes_sorted]
    return _survivors(graph, edge_ids[order][keep])


def _cnp_array(graph: ArrayBlockingGraph, weights: np.ndarray) -> np.ndarray:
    if graph.num_nodes == 0:
        return np.empty(0, dtype=np.uint64)
    k = max(1, int(graph.block_sizes.sum()) // graph.num_nodes)
    nodes, neighbours, w, edge_ids = _directed_edges(graph, weights)
    # Node-major, then ascending (weight, neighbour) inside each node's
    # segment: the top-k of nlargest keyed on (weight, neighbour id) are
    # the last k entries of the segment.
    order = np.lexsort((neighbours, w, nodes))
    nodes_sorted = nodes[order]
    ends = np.cumsum(np.bincount(nodes, minlength=graph.num_nodes))
    positions = np.arange(nodes_sorted.size)
    keep = positions >= ends[nodes_sorted] - k
    return _survivors(graph, edge_ids[order][keep])


def prune_array(
    graph: ArrayBlockingGraph, weights: np.ndarray, algorithm: str
) -> np.ndarray:
    """Apply one pruning algorithm to the array graph.

    Returns the surviving edges as sorted ``uint64`` pair keys over
    ``graph.ids`` (decode with
    :func:`repro.records.pairs.pairs_from_keys`).
    """
    if graph.num_edges == 0:
        if algorithm not in PRUNING_ALGORITHMS:
            raise ConfigurationError(
                f"unknown pruning algorithm {algorithm!r}; "
                f"known: {PRUNING_ALGORITHMS}"
            )
        return np.empty(0, dtype=np.uint64)
    if algorithm == "WEP":
        return _wep_array(graph, weights)
    if algorithm == "CEP":
        return _cep_array(graph, weights)
    if algorithm == "WNP":
        return _wnp_array(graph, weights)
    if algorithm == "CNP":
        return _cnp_array(graph, weights)
    raise ConfigurationError(
        f"unknown pruning algorithm {algorithm!r}; known: {PRUNING_ALGORITHMS}"
    )
