"""Pruning algorithms of meta-blocking (Papadakis et al., 2014).

* WEP — Weighted Edge Pruning: keep edges with weight >= the global
  mean weight.
* CEP — Cardinality Edge Pruning: keep the K globally heaviest edges,
  K = floor(Σ_b |b| / 2).
* WNP — Weighted Node Pruning: per node, keep edges >= the node's mean
  incident weight; surviving edges are the union over nodes.
* CNP — Cardinality Node Pruning: per node, keep its k heaviest edges,
  k = max(1, floor(Σ_b |b| / |V|)); union over nodes.
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigurationError
from repro.metablocking.graph import BlockingGraph
from repro.records.ground_truth import Pair, sorted_pair

#: Pruning algorithm names accepted by :func:`prune`.
PRUNING_ALGORITHMS = ("WEP", "CEP", "WNP", "CNP")


def _mean_threshold(weights) -> float:
    """Mean with a relative tolerance.

    Summation error can push the computed mean infinitesimally above
    every element when all weights are equal (e.g. a single block under
    ARCS); without the tolerance such graphs would prune *every* edge.
    """
    weights = list(weights)
    mean = sum(weights) / len(weights)
    return mean - 1e-12 * max(1.0, abs(mean))


def _wep(graph: BlockingGraph) -> set[Pair]:
    if not graph.edges:
        return set()
    threshold = _mean_threshold(graph.edges.values())
    return {pair for pair, weight in graph.edges.items() if weight >= threshold}


def _cep(graph: BlockingGraph) -> set[Pair]:
    if not graph.edges:
        return set()
    budget = sum(graph.block_sizes) // 2
    budget = max(1, min(budget, len(graph.edges)))
    heaviest = heapq.nlargest(
        budget, graph.edges.items(), key=lambda item: (item[1], item[0])
    )
    return {pair for pair, _ in heaviest}


def _wnp(graph: BlockingGraph) -> set[Pair]:
    kept: set[Pair] = set()
    for node, neighbours in graph.adjacency().items():
        if not neighbours:
            continue
        threshold = _mean_threshold(w for _, w in neighbours)
        for other, weight in neighbours:
            if weight >= threshold:
                kept.add(sorted_pair(node, other))
    return kept


def _cnp(graph: BlockingGraph) -> set[Pair]:
    if graph.num_nodes == 0:
        return set()
    k = max(1, sum(graph.block_sizes) // graph.num_nodes)
    kept: set[Pair] = set()
    for node, neighbours in graph.adjacency().items():
        top = heapq.nlargest(k, neighbours, key=lambda item: (item[1], item[0]))
        for other, _ in top:
            kept.add(sorted_pair(node, other))
    return kept


def prune(graph: BlockingGraph, algorithm: str) -> set[Pair]:
    """Apply one pruning algorithm; returns the surviving pairs."""
    if algorithm == "WEP":
        return _wep(graph)
    if algorithm == "CEP":
        return _cep(graph)
    if algorithm == "WNP":
        return _wnp(graph)
    if algorithm == "CNP":
        return _cnp(graph)
    raise ConfigurationError(
        f"unknown pruning algorithm {algorithm!r}; known: {PRUNING_ALGORITHMS}"
    )
