"""Edge weighting schemes of meta-blocking (Papadakis et al., 2014).

* CBS  — Common Blocks Scheme: |B_i ∩ B_j|.
* ECBS — Enhanced CBS: CBS · log(|B|/|B_i|) · log(|B|/|B_j|).
* JS   — Jaccard Scheme: |B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|).
* EJS  — Enhanced JS: JS · log(|E|/|v_i|) · log(|E|/|v_j|).
* ARCS — Aggregate Reciprocal Comparisons: Σ_{b ∈ B_i ∩ B_j} 1/||b||,
  with ||b|| the comparisons in block b.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Sequence

from repro.errors import ConfigurationError

#: Scheme names accepted by :func:`edge_weight`.
WEIGHT_SCHEMES = ("ARCS", "CBS", "ECBS", "JS", "EJS")


def edge_weight(
    scheme: str,
    *,
    blocks_a: AbstractSet[int],
    blocks_b: AbstractSet[int],
    num_blocks: int,
    block_sizes: Sequence[int],
    degree_a: int,
    degree_b: int,
    total_edges: int,
) -> float:
    """Weight of the edge between two records under one scheme."""
    common = blocks_a & blocks_b
    cbs = float(len(common))

    if scheme == "CBS":
        return cbs
    if scheme == "ECBS":
        if not blocks_a or not blocks_b:
            return 0.0
        return (
            cbs
            * math.log(num_blocks / len(blocks_a))
            * math.log(num_blocks / len(blocks_b))
        )
    if scheme == "JS":
        union = len(blocks_a) + len(blocks_b) - len(common)
        return cbs / union if union else 0.0
    if scheme == "EJS":
        union = len(blocks_a) + len(blocks_b) - len(common)
        js = cbs / union if union else 0.0
        if degree_a == 0 or degree_b == 0 or total_edges == 0:
            return 0.0
        # Guard log of values < 1 when a node touches every edge.
        factor_a = math.log(max(total_edges / degree_a, 1.0))
        factor_b = math.log(max(total_edges / degree_b, 1.0))
        return js * factor_a * factor_b
    if scheme == "ARCS":
        weight = 0.0
        for block_index in common:
            size = block_sizes[block_index]
            comparisons = size * (size - 1) / 2
            if comparisons > 0:
                weight += 1.0 / comparisons
        return weight
    raise ConfigurationError(
        f"unknown weighting scheme {scheme!r}; known: {WEIGHT_SCHEMES}"
    )
