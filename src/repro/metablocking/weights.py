"""Edge weighting schemes of meta-blocking (Papadakis et al., 2014).

* CBS  — Common Blocks Scheme: |B_i ∩ B_j|.
* ECBS — Enhanced CBS: CBS · log(|B|/|B_i|) · log(|B|/|B_j|).
* JS   — Jaccard Scheme: |B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|).
* EJS  — Enhanced JS: JS · log(|E|/|v_i|) · log(|E|/|v_j|).
* ARCS — Aggregate Reciprocal Comparisons: Σ_{b ∈ B_i ∩ B_j} 1/||b||,
  with ||b|| the comparisons in block b.

:func:`edge_weight` scores one edge (the legacy per-pair path);
:func:`compute_weights` scores an :class:`ArrayBlockingGraph`'s whole
edge list at once. The array path evaluates the per-record ``log``
factors of ECBS/EJS with ``math.log`` (one call per record, not per
edge) so its weights are bitwise identical to the legacy path, then
combines them as whole-array expressions over the edge list.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metablocking.graph import ArrayBlockingGraph

#: Scheme names accepted by :func:`edge_weight` / :func:`compute_weights`.
WEIGHT_SCHEMES = ("ARCS", "CBS", "ECBS", "JS", "EJS")


def edge_weight(
    scheme: str,
    *,
    blocks_a: AbstractSet[int],
    blocks_b: AbstractSet[int],
    num_blocks: int,
    block_sizes: Sequence[int],
    degree_a: int,
    degree_b: int,
    total_edges: int,
) -> float:
    """Weight of the edge between two records under one scheme."""
    common = blocks_a & blocks_b
    cbs = float(len(common))

    if scheme == "CBS":
        return cbs
    if scheme == "ECBS":
        if not blocks_a or not blocks_b:
            return 0.0
        return (
            cbs
            * math.log(num_blocks / len(blocks_a))
            * math.log(num_blocks / len(blocks_b))
        )
    if scheme == "JS":
        union = len(blocks_a) + len(blocks_b) - len(common)
        return cbs / union if union else 0.0
    if scheme == "EJS":
        union = len(blocks_a) + len(blocks_b) - len(common)
        js = cbs / union if union else 0.0
        if degree_a == 0 or degree_b == 0 or total_edges == 0:
            return 0.0
        # Guard log of values < 1 when a node touches every edge.
        factor_a = math.log(max(total_edges / degree_a, 1.0))
        factor_b = math.log(max(total_edges / degree_b, 1.0))
        return js * factor_a * factor_b
    if scheme == "ARCS":
        # Ascending block order, matching the array engine's reduceat,
        # so both paths accumulate in the same float order.
        weight = 0.0
        for block_index in sorted(common):
            size = block_sizes[block_index]
            comparisons = size * (size - 1) / 2
            if comparisons > 0:
                weight += 1.0 / comparisons
        return weight
    raise ConfigurationError(
        f"unknown weighting scheme {scheme!r}; known: {WEIGHT_SCHEMES}"
    )


def _log_table(values: np.ndarray, transform) -> np.ndarray:
    """Per-record ``math.log`` factors (bit-compatible with the legacy path)."""
    return np.fromiter(
        (transform(v) for v in values.tolist()),
        dtype=np.float64,
        count=values.size,
    )


def compute_weights(graph: ArrayBlockingGraph, scheme: str) -> np.ndarray:
    """Weights of the whole edge list under one scheme (float64).

    Aligned with ``graph.edge_keys``; every scheme is one whole-array
    expression over the precomputed co-occurrence statistics.
    """
    cbs = graph.common_blocks
    if scheme == "CBS":
        return cbs.copy()
    if scheme == "ECBS":
        num_blocks = graph.num_blocks
        table = _log_table(
            graph.blocks_per_record,
            lambda count: math.log(num_blocks / count) if count else 0.0,
        )
        return cbs * table[graph.edge_left] * table[graph.edge_right]
    if scheme == "JS" or scheme == "EJS":
        blocks_per = graph.blocks_per_record
        union = blocks_per[graph.edge_left] + blocks_per[graph.edge_right] - cbs
        js = np.zeros_like(cbs)
        np.divide(cbs, union, out=js, where=union > 0)
        if scheme == "JS":
            return js
        total_edges = graph.num_edges
        if total_edges == 0:
            return js
        table = _log_table(
            graph.node_degrees,
            lambda degree: (
                math.log(max(total_edges / degree, 1.0)) if degree else 0.0
            ),
        )
        return js * table[graph.edge_left] * table[graph.edge_right]
    if scheme == "ARCS":
        return graph.arcs.copy()
    raise ConfigurationError(
        f"unknown weighting scheme {scheme!r}; known: {WEIGHT_SCHEMES}"
    )
