"""End-to-end meta-blocking: blocks -> weighted graph -> pruned pairs."""

from __future__ import annotations

from repro.core.base import BlockingResult
from repro.errors import ConfigurationError
from repro.metablocking.graph import build_array_graph, build_blocking_graph
from repro.metablocking.pruning import prune, prune_array
from repro.metablocking.weights import compute_weights
from repro.records.pairs import pairs_from_keys


def run_metablocking(
    result: BlockingResult,
    scheme: str,
    algorithm: str,
    *,
    engine: str = "array",
) -> BlockingResult:
    """Restructure a block collection with meta-blocking.

    The output's blocks are the surviving record pairs (size-2 blocks),
    the standard form for evaluating meta-blocking with PC / PQ* / FM*
    (Fig. 12). The default ``array`` engine runs the whole graph-weight-
    prune pipeline on the candidate-pair arrays; ``engine="legacy"``
    keeps the original dict-walking path as the reference.
    """
    if engine == "array":
        graph = build_array_graph(result)
        weights = compute_weights(graph, scheme)
        keys = prune_array(graph, weights, algorithm)
        # Keys are sorted and the vocabulary is sorted, so the decoded
        # pairs land in the legacy sorted() order.
        surviving = pairs_from_keys(keys, graph.ids)
    elif engine == "legacy":
        legacy_graph = build_blocking_graph(result, scheme)
        surviving = sorted(prune(legacy_graph, algorithm))
    else:
        raise ConfigurationError(
            f"unknown meta-blocking engine {engine!r}; known: array, legacy"
        )
    return BlockingResult(
        blocker_name=f"{result.blocker_name}+{algorithm}/{scheme}",
        blocks=tuple(surviving),
        metadata={
            "source": result.blocker_name,
            "scheme": scheme,
            "algorithm": algorithm,
            "engine": engine,
            "input_blocks": result.num_blocks,
        },
    )
