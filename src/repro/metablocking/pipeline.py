"""End-to-end meta-blocking: blocks -> weighted graph -> pruned pairs."""

from __future__ import annotations

from repro.core.base import BlockingResult
from repro.metablocking.graph import build_blocking_graph
from repro.metablocking.pruning import prune


def run_metablocking(
    result: BlockingResult, scheme: str, algorithm: str
) -> BlockingResult:
    """Restructure a block collection with meta-blocking.

    The output's blocks are the surviving record pairs (size-2 blocks),
    the standard form for evaluating meta-blocking with PC / PQ* / FM*
    (Fig. 12).
    """
    graph = build_blocking_graph(result, scheme)
    surviving = sorted(prune(graph, algorithm))
    return BlockingResult(
        blocker_name=f"{result.blocker_name}+{algorithm}/{scheme}",
        blocks=tuple(surviving),
        metadata={
            "source": result.blocker_name,
            "scheme": scheme,
            "algorithm": algorithm,
            "input_blocks": result.num_blocks,
        },
    )
