"""Semhash signatures (paper Algorithm 1).

The encoder chooses the concept subset C (one bit per *leaf* concept
reachable from any record's interpretation) and produces binary
signatures ``G(r)`` with ``g_i(r) = 1`` iff leaf concept ``c_i`` is
subsumed by some concept of ζ(r). C satisfies the three conditions of
§4.4 by construction:

* **Disjointness** — leaves of a tree are pairwise unrelated.
* **Completeness** — every leaf under any interpreted concept is in C.
* **Non-emptiness** — bits only exist for leaves some record reaches.

By Prop. 4.3 (exact in this construction — see DESIGN.md) the Jaccard
similarity of two signatures equals the records' semantic similarity.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import SemanticFunctionError
from repro.records.record import Record
from repro.semantic.interpretation import SemanticFunction


def semhash_jaccard(sig1: np.ndarray, sig2: np.ndarray) -> float:
    """Jaccard of two binary signatures; all-zero vs anything is 0.

    The all-zero convention matches Proposition 4.2: a record with an
    empty interpretation is semantically similar to nothing.
    """
    if sig1.shape != sig2.shape:
        raise ValueError("signatures must have the same length")
    ones1 = int(sig1.sum())
    ones2 = int(sig2.sum())
    if ones1 == 0 or ones2 == 0:
        return 0.0
    intersection = int(np.minimum(sig1, sig2).sum())
    union = ones1 + ones2 - intersection
    return intersection / union


class SemhashEncoder:
    """Generate semhash signatures for the records of a dataset.

    Parameters
    ----------
    semantic_function:
        The semantic function ζ (carries its taxonomy forest).
    records:
        The record population used to select the bit concepts C
        (Algorithm 1 step 1). Bits are sorted by concept id for
        determinism.
    """

    def __init__(
        self, semantic_function: SemanticFunction, records: Iterable[Record]
    ) -> None:
        self.semantic_function = semantic_function
        forest = semantic_function.forest

        bit_concepts: set[str] = set()
        interpretations: dict[str, frozenset[str]] = {}
        for record in records:
            zeta = semantic_function.interpret(record)
            interpretations[record.record_id] = zeta
            for concept_id in zeta:
                bit_concepts |= forest.leaf_set(concept_id)
        if not bit_concepts:
            raise SemanticFunctionError(
                "no record produced any concept; cannot build semhash bits"
            )
        self.bits: tuple[str, ...] = tuple(sorted(bit_concepts))
        self._bit_index = {c: i for i, c in enumerate(self.bits)}
        self._interpretations = interpretations

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    def interpretation(self, record: Record) -> frozenset[str]:
        """ζ(record), cached for records seen at construction time."""
        cached = self._interpretations.get(record.record_id)
        if cached is not None:
            return cached
        return self.semantic_function.interpret(record)

    def encode(self, record: Record) -> np.ndarray:
        """The semhash signature ``G(record)`` as a uint8 array.

        Unseen leaf concepts (possible for records outside the
        construction population) are ignored — the signature only spans
        the chosen bit set C.
        """
        signature = np.zeros(self.num_bits, dtype=np.uint8)
        forest = self.semantic_function.forest
        for concept_id in self.interpretation(record):
            for leaf in forest.leaf_set(concept_id):
                index = self._bit_index.get(leaf)
                if index is not None:
                    signature[index] = 1
        return signature

    def signature_matrix(self, records: Iterable[Record]) -> np.ndarray:
        """Stack of signatures, one row per record."""
        rows = [self.encode(record) for record in records]
        if not rows:
            return np.zeros((0, self.num_bits), dtype=np.uint8)
        return np.stack(rows)
