"""Semhash signatures (paper Algorithm 1).

The encoder chooses the concept subset C (one bit per *leaf* concept
reachable from any record's interpretation) and produces binary
signatures ``G(r)`` with ``g_i(r) = 1`` iff leaf concept ``c_i`` is
subsumed by some concept of ζ(r). C satisfies the three conditions of
§4.4 by construction:

* **Disjointness** — leaves of a tree are pairwise unrelated.
* **Completeness** — every leaf under any interpreted concept is in C.
* **Non-emptiness** — bits only exist for leaves some record reaches.

By Prop. 4.3 (exact in this construction — see DESIGN.md) the Jaccard
similarity of two signatures equals the records' semantic similarity.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError, SemanticFunctionError
from repro.records.record import Record
from repro.semantic.interpretation import SemanticFunction


def recommended_sample_size(
    population: int,
    *,
    min_frequency: float = 0.01,
    miss_probability: float = 0.01,
    floor: int = 256,
) -> int:
    """Principled sample size for fitting a streamed semhash encoder.

    A sample-fitted encoder (:meth:`SemhashEncoder.fit`) misses a leaf
    concept — and silently drops it from every later signature — only
    when *no* sampled record reaches it. For a concept reached by at
    least a fraction ``p = min_frequency`` of the population, a uniform
    sample of ``m`` records misses it with probability
    ``(1 - p)^m <= exp(-p * m)``; solving ``exp(-p * m) <= delta`` for
    ``delta = miss_probability`` gives ``m >= ln(1 / delta) / p``. The
    default ``p = delta = 0.01`` yields m = 461: every concept covering
    at least 1% of the stream survives with 99% probability, however
    large the stream is — the required sample size is driven by the
    rarity you care about, not the population. ``floor`` guards tiny
    configurations and the result is capped at the population (a
    sample cannot exceed it).
    """
    if not 0.0 < min_frequency <= 1.0:
        raise ConfigurationError(
            f"min_frequency must be in (0, 1], got {min_frequency}"
        )
    if not 0.0 < miss_probability < 1.0:
        raise ConfigurationError(
            f"miss_probability must be in (0, 1), got {miss_probability}"
        )
    if population <= 0:
        return 0
    needed = math.ceil(math.log(1.0 / miss_probability) / min_frequency)
    return min(population, max(floor, needed))


def semhash_jaccard(sig1: np.ndarray, sig2: np.ndarray) -> float:
    """Jaccard of two binary signatures; all-zero vs anything is 0.

    The all-zero convention matches Proposition 4.2: a record with an
    empty interpretation is semantically similar to nothing.
    """
    if sig1.shape != sig2.shape:
        raise ValueError("signatures must have the same length")
    ones1 = int(sig1.sum())
    ones2 = int(sig2.sum())
    if ones1 == 0 or ones2 == 0:
        return 0.0
    intersection = int(np.minimum(sig1, sig2).sum())
    union = ones1 + ones2 - intersection
    return intersection / union


if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # numpy < 2.0: per-byte lookup table over the packed uint8 arrays.
    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount(packed: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[packed]


def pack_signatures(signatures: np.ndarray) -> np.ndarray:
    """Pack an (n, num_bits) 0/1 matrix into (n, ceil(num_bits / 8)) bytes.

    The packed form is 8× smaller and supports popcount-based Jaccard
    (:func:`semhash_jaccard_packed`) — the representation used by the
    batch similarity/analysis paths.
    """
    return np.packbits(signatures.astype(np.uint8, copy=False), axis=-1)


def unpack_signatures(packed: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_signatures` (trailing pad bits dropped)."""
    return np.unpackbits(packed, axis=-1)[..., :num_bits]


def semhash_jaccard_packed(packed1: np.ndarray, packed2: np.ndarray) -> float:
    """Jaccard of two :func:`pack_signatures`-packed signatures.

    Uses hardware popcounts over the packed bytes; equal to
    :func:`semhash_jaccard` on the unpacked signatures (pad bits are
    zero, so they never contribute).
    """
    if packed1.shape != packed2.shape:
        raise ValueError("signatures must have the same length")
    ones1 = int(_popcount(packed1).sum())
    ones2 = int(_popcount(packed2).sum())
    if ones1 == 0 or ones2 == 0:
        return 0.0
    intersection = int(_popcount(packed1 & packed2).sum())
    union = ones1 + ones2 - intersection
    return intersection / union


def pairwise_jaccard_packed(
    packed1: np.ndarray, packed2: np.ndarray
) -> np.ndarray:
    """Row-wise packed Jaccard for two aligned (m, bytes) stacks.

    Vectorizes the training-pair similarity loops of the analysis path:
    one popcount pass instead of m Python-level comparisons. All-zero
    rows yield 0.0, as in :func:`semhash_jaccard`.
    """
    if packed1.shape != packed2.shape:
        raise ValueError("signature stacks must have the same shape")
    ones1 = _popcount(packed1).sum(axis=-1, dtype=np.int64)
    ones2 = _popcount(packed2).sum(axis=-1, dtype=np.int64)
    intersection = _popcount(packed1 & packed2).sum(axis=-1, dtype=np.int64)
    union = ones1 + ones2 - intersection
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(union > 0, intersection / np.maximum(union, 1), 0.0)
    return np.where((ones1 == 0) | (ones2 == 0), 0.0, similarity)


class SemhashEncoder:
    """Generate semhash signatures for the records of a dataset.

    The encoder is *frozen at construction*: the bit set C is fixed from
    the records (or interpretations) it is built on and never mutates
    afterwards. Records outside the construction population encode
    against the same bits — leaf concepts they reach that are absent
    from C are dropped (their signature simply lacks those bits) — so a
    single encoder fitted on a training slab can encode an unbounded
    stream of unseen records with stable ``num_bits`` (see
    :meth:`fit` and DESIGN.md, "Process-sharded streaming runtime").

    Parameters
    ----------
    semantic_function:
        The semantic function ζ (carries its taxonomy forest).
    records:
        The record population used to select the bit concepts C
        (Algorithm 1 step 1). Bits are sorted by concept id for
        determinism.
    """

    def __init__(
        self, semantic_function: SemanticFunction, records: Iterable[Record]
    ) -> None:
        interpretations: dict[str, frozenset[str]] = {
            record.record_id: semantic_function.interpret(record)
            for record in records
        }
        self._init(semantic_function, interpretations)

    def _init(
        self,
        semantic_function: SemanticFunction,
        interpretations: dict[str, frozenset[str]],
    ) -> None:
        self.semantic_function = semantic_function
        forest = semantic_function.forest
        bit_concepts: set[str] = set()
        for zeta in interpretations.values():
            for concept_id in zeta:
                bit_concepts |= forest.leaf_set(concept_id)
        if not bit_concepts:
            raise SemanticFunctionError(
                "no record produced any concept; cannot build semhash bits"
            )
        self.bits: tuple[str, ...] = tuple(sorted(bit_concepts))
        self._bit_index = {c: i for i, c in enumerate(self.bits)}
        self._interpretations = interpretations
        # concept id -> sorted array of bit indices its leaf set covers.
        # Memoized so the leaf expansion of each concept is resolved
        # against the bit set once per corpus, not once per record.
        self._concept_bits: dict[str, np.ndarray] = {}

    @classmethod
    def fit(
        cls, semantic_function: SemanticFunction, sample: Iterable[Record]
    ) -> "SemhashEncoder":
        """Freeze an encoder from a training sample.

        The returned encoder's bit set is learned from ``sample`` only;
        it then encodes arbitrary unseen records without mutating state,
        which is what lets :meth:`repro.core.salsh_blocker.SALSHBlocker.
        block_stream` process slabs the encoder has never seen. A sample
        that misses rare concepts yields a smaller C — signatures stay
        valid (Prop. 4.2/4.3 hold over the chosen bits) but blocking
        recall can dip for records whose only shared concepts fall
        outside C; the streamed SA-LSH tests bound that dip.
        """
        return cls(semantic_function, sample)

    @classmethod
    def fit_sampled(
        cls,
        semantic_function: SemanticFunction,
        records: Iterable[Record],
        *,
        seed: int = 0,
        min_frequency: float = 0.01,
        miss_probability: float = 0.01,
        floor: int = 256,
    ) -> "SemhashEncoder":
        """:meth:`fit` on a deterministic sample of principled size.

        Draws :func:`recommended_sample_size` records uniformly (seeded,
        so repeated fits agree) and freezes the encoder on them — the
        standard way to bootstrap the streamed SA-LSH path when the
        corpus is too large to interpret up front. See
        :func:`recommended_sample_size` for the size rule and its
        guarantee.
        """
        population = records if isinstance(records, list) else list(records)
        size = recommended_sample_size(
            len(population),
            min_frequency=min_frequency,
            miss_probability=miss_probability,
            floor=floor,
        )
        if size >= len(population):
            sample = population
        else:
            from repro.utils.rand import rng_from_seed

            rng = rng_from_seed(seed, "semhash-fit-sample", size)
            sample = rng.sample(population, size)
        return cls(semantic_function, sample)

    @classmethod
    def from_interpretations(
        cls,
        semantic_function: SemanticFunction,
        interpretations: dict[str, frozenset[str]],
    ) -> "SemhashEncoder":
        """Build an encoder from precomputed ζ values.

        The process-sharded runtime interprets record slabs in worker
        processes and ships the ζ sets back; this constructor derives
        the same bit set (a union is order-independent) without
        re-interpreting anything in the parent.
        """
        self = cls.__new__(cls)
        self._init(semantic_function, dict(interpretations))
        return self

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    def interpretation(self, record: Record) -> frozenset[str]:
        """ζ(record), cached for records seen at construction time."""
        cached = self._interpretations.get(record.record_id)
        if cached is not None:
            return cached
        return self.semantic_function.interpret(record)

    def _bits_for(self, concept_id: str) -> np.ndarray:
        """Bit indices covered by one concept's leaf set (memoized).

        Unseen leaf concepts (possible for records outside the
        construction population) are dropped — signatures only span the
        chosen bit set C.
        """
        cached = self._concept_bits.get(concept_id)
        if cached is None:
            forest = self.semantic_function.forest
            indices = [
                self._bit_index[leaf]
                for leaf in forest.leaf_set(concept_id)
                if leaf in self._bit_index
            ]
            cached = np.array(sorted(indices), dtype=np.int64)
            self._concept_bits[concept_id] = cached
        return cached

    def encode(self, record: Record) -> np.ndarray:
        """The semhash signature ``G(record)`` as a uint8 array."""
        signature = np.zeros(self.num_bits, dtype=np.uint8)
        for concept_id in self.interpretation(record):
            signature[self._bits_for(concept_id)] = 1
        return signature

    def signature_matrix(self, records: Iterable[Record]) -> np.ndarray:
        """Stack of signatures, one row per record — the batch encoder.

        Gathers every (record, concept) pair's precomputed bit-index
        array and sets all bits with a single scatter, instead of
        per-record per-leaf dictionary lookups.
        """
        return self.matrix_from_interpretations(
            self.interpretation(record) for record in records
        )

    def matrix_from_interpretations(
        self, zetas: Iterable[frozenset[str]]
    ) -> np.ndarray:
        """Signature stack from precomputed ζ values, one row per set.

        The scatter core of :meth:`signature_matrix`, exposed so the
        process-sharded runtime can encode worker-interpreted slabs
        without Record objects.
        """
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        num_rows = 0
        for row, zeta in enumerate(zetas):
            num_rows += 1
            for concept_id in zeta:
                bits = self._bits_for(concept_id)
                if bits.size:
                    col_parts.append(bits)
                    row_parts.append(np.full(bits.size, row, dtype=np.int64))
        matrix = np.zeros((num_rows, self.num_bits), dtype=np.uint8)
        if col_parts:
            matrix[np.concatenate(row_parts), np.concatenate(col_parts)] = 1
        return matrix

    def packed_signature_matrix(self, records: Iterable[Record]) -> np.ndarray:
        """:meth:`signature_matrix` packed with :func:`pack_signatures`."""
        return pack_signatures(self.signature_matrix(records))
