"""Semantic functions ζ: record -> set of concepts (Definition 4.2).

A semantic function interprets each record as a set of concepts in a
taxonomy forest, subject to:

* **Specificity** — no concept of the interpretation subsumes another
  (only the most specific concepts remain).
* **Isolation** — the interpretation of a record depends only on that
  record (enforced by the interface: ``interpret`` receives a single
  record).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

from repro.errors import SemanticFunctionError
from repro.records.record import Record
from repro.taxonomy.forest import TaxonomyForest
from repro.taxonomy.tree import TaxonomyTree


def _as_forest(taxonomy: TaxonomyTree | TaxonomyForest) -> TaxonomyForest:
    if isinstance(taxonomy, TaxonomyForest):
        return taxonomy
    return TaxonomyForest.of(taxonomy)


def enforce_specificity(
    taxonomy: TaxonomyTree | TaxonomyForest, concepts: Iterable[str]
) -> frozenset[str]:
    """Drop every concept that (properly) subsumes another in the set.

    This makes any concept set satisfy Definition 4.2(a): keep a concept
    only if no distinct, more specific concept of the set is below it.

    >>> from repro.taxonomy.builders import bibliographic_tree
    >>> sorted(enforce_specificity(bibliographic_tree(), {"c1", "c3"}))
    ['c3']
    """
    forest = _as_forest(taxonomy)
    concept_set = set(concepts)
    for concept_id in concept_set:
        if not forest.has_concept(concept_id):
            raise SemanticFunctionError(f"unknown concept {concept_id!r}")
    kept = {
        c
        for c in concept_set
        if not any(
            c != other and forest.subsumes(c, other) for other in concept_set
        )
    }
    return frozenset(kept)


class SemanticFunction(ABC):
    """Base class of semantic functions.

    Subclasses implement :meth:`_interpret_raw`; the public
    :meth:`interpret` applies specificity enforcement and validates the
    result against the taxonomy.
    """

    def __init__(self, taxonomy: TaxonomyTree | TaxonomyForest) -> None:
        self.forest = _as_forest(taxonomy)

    @abstractmethod
    def _interpret_raw(self, record: Record) -> Iterable[str]:
        """Return candidate concept ids for one record."""

    def interpret(self, record: Record) -> frozenset[str]:
        """The interpretation ζ(record): a specific, validated concept set."""
        return enforce_specificity(self.forest, self._interpret_raw(record))


class CallableSemanticFunction(SemanticFunction):
    """Wrap an arbitrary callable ``record -> iterable of concept ids``.

    Useful for quick experiments and tests; the callable's output is
    still specificity-enforced and validated.
    """

    def __init__(
        self,
        taxonomy: TaxonomyTree | TaxonomyForest,
        fn: Callable[[Record], Iterable[str]],
    ) -> None:
        super().__init__(taxonomy)
        self._fn = fn

    def _interpret_raw(self, record: Record) -> Iterable[str]:
        return self._fn(record)
