"""w-way AND/OR semantic hash functions (paper §5.2).

A single semantic hash function ``h_g`` fires for a pair of records when
both have bit ``g`` set in their semhash signatures. A w-way function
combines ``w`` randomly chosen such functions with AND or OR. SA-LSH
augments every minhash hash table with one w-way function; the
per-table bucket construction stays O(n):

* **AND** — a record enters the table only when *all* w chosen bits are
  set, under a single gate suffix; two records collide iff both pass,
  which is exactly ``h_g1 ∧ ... ∧ h_gw``.
* **OR** — a record enters once per set bit among the w chosen; two
  records collide iff they share a set chosen bit, which is exactly
  ``h_g1 ∨ ... ∨ h_gw``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.lsh.collision import wway_collision_probability
from repro.utils.rand import rng_from_seed

_AND_SUFFIX = "all"


class WWaySemanticHashFamily:
    """Per-table w-way semantic gates over semhash signatures.

    Parameters
    ----------
    num_bits:
        Length of the semhash signatures.
    w:
        Number of semhash functions per table; ``w='all'`` uses every
        bit (the "lowest semantic threshold" configuration of Fig. 9 —
        an OR over all bits requires at least one shared concept).
    mode:
        ``"and"`` or ``"or"``.
    num_tables:
        Number of LSH hash tables (l); each draws its own w bits.
    seed:
        Seed for the per-table bit choices.
    """

    def __init__(
        self,
        num_bits: int,
        w: int | str,
        mode: str,
        num_tables: int,
        seed: int = 0,
    ) -> None:
        if mode not in ("and", "or"):
            raise ConfigurationError(f"mode must be 'and' or 'or', got {mode!r}")
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        if num_tables < 1:
            raise ConfigurationError(f"num_tables must be >= 1, got {num_tables}")
        if w == "all":
            w = num_bits
        if not isinstance(w, int) or not 1 <= w <= num_bits:
            raise ConfigurationError(
                f"w must be an int in [1, {num_bits}] or 'all', got {w!r}"
            )
        self.num_bits = num_bits
        self.w = w
        self.mode = mode
        self.num_tables = num_tables
        rng = rng_from_seed(seed, "wway", mode, w, num_tables)
        self._chosen: list[tuple[int, ...]] = [
            tuple(sorted(rng.sample(range(num_bits), w))) for _ in range(num_tables)
        ]

    def chosen_bits(self, table: int) -> tuple[int, ...]:
        """The w bit indices drawn for one hash table."""
        return self._chosen[table]

    def gate_suffixes(self, table: int, signature: np.ndarray) -> Sequence[Hashable]:
        """Bucket-key suffixes for one record in one table.

        Empty result means the record is excluded from the table.
        """
        chosen = self._chosen[table]
        if self.mode == "and":
            if all(signature[i] for i in chosen):
                return (_AND_SUFFIX,)
            return ()
        return tuple(i for i in chosen if signature[i])

    def gate_entries(
        self, table: int, signatures: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | str]:
        """Batch form of :meth:`gate_suffixes` for a whole corpus.

        ``signatures`` is the ``(n, num_bits)`` semhash matrix (row
        order = record order). Returns ``(entry_rows, suffixes)`` in the
        shape :meth:`repro.lsh.index.BandedLSHIndex.add_many` expects:

        * **AND** — ``entry_rows`` are the records with all chosen bits
          set; ``suffixes`` is the shared ``"all"`` suffix.
        * **OR** — one entry per (record, set chosen bit), in the same
          (record-major, ascending bit) order the per-record gate
          produces; ``suffixes`` are the global bit indices.
        """
        chosen = np.asarray(self._chosen[table], dtype=np.int64)
        sub = signatures[:, chosen] != 0
        if self.mode == "and":
            return np.flatnonzero(sub.all(axis=1)), _AND_SUFFIX
        entry_rows, chosen_positions = np.nonzero(sub)
        return entry_rows.astype(np.int64), chosen[chosen_positions]

    def pair_collides(
        self, table: int, sig1: np.ndarray, sig2: np.ndarray
    ) -> bool:
        """Reference pairwise predicate (used to validate the gates).

        AND: every chosen bit set in both; OR: some chosen bit set in
        both — the h_g definitions of §5.2.
        """
        chosen = self._chosen[table]
        if self.mode == "and":
            return all(sig1[i] and sig2[i] for i in chosen)
        return any(sig1[i] and sig2[i] for i in chosen)

    def collision_probability(self, s_prime: float) -> float:
        """Analytic firing probability of one w-way function (Fig. 5)."""
        return wway_collision_probability(s_prime, self.w, self.mode)
