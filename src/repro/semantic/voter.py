"""Semantic function for voter records over the race × gender taxonomy.

Mirrors the paper's NC Voter setup (§6.2): the taxonomy is built on the
metadata of *race* and *gender*, both of which contain uncertain values
('u' or missing). Uncertainty widens the interpretation:

* race + gender known  -> the single race × gender leaf
* race known only      -> the race concept (both gender leaves)
* gender known only    -> every race's leaf of that gender
* nothing known        -> the root
"""

from __future__ import annotations

from typing import Iterable

from repro.records.record import Record
from repro.semantic.interpretation import SemanticFunction
from repro.taxonomy.builders import (
    VOTER_GENDERS,
    VOTER_RACES,
    VOTER_ROOT,
    voter_leaf_concept,
    voter_race_concept,
    voter_tree,
)
from repro.taxonomy.forest import TaxonomyForest
from repro.taxonomy.tree import TaxonomyTree


class VoterSemanticFunction(SemanticFunction):
    """Interpret voter records by their race and gender attributes."""

    def __init__(
        self,
        taxonomy: TaxonomyTree | TaxonomyForest | None = None,
        *,
        race_attribute: str = "race",
        gender_attribute: str = "gender",
    ) -> None:
        super().__init__(taxonomy if taxonomy is not None else voter_tree())
        self.race_attribute = race_attribute
        self.gender_attribute = gender_attribute

    def _known_race(self, record: Record) -> str | None:
        value = record.get(self.race_attribute).strip().lower()
        return value if value in VOTER_RACES else None

    def _known_gender(self, record: Record) -> str | None:
        value = record.get(self.gender_attribute).strip().lower()
        return value if value in VOTER_GENDERS else None

    def _interpret_raw(self, record: Record) -> Iterable[str]:
        race = self._known_race(record)
        gender = self._known_gender(record)
        if race is not None and gender is not None:
            return (voter_leaf_concept(race, gender),)
        if race is not None:
            return (voter_race_concept(race),)
        if gender is not None:
            return tuple(voter_leaf_concept(r, gender) for r in VOTER_RACES)
        return (VOTER_ROOT,)
