"""Semantic similarity of concepts and records (paper §4.3).

* Eq. 4: ``simS(c1, c2) = |leaf(c1) ∩ leaf(c2)| / |leaf(c1) ∪ leaf(c2)|``
* Eq. 5: record similarity as the weighted sum over related concept
  pairs of the two interpretations.

The library also provides :func:`leaf_expansion_similarity`, the Jaccard
of the interpretations' leaf expansions; for interpretations satisfying
specificity it is *provably equal* to Eq. 5 (see DESIGN.md) and is the
O(|leaves|) fast path that semhash signatures realise bit-wise.
"""

from __future__ import annotations

from typing import Iterable

from repro.taxonomy.forest import TaxonomyForest
from repro.taxonomy.tree import TaxonomyTree


def _as_forest(taxonomy: TaxonomyTree | TaxonomyForest) -> TaxonomyForest:
    if isinstance(taxonomy, TaxonomyForest):
        return taxonomy
    return TaxonomyForest.of(taxonomy)


def concept_similarity(
    taxonomy: TaxonomyTree | TaxonomyForest, c1: str, c2: str
) -> float:
    """Eq. 4 — Jaccard of the two concepts' leaf sets.

    Sibling concepts (and any two concepts with disjoint subtrees) have
    similarity 0, satisfying Eq. 3; concepts of different trees also
    have similarity 0.

    >>> from repro.taxonomy.builders import bibliographic_tree
    >>> tree = bibliographic_tree()
    >>> concept_similarity(tree, "c0", "c1")  # Example 4.4
    0.8333333333333334
    """
    forest = _as_forest(taxonomy)
    leaves1, leaves2 = forest.leaf_set(c1), forest.leaf_set(c2)
    union = len(leaves1 | leaves2)
    if union == 0:
        return 0.0
    return len(leaves1 & leaves2) / union


def related_pairs(
    taxonomy: TaxonomyTree | TaxonomyForest,
    zeta1: Iterable[str],
    zeta2: Iterable[str],
) -> list[tuple[str, str]]:
    """The paper's P(r1, r2): concept pairs related by subsumption.

    Subsumption is reflexive, so a concept shared by both
    interpretations pairs with itself.
    """
    forest = _as_forest(taxonomy)
    return [
        (c1, c2)
        for c1 in zeta1
        for c2 in zeta2
        if forest.related(c1, c2)
    ]


def record_semantic_similarity(
    taxonomy: TaxonomyTree | TaxonomyForest,
    zeta1: Iterable[str],
    zeta2: Iterable[str],
) -> float:
    """Eq. 5 — semantic similarity of two interpreted records.

    ``simS(r1, r2) = Σ_{(c1,c2) ∈ P} (|α(c1,c2)| / |β|) · simS(c1, c2)``
    with α = leaf(c1) ∪ leaf(c2) and β the union of α over *all*
    interpretation pairs.

    Empty interpretations have similarity 0 with everything (P = ∅,
    Proposition 4.2).

    >>> from repro.taxonomy.builders import bibliographic_tree
    >>> tree = bibliographic_tree()
    >>> record_semantic_similarity(tree, {"c4"}, {"c3", "c4"})  # Ex. 4.5
    0.5
    """
    forest = _as_forest(taxonomy)
    zeta1 = frozenset(zeta1)
    zeta2 = frozenset(zeta2)
    if not zeta1 or not zeta2:
        return 0.0

    beta: set[str] = set()
    for c1 in zeta1:
        for c2 in zeta2:
            beta |= forest.leaf_set(c1)
            beta |= forest.leaf_set(c2)
    if not beta:
        return 0.0

    total = 0.0
    for c1, c2 in related_pairs(forest, zeta1, zeta2):
        alpha = forest.leaf_set(c1) | forest.leaf_set(c2)
        weight = len(alpha) / len(beta)
        total += weight * concept_similarity(forest, c1, c2)
    return total


def leaf_expansion_similarity(
    taxonomy: TaxonomyTree | TaxonomyForest,
    zeta1: Iterable[str],
    zeta2: Iterable[str],
) -> float:
    """Jaccard of the interpretations' leaf expansions.

    Equal to Eq. 5 for specificity-compliant interpretations; this is
    what semhash signatures compute bit-wise (Proposition 4.3 holds with
    equality).
    """
    forest = _as_forest(taxonomy)
    leaves1 = forest.leaf_expansion(zeta1)
    leaves2 = forest.leaf_expansion(zeta2)
    if not leaves1 or not leaves2:
        return 0.0
    return len(leaves1 & leaves2) / len(leaves1 | leaves2)
