"""Semantic-feature quality analysis (paper §5.3 step iii, §6.2).

The choice of the w-way gate depends on the quality of the semantic
features: "if the semantic features are noisy, uncertain (i.e., semantic
features of some records are missing) or heterogeneous (different
records of the same entities may have different semantic features), a
w-way OR semantic function is preferred; otherwise, a w-way AND semantic
function may be chosen."

This module quantifies those three defects on a labelled training
sample and recommends (µ, w):

* **noise** — fraction of true-match pairs whose semantic similarity is
  exactly 0 (the gate would destroy them: Cora's venue-pattern errors);
* **uncertainty** — fraction of records whose interpretation is wider
  than one concept (missing attributes widen ζ: NC Voter's 'u' values);
* **heterogeneity** — fraction of true-match pairs with 0 < simS < 1
  (same entity, different but related features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import SemanticFunctionError
from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair
from repro.semantic.interpretation import SemanticFunction
from repro.semantic.semhash import SemhashEncoder, pairwise_jaccard_packed
from repro.semantic.similarity import leaf_expansion_similarity


@dataclass(frozen=True)
class SemanticFeatureQuality:
    """Defect rates of a semantic function on one dataset."""

    noise_rate: float
    uncertainty_rate: float
    heterogeneity_rate: float
    num_pairs: int
    num_records: int

    @property
    def is_clean(self) -> bool:
        """True when all three defect rates are small (AND-safe)."""
        return (
            self.noise_rate < 0.02
            and self.uncertainty_rate < 0.05
            and self.heterogeneity_rate < 0.1
        )


def analyse_semantic_features(
    dataset: Dataset,
    semantic_function: SemanticFunction,
    *,
    sample_pairs: Iterable[Pair] | None = None,
    max_pairs: int = 5000,
) -> SemanticFeatureQuality:
    """Measure noise / uncertainty / heterogeneity on labelled data.

    ``sample_pairs`` defaults to (a prefix of) the dataset's true
    matches; pass a custom training subset to mirror §5.3's small
    training set.
    """
    forest = semantic_function.forest
    # The encoder's semhash signatures realise leaf-expansion Jaccard
    # bit-wise over this very population, so the pair loop collapses to
    # packed popcounts; a population with no concepts at all falls back
    # to the direct per-pair computation.
    try:
        encoder: SemhashEncoder | None = SemhashEncoder(semantic_function, dataset)
    except SemanticFunctionError:
        encoder = None
    if encoder is not None:
        interpretations = {
            record.record_id: encoder.interpretation(record) for record in dataset
        }
    else:
        interpretations = {
            record.record_id: semantic_function.interpret(record)
            for record in dataset
        }

    uncertain = sum(
        1
        for zeta in interpretations.values()
        if len(forest.leaf_expansion(zeta)) > 1
    )

    pairs = list(
        sample_pairs
        if sample_pairs is not None
        else sorted(dataset.true_matches)[:max_pairs]
    )
    noisy = 0
    heterogeneous = 0
    if encoder is not None and pairs:
        packed = encoder.packed_signature_matrix(dataset)
        row = {record_id: i for i, record_id in enumerate(dataset.record_ids)}
        left = np.fromiter((row[id1] for id1, _ in pairs), np.int64, len(pairs))
        right = np.fromiter((row[id2] for _, id2 in pairs), np.int64, len(pairs))
        similarities = pairwise_jaccard_packed(packed[left], packed[right])
        noisy = int(np.count_nonzero(similarities == 0.0))
        heterogeneous = int(
            np.count_nonzero((similarities > 0.0) & (similarities < 1.0))
        )
    else:
        for id1, id2 in pairs:
            similarity = leaf_expansion_similarity(
                forest, interpretations[id1], interpretations[id2]
            )
            if similarity == 0.0:
                noisy += 1
            elif similarity < 1.0:
                heterogeneous += 1

    num_pairs = max(len(pairs), 1)
    return SemanticFeatureQuality(
        noise_rate=noisy / num_pairs,
        uncertainty_rate=uncertain / max(len(interpretations), 1),
        heterogeneity_rate=heterogeneous / num_pairs,
        num_pairs=len(pairs),
        num_records=len(interpretations),
    )


def recommend_gate(
    quality: SemanticFeatureQuality, num_bits: int
) -> tuple[str, int | str]:
    """(µ, w) recommendation from feature quality (§5.3 step iii).

    Clean features allow a strict AND gate with small w; any defect
    switches to OR, with w growing alongside the defect rates — the
    experimentally stable region of Fig. 7/8 is "µ = ∨ and w greater
    than 50% of the total number of semantic signatures".
    """
    if quality.is_clean:
        return ("and", min(2, num_bits))
    defect = max(
        quality.noise_rate, quality.uncertainty_rate, quality.heterogeneity_rate
    )
    if defect > 0.25:
        return ("or", "all")
    w = max(1, int(round(num_bits * 0.5)) + 1)
    return ("or", min(w, num_bits))
