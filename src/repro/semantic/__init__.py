"""Semantic similarity, semantic functions, semhash and w-way hashing.

This package implements the paper's Section 4 (semantic similarity) and
the semantic half of Section 5 (semhash signatures, w-way AND/OR
semantic hash functions).
"""

from repro.semantic.interpretation import (
    CallableSemanticFunction,
    SemanticFunction,
    enforce_specificity,
)
from repro.semantic.patterns import (
    MissingValuePattern,
    PatternSemanticFunction,
    cora_patterns,
    cora_patterns_for,
)
from repro.semantic.voter import VoterSemanticFunction
from repro.semantic.similarity import (
    concept_similarity,
    leaf_expansion_similarity,
    record_semantic_similarity,
    related_pairs,
)
from repro.semantic.semhash import (
    SemhashEncoder,
    recommended_sample_size,
    pack_signatures,
    pairwise_jaccard_packed,
    semhash_jaccard,
    semhash_jaccard_packed,
    unpack_signatures,
)
from repro.semantic.hashing import WWaySemanticHashFamily
from repro.semantic.analysis import (
    SemanticFeatureQuality,
    analyse_semantic_features,
    recommend_gate,
)

__all__ = [
    "SemanticFunction",
    "CallableSemanticFunction",
    "enforce_specificity",
    "MissingValuePattern",
    "PatternSemanticFunction",
    "cora_patterns",
    "cora_patterns_for",
    "VoterSemanticFunction",
    "concept_similarity",
    "record_semantic_similarity",
    "leaf_expansion_similarity",
    "related_pairs",
    "SemhashEncoder",
    "recommended_sample_size",
    "semhash_jaccard",
    "semhash_jaccard_packed",
    "pack_signatures",
    "unpack_signatures",
    "pairwise_jaccard_packed",
    "WWaySemanticHashFamily",
    "SemanticFeatureQuality",
    "analyse_semantic_features",
    "recommend_gate",
]
