"""Missing-value-pattern semantic functions (paper Table 1, §6.2).

The Cora experiments interpret each publication record by which of the
attributes *journal*, *booktitle* and *institution* are present: e.g. a
record with a journal and a booktitle but no institution is a journal
article or conference paper (concepts C3, C4 of ``tbib``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SemanticFunctionError
from repro.records.record import Record
from repro.semantic.interpretation import SemanticFunction
from repro.taxonomy.builders import (
    BIB_JOURNAL,
    BIB_NON_PEER_REVIEWED,
    BIB_PROCEEDINGS,
    BIB_PUBLICATION,
    BIB_TECH_REPORT,
    BIB_THESIS,
)
from repro.taxonomy.forest import TaxonomyForest
from repro.taxonomy.tree import TaxonomyTree


@dataclass(frozen=True)
class MissingValuePattern:
    """One row of a Table 1-style pattern table.

    ``present`` lists attributes that must be NOT NULL, ``absent`` those
    that must be NULL; attributes mentioned in neither are unconstrained.
    ``concepts`` is the interpretation assigned on match.
    """

    present: tuple[str, ...]
    absent: tuple[str, ...]
    concepts: tuple[str, ...]

    def matches(self, record: Record) -> bool:
        return all(record.has_value(a) for a in self.present) and not any(
            record.has_value(a) for a in self.absent
        )


class PatternSemanticFunction(SemanticFunction):
    """Interpret records by the first matching missing-value pattern.

    Parameters
    ----------
    taxonomy:
        Tree or forest the concepts belong to.
    patterns:
        Ordered pattern list; the first match wins.
    fallback:
        Concepts assigned when no pattern matches (defaults to none,
        which raises — Table 1's pattern set is complete, so a miss
        indicates a configuration error).
    """

    def __init__(
        self,
        taxonomy: TaxonomyTree | TaxonomyForest,
        patterns: Sequence[MissingValuePattern],
        fallback: tuple[str, ...] | None = None,
    ) -> None:
        super().__init__(taxonomy)
        if not patterns:
            raise SemanticFunctionError("need at least one pattern")
        self.patterns = tuple(patterns)
        self.fallback = fallback
        for pattern in self.patterns:
            for concept_id in pattern.concepts:
                if not self.forest.has_concept(concept_id):
                    raise SemanticFunctionError(
                        f"pattern references unknown concept {concept_id!r}"
                    )

    def matching_pattern(self, record: Record) -> MissingValuePattern | None:
        """The first pattern matching ``record`` (diagnostics, Table 1)."""
        for pattern in self.patterns:
            if pattern.matches(record):
                return pattern
        return None

    def _interpret_raw(self, record: Record) -> Iterable[str]:
        pattern = self.matching_pattern(record)
        if pattern is not None:
            return pattern.concepts
        if self.fallback is not None:
            return self.fallback
        raise SemanticFunctionError(
            f"no pattern matches record {record.record_id!r} and no fallback set"
        )


#: The three Cora attributes driving Table 1.
CORA_PATTERN_ATTRIBUTES = ("journal", "booktitle", "institution")


def cora_patterns() -> list[MissingValuePattern]:
    """The eight patterns of the paper's Table 1.

    Pattern rows (journal, booktitle, institution -> concepts):

    1. (Y, Y, Y) -> C3, C4, C6       5. (N, Y, Y) -> C4, C7, C8
    2. (Y, Y, N) -> C3, C4           6. (N, Y, N) -> C4
    3. (Y, N, Y) -> C3, C6           7. (N, N, Y) -> C7, C8
    4. (Y, N, N) -> C3               8. (N, N, N) -> C1
    """
    journal, booktitle, institution = CORA_PATTERN_ATTRIBUTES
    rows: list[tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]] = [
        ((journal, booktitle, institution), (), (BIB_JOURNAL, BIB_PROCEEDINGS, BIB_NON_PEER_REVIEWED)),
        ((journal, booktitle), (institution,), (BIB_JOURNAL, BIB_PROCEEDINGS)),
        ((journal, institution), (booktitle,), (BIB_JOURNAL, BIB_NON_PEER_REVIEWED)),
        ((journal,), (booktitle, institution), (BIB_JOURNAL,)),
        ((booktitle, institution), (journal,), (BIB_PROCEEDINGS, BIB_TECH_REPORT, BIB_THESIS)),
        ((booktitle,), (journal, institution), (BIB_PROCEEDINGS,)),
        ((institution,), (journal, booktitle), (BIB_TECH_REPORT, BIB_THESIS)),
        ((), (journal, booktitle, institution), (BIB_PUBLICATION,)),
    ]
    return [
        MissingValuePattern(present=p, absent=a, concepts=c) for p, a, c in rows
    ]


def cora_patterns_for(tree: TaxonomyTree) -> list[MissingValuePattern]:
    """Table 1 patterns adapted to a taxonomy variant (Fig. 10, Table 2).

    Concepts missing from ``tree`` are remapped to their nearest
    surviving ancestor in the reference ``tbib`` — the paper's rule that
    "records originally related to missing concepts have been changed
    to relate with their parent concepts" (§6.3.3). Specificity is
    re-established at interpretation time, so a remap that lands on an
    ancestor of a sibling concept simply collapses into it.
    """
    from repro.taxonomy.builders import bibliographic_tree

    reference = bibliographic_tree()

    def remap(concept_id: str) -> str:
        if tree.has_concept(concept_id):
            return concept_id
        for ancestor in reference.ancestors(concept_id):
            if tree.has_concept(ancestor):
                return ancestor
        raise SemanticFunctionError(
            f"no ancestor of {concept_id!r} exists in tree {tree.name!r}"
        )

    return [
        MissingValuePattern(
            present=pattern.present,
            absent=pattern.absent,
            concepts=tuple(dict.fromkeys(remap(c) for c in pattern.concepts)),
        )
        for pattern in cora_patterns()
    ]
