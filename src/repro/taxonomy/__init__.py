"""Taxonomy trees and forests (paper Section 4.1)."""

from repro.taxonomy.concept import Concept
from repro.taxonomy.tree import TaxonomyTree
from repro.taxonomy.forest import TaxonomyForest

__all__ = ["Concept", "TaxonomyTree", "TaxonomyForest"]
