"""A forest of taxonomy trees (the paper's set ``T``).

Concepts of different trees are never related: subsumption does not hold
across trees, so their semantic similarity is 0 (consistent with
Proposition 4.2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import TaxonomyError
from repro.taxonomy.tree import TaxonomyTree


class TaxonomyForest:
    """Several taxonomy trees with globally unique concept ids."""

    def __init__(self, trees: Sequence[TaxonomyTree]) -> None:
        if not trees:
            raise TaxonomyError("a forest needs at least one tree")
        self.trees = tuple(trees)
        self._tree_of: dict[str, TaxonomyTree] = {}
        for tree in self.trees:
            for concept_id in tree.concept_ids:
                if concept_id in self._tree_of:
                    raise TaxonomyError(
                        f"concept {concept_id!r} appears in more than one tree"
                    )
                self._tree_of[concept_id] = tree

    @classmethod
    def of(cls, *trees: TaxonomyTree) -> "TaxonomyForest":
        return cls(trees)

    def tree_of(self, concept_id: str) -> TaxonomyTree:
        try:
            return self._tree_of[concept_id]
        except KeyError:
            raise TaxonomyError(f"unknown concept {concept_id!r}") from None

    def has_concept(self, concept_id: str) -> bool:
        return concept_id in self._tree_of

    def leaf_set(self, concept_id: str) -> frozenset[str]:
        return self.tree_of(concept_id).leaf_set(concept_id)

    def subsumes(self, ancestor_id: str, descendant_id: str) -> bool:
        """Subsumption; False when the concepts live in different trees."""
        tree = self.tree_of(ancestor_id)
        if self.tree_of(descendant_id) is not tree:
            return False
        return tree.subsumes(ancestor_id, descendant_id)

    def related(self, c1: str, c2: str) -> bool:
        return self.subsumes(c1, c2) or self.subsumes(c2, c1)

    @property
    def leaves(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for tree in self.trees:
            result |= tree.leaves
        return result

    def leaf_expansion(self, concepts: Iterable[str]) -> frozenset[str]:
        """Union of leaf sets of several concepts (the set L of DESIGN.md)."""
        result: set[str] = set()
        for concept_id in concepts:
            result |= self.leaf_set(concept_id)
        return frozenset(result)

    def __len__(self) -> int:
        return len(self._tree_of)
