"""The :class:`Concept` value type (paper Definition 4.1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Concept:
    """A semantic concept: a node of a taxonomy tree.

    ``concept_id`` is the identifier used throughout the library (the
    paper's c0, c1, ...); ``label`` is the human-readable name shown in
    reports (e.g. "Technical Report").
    """

    concept_id: str
    label: str = ""

    def __post_init__(self) -> None:
        if not self.concept_id:
            raise ValueError("concept_id must be non-empty")
        if not self.label:
            object.__setattr__(self, "label", self.concept_id)
