"""Taxonomy trees: concepts plus a subsumption partial order.

A taxonomy tree (paper Definition 4.1) is a rooted tree whose nodes are
concepts and whose edges denote subsumption: ``c1 ⪯ c2`` ("c1 is
subsumed by c2") holds when c2 lies on the path from c1 to the root.
Subsumption is reflexive: ``c ⪯ c``.

The similarity metric of Eq. 4 only needs each concept's *leaf set* —
the leaves of the subtree rooted at the concept — which the tree caches.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import TaxonomyError
from repro.taxonomy.concept import Concept

# A nested spec is (concept_id, label, [child_specs...]).
TreeSpec = tuple[str, str, Sequence["TreeSpec"]]


class TaxonomyTree:
    """A rooted taxonomy of concepts.

    Build either incrementally::

        tree = TaxonomyTree("bib")
        tree.add_root("c0", "Research Output")
        tree.add_child("c0", "c1", "Publication")

    or from a nested spec with :meth:`from_spec`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._concepts: dict[str, Concept] = {}
        self._parent: dict[str, str | None] = {}
        self._children: dict[str, list[str]] = {}
        self._root: str | None = None
        self._leaf_cache: dict[str, frozenset[str]] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_spec(cls, name: str, spec: TreeSpec) -> "TaxonomyTree":
        """Build a tree from a nested (id, label, children) spec."""
        tree = cls(name)

        def _add(node: TreeSpec, parent: str | None) -> None:
            concept_id, label, children = node
            if parent is None:
                tree.add_root(concept_id, label)
            else:
                tree.add_child(parent, concept_id, label)
            for child in children:
                _add(child, concept_id)

        _add(spec, None)
        return tree

    def add_root(self, concept_id: str, label: str = "") -> Concept:
        """Set the root concept; may only be called once."""
        if self._root is not None:
            raise TaxonomyError(f"tree {self.name!r} already has a root")
        concept = Concept(concept_id, label)
        self._concepts[concept_id] = concept
        self._parent[concept_id] = None
        self._children[concept_id] = []
        self._root = concept_id
        self._leaf_cache.clear()
        return concept

    def add_child(self, parent_id: str, concept_id: str, label: str = "") -> Concept:
        """Attach a new concept under ``parent_id``."""
        if parent_id not in self._concepts:
            raise TaxonomyError(f"unknown parent concept {parent_id!r}")
        if concept_id in self._concepts:
            raise TaxonomyError(f"duplicate concept {concept_id!r}")
        concept = Concept(concept_id, label)
        self._concepts[concept_id] = concept
        self._parent[concept_id] = parent_id
        self._children[concept_id] = []
        self._children[parent_id].append(concept_id)
        self._leaf_cache.clear()
        return concept

    def without_node(self, concept_id: str, name: str | None = None) -> "TaxonomyTree":
        """A new tree with ``concept_id`` removed.

        Children of the removed node are promoted to its parent (the
        Fig. 10 taxonomy variants: removing an internal concept collapses
        a level; removing a leaf simply drops it). The root cannot be
        removed.
        """
        if concept_id not in self._concepts:
            raise TaxonomyError(f"unknown concept {concept_id!r}")
        if concept_id == self._root:
            raise TaxonomyError("cannot remove the root concept")

        new_tree = TaxonomyTree(name or f"{self.name}-without-{concept_id}")

        def _copy(node_id: str, parent_id: str | None) -> None:
            children = list(self._children[node_id])
            if node_id == concept_id:
                # Promote children to this node's parent; drop the node.
                for child in children:
                    _copy(child, parent_id)
                return
            concept = self._concepts[node_id]
            if parent_id is None:
                new_tree.add_root(node_id, concept.label)
            else:
                new_tree.add_child(parent_id, node_id, concept.label)
            for child in children:
                _copy(child, node_id)

        assert self._root is not None
        _copy(self._root, None)
        return new_tree

    # -- queries ---------------------------------------------------------------

    @property
    def root(self) -> str:
        if self._root is None:
            raise TaxonomyError(f"tree {self.name!r} has no root")
        return self._root

    @property
    def concept_ids(self) -> list[str]:
        return list(self._concepts)

    def concept(self, concept_id: str) -> Concept:
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise TaxonomyError(f"unknown concept {concept_id!r}") from None

    def has_concept(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def children(self, concept_id: str) -> tuple[str, ...]:
        """The paper's ``child(c)``."""
        self.concept(concept_id)
        return tuple(self._children[concept_id])

    def parent(self, concept_id: str) -> str | None:
        self.concept(concept_id)
        return self._parent[concept_id]

    def is_leaf(self, concept_id: str) -> bool:
        return not self.children(concept_id)

    def depth(self, concept_id: str) -> int:
        """Number of edges from the root (root has depth 0)."""
        depth = 0
        node: str | None = concept_id
        self.concept(concept_id)
        while (node := self._parent[node]) is not None:  # type: ignore[index]
            depth += 1
        return depth

    def ancestors(self, concept_id: str) -> list[str]:
        """Concepts subsuming ``concept_id``, nearest first (excl. self)."""
        self.concept(concept_id)
        result: list[str] = []
        node = self._parent[concept_id]
        while node is not None:
            result.append(node)
            node = self._parent[node]
        return result

    def subsumes(self, ancestor_id: str, descendant_id: str) -> bool:
        """``descendant ⪯ ancestor`` — reflexive subsumption check."""
        self.concept(ancestor_id)
        node: str | None = descendant_id
        self.concept(descendant_id)
        while node is not None:
            if node == ancestor_id:
                return True
            node = self._parent[node]
        return False

    def related(self, c1: str, c2: str) -> bool:
        """True when one concept subsumes the other (paper's P relation)."""
        return self.subsumes(c1, c2) or self.subsumes(c2, c1)

    def leaf_set(self, concept_id: str) -> frozenset[str]:
        """``leaf(c)``: leaves of the subtree rooted at the concept.

        A leaf's own leaf set is the singleton of itself.
        """
        cached = self._leaf_cache.get(concept_id)
        if cached is not None:
            return cached
        self.concept(concept_id)
        children = self._children[concept_id]
        if not children:
            leaves = frozenset((concept_id,))
        else:
            leaves = frozenset().union(*(self.leaf_set(ch) for ch in children))
        self._leaf_cache[concept_id] = leaves
        return leaves

    @property
    def leaves(self) -> frozenset[str]:
        """All leaf concepts of the tree."""
        return self.leaf_set(self.root)

    def validate(self) -> None:
        """Check structural invariants; raises TaxonomyError on failure."""
        if self._root is None:
            raise TaxonomyError(f"tree {self.name!r} has no root")
        reachable: set[str] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node in reachable:
                raise TaxonomyError(f"cycle detected at concept {node!r}")
            reachable.add(node)
            stack.extend(self._children[node])
        orphans = set(self._concepts) - reachable
        if orphans:
            raise TaxonomyError(f"unreachable concepts: {sorted(orphans)}")

    def __len__(self) -> int:
        return len(self._concepts)

    def __iter__(self) -> Iterable[str]:
        return iter(self._concepts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaxonomyTree(name={self.name!r}, concepts={len(self)}, "
            f"leaves={len(self.leaves) if self._root else 0})"
        )

    def labels(self) -> Mapping[str, str]:
        """Mapping concept id -> label (for reports)."""
        return {cid: c.label for cid, c in self._concepts.items()}
