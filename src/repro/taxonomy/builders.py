"""Concrete taxonomies used in the paper's experiments.

* :func:`bibliographic_tree` — Fig. 3's ``tbib`` over research outputs.
* :func:`bibliographic_tree_variant` — the Fig. 10 variants used in
  Table 2 (t(bib,1) drops the peer-review level; t(bib,2) drops Book;
  t(bib,3) drops Journal).
* :func:`voter_tree` — a race × gender taxonomy with 12 leaves, the
  paper's "12 bit semantic signature" for NC Voter (§6.2).
"""

from __future__ import annotations

from repro.errors import TaxonomyError
from repro.taxonomy.tree import TaxonomyTree

#: Concept ids of ``tbib`` (paper Fig. 3).
BIB_ROOT = "c0"
BIB_PUBLICATION = "c1"
BIB_PEER_REVIEWED = "c2"
BIB_JOURNAL = "c3"
BIB_PROCEEDINGS = "c4"
BIB_BOOK = "c5"
BIB_NON_PEER_REVIEWED = "c6"
BIB_TECH_REPORT = "c7"
BIB_THESIS = "c8"
BIB_PATENT = "c9"


def bibliographic_tree() -> TaxonomyTree:
    """The bibliographic taxonomy ``tbib`` of Fig. 3.

    Leaves are {Journal, Proceedings, Book, Technical Report, Thesis,
    Patent} — six leaves, matching Example 4.4's simS(c0, c1) = 5/6.
    """
    return TaxonomyTree.from_spec(
        "tbib",
        (
            BIB_ROOT,
            "Research Output",
            [
                (
                    BIB_PUBLICATION,
                    "Publication",
                    [
                        (
                            BIB_PEER_REVIEWED,
                            "Peer Reviewed",
                            [
                                (BIB_JOURNAL, "Journal", []),
                                (BIB_PROCEEDINGS, "Proceedings", []),
                                (BIB_BOOK, "Book", []),
                            ],
                        ),
                        (
                            BIB_NON_PEER_REVIEWED,
                            "Non-Peer Reviewed",
                            [
                                (BIB_TECH_REPORT, "Technical Report", []),
                                (BIB_THESIS, "Thesis", []),
                            ],
                        ),
                    ],
                ),
                (BIB_PATENT, "Patent", []),
            ],
        ),
    )


def bibliographic_tree_variant(variant: int) -> TaxonomyTree:
    """The Fig. 10 variants of ``tbib`` used in Table 2.

    * variant 1 — removes Peer Reviewed (c2) and Non-Peer Reviewed (c6);
      their children hang directly off Publication.
    * variant 2 — misses Book (c5).
    * variant 3 — misses Journal (c3).
    """
    base = bibliographic_tree()
    if variant == 1:
        return (
            base.without_node(BIB_PEER_REVIEWED)
            .without_node(BIB_NON_PEER_REVIEWED, name="tbib-1")
        )
    if variant == 2:
        return base.without_node(BIB_BOOK, name="tbib-2")
    if variant == 3:
        return base.without_node(BIB_JOURNAL, name="tbib-3")
    raise TaxonomyError(f"unknown tbib variant {variant}; expected 1, 2 or 3")


#: Race codes used by the synthetic NC Voter generator and taxonomy.
VOTER_RACES = ("w", "b", "a", "i", "m", "o")
#: Gender codes; "u" marks the uncertain value found in the real data.
VOTER_GENDERS = ("m", "f")

VOTER_ROOT = "v0"

_RACE_LABELS = {
    "w": "White",
    "b": "Black",
    "a": "Asian",
    "i": "American Indian",
    "m": "Multiracial",
    "o": "Other",
}


def voter_race_concept(race: str) -> str:
    """Concept id of the internal node for one race."""
    return f"race_{race}"


def voter_leaf_concept(race: str, gender: str) -> str:
    """Concept id of the race × gender leaf."""
    return f"{race}_{gender}"


def voter_tree() -> TaxonomyTree:
    """Race × gender taxonomy with 6 race nodes and 12 leaves.

    A voter with known race and gender maps to one leaf; unknown gender
    maps to the race node (leaf set = both genders of that race);
    unknown race with known gender maps to the set of per-race leaves of
    that gender; fully unknown maps to the root.
    """
    spec_children = []
    for race in VOTER_RACES:
        leaves = [
            (voter_leaf_concept(race, gender), f"{_RACE_LABELS[race]} {gender.upper()}", [])
            for gender in VOTER_GENDERS
        ]
        spec_children.append((voter_race_concept(race), _RACE_LABELS[race], leaves))
    return TaxonomyTree.from_spec("tvoter", (VOTER_ROOT, "Voter", spec_children))
