"""Semantic-aware LSH blocking for entity resolution.

Reproduction of Wang, Cui & Liang, "Semantic-Aware Blocking for Entity
Resolution", IEEE TKDE 28(1), 2016.

The top-level package re-exports the most commonly used classes so that a
typical session only needs::

    from repro import (
        Dataset, Record, LSHBlocker, SALSHBlocker,
        TaxonomyTree, bibliographic_tree, evaluate_blocks,
    )

Sub-packages
------------
``repro.records``
    Record and dataset model with ground-truth bookkeeping.
``repro.text``
    String normalisation, q-grams and string similarity functions.
``repro.minhash`` / ``repro.lsh``
    Minhash signatures and banded locality-sensitive hashing.
``repro.taxonomy`` / ``repro.semantic``
    Taxonomy trees, semantic functions, semantic similarity and semhash.
``repro.core``
    The LSH and SA-LSH blockers, robustness analysis and parameter tuning.
``repro.baselines``
    The twelve survey blocking techniques of the paper's Table 3.
``repro.metablocking``
    Meta-blocking (weighting schemes + pruning) used in Fig. 12.
``repro.datasets``
    Synthetic Cora-like / NC-Voter-like generators and the Fig. 1 example.
``repro.evaluation``
    PC / PQ / RR / FM metrics and experiment runners.
"""

from repro._version import __version__
from repro.records import Dataset, Record
from repro.taxonomy import TaxonomyForest, TaxonomyTree
from repro.taxonomy.builders import bibliographic_tree, voter_tree
from repro.semantic import (
    PatternSemanticFunction,
    SemhashEncoder,
    concept_similarity,
    record_semantic_similarity,
)
from repro.core import LSHBlocker, SALSHBlocker
from repro.evaluation import BlockingMetrics, evaluate_blocks

__all__ = [
    "__version__",
    "Record",
    "Dataset",
    "TaxonomyTree",
    "TaxonomyForest",
    "bibliographic_tree",
    "voter_tree",
    "PatternSemanticFunction",
    "SemhashEncoder",
    "concept_similarity",
    "record_semantic_similarity",
    "LSHBlocker",
    "SALSHBlocker",
    "BlockingMetrics",
    "evaluate_blocks",
]
