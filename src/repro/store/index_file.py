"""On-disk banded index: sorted band-key runs in mmapped ``.npy`` files.

``write_index`` persists a :class:`~repro.lsh.index.BandedLSHIndex`
(or an online LSH/SA-LSH index wrapping one) as a directory of numpy
segments; ``open_index`` memory-maps them back and serves
``query``/``blocks`` straight from disk — no part of the index is
materialised in RAM beyond the pages the OS chooses to cache. This is
the ROADMAP's ``write_index``/``open_index`` out-of-core format (à la
FAISS ``IO_FLAG_MMAP``): the RAM wall for a *serving* index becomes
the disk, and the same directory shipped over a shared filesystem is
the multi-node story.

Layout
------
``<dir>/ids.npy``
    Live record ids, fixed-width UTF-8 bytes, insertion order.
``<dir>/table-NNN.keys.npy``
    The table's distinct entry keys, sorted. An entry key is the
    fixed-width band key padded to the directory-wide key width,
    followed by the 8-byte big-endian *biased* suffix code (bias
    2**63, so byte order equals numeric order): OR-gate suffixes are
    their non-negative semhash bit index; scalar suffixes (the AND
    family's shared ``"all"``, and the no-gate marker) get negative
    codes by first occurrence, recorded in the manifest.
``<dir>/table-NNN.offsets.npy`` / ``.members.npy`` / ``.emit.npy``
    CSR offsets into ``members`` (rows into ``ids``, insertion order
    within a bucket) and the bucket emission permutation (first
    occurrence), so ``blocks()`` replays the in-memory emission order
    byte for byte.
``<dir>/INDEX.json``
    Manifest: format version, table count, widths, per-table scalar
    code maps, member file sizes. Written last — its presence marks
    the index complete, so a crash mid-``write_index`` (the
    ``index.write`` fault point) leaves a directory ``open_index``
    rejects instead of a silently partial index.

Every ``.npy`` segment carries the PR 8 magic+CRC32+length footer
(:func:`~repro.utils.parallel.append_slab_footer`), validated once at
open; ``np.load`` ignores the trailing bytes, so the segments stay
plain ``.npy`` files any tool can read.

A bucket lookup is one ``np.searchsorted`` binary search per probed
(band key, suffix) against the sorted key run — O(log buckets) page
touches per table.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, DurabilityError
from repro.lsh.index import BandedLSHIndex, GateFn
from repro.store.checkpoint import sweep_orphan_tmp, tmp_name
from repro.utils import faults
from repro.utils.parallel import append_slab_footer, validate_slab_footer

#: Manifest file name; written last, so presence == complete index.
MANIFEST_NAME = "INDEX.json"

#: Manifest format version.
FORMAT_VERSION = 1

#: Manifest key of the no-gate scalar suffix.
NO_GATE_NAME = "__no_gate__"

#: Added to suffix codes so their big-endian bytes sort numerically.
_SUFFIX_BIAS = 1 << 63

_SUFFIX_BYTES = 8


def _suffix_bytes_array(codes: np.ndarray) -> np.ndarray:
    """(n, 8) uint8 view of biased big-endian suffix codes."""
    # Flipping the sign bit is the two's-complement bias add without
    # the int64 overflow.
    flipped = codes.astype(np.int64).view(np.uint64) ^ np.uint64(
        _SUFFIX_BIAS
    )
    return flipped.astype(">u8").view(np.uint8).reshape(-1, _SUFFIX_BYTES)


def _suffix_tail(code: int) -> bytes:
    return struct.pack(">Q", (code + _SUFFIX_BIAS) & 0xFFFFFFFFFFFFFFFF)


def _banded(index) -> BandedLSHIndex:
    if isinstance(index, BandedLSHIndex):
        return index
    inner = getattr(index, "banded_index", None)
    if isinstance(inner, BandedLSHIndex):
        return inner
    raise ConfigurationError(
        f"cannot persist {type(index).__name__}: write_index takes a "
        "BandedLSHIndex or an online index exposing one (LSH / SA-LSH)"
    )


def _table_file(table: int, kind: str) -> str:
    return f"table-{table:03d}.{kind}.npy"


def _write_segment(directory: Path, name: str, array: np.ndarray) -> int:
    path = directory / name
    np.save(path, array, allow_pickle=False)
    append_slab_footer(os.fspath(path))
    with open(path, "rb") as handle:
        os.fsync(handle.fileno())
    return os.path.getsize(path)


def write_index(
    path: str | os.PathLike,
    index,
    *,
    metadata: dict | None = None,
) -> None:
    """Persist a banded index as an mmappable directory at ``path``.

    The directory is built under a ``.tmp-<pid>`` name and renamed
    into place once complete (manifest last), so a crash mid-write —
    including the injected ``index.write`` kill −9 — never leaves a
    directory that :func:`open_index` would trust. Orphaned tmp
    directories from dead writers are swept on the next write to the
    same parent. ``path`` must not already exist (version directories,
    don't overwrite).

    ``metadata`` is stored verbatim in the manifest (blocker
    parameters, corpus name — whatever the caller wants to find again).
    """
    target = Path(path)
    if target.exists():
        raise DurabilityError(
            f"index path {target} already exists; write to a fresh "
            "directory", path=str(target),
        )
    banded = _banded(index)
    live_ids, tables = banded.export_entries()
    ids_list = [rid.encode("utf-8") for rid in live_ids.tolist()]
    id_width = max((len(b) for b in ids_list), default=1) or 1
    key_width = max(
        (
            np.asarray(keys).dtype.itemsize
            for segments in tables
            for _, keys, _ in segments
        ),
        default=1,
    )

    parent = target.parent
    parent.mkdir(parents=True, exist_ok=True)
    sweep_orphan_tmp(parent)
    tmp_dir = parent / tmp_name(target.name)
    tmp_dir.mkdir()
    try:
        files: dict[str, int] = {}
        files["ids.npy"] = _write_segment(
            tmp_dir, "ids.npy", np.array(ids_list, dtype=f"S{id_width}")
        )
        scalars: list[list[list]] = []
        for table, segments in enumerate(tables):
            scalar_codes: dict[str, int] = {}
            entry_width = key_width + _SUFFIX_BYTES
            parts_keys: list[np.ndarray] = []
            parts_rows: list[np.ndarray] = []
            for rows, keys, suffixes in segments:
                keys = np.asarray(keys).astype(f"S{key_width}")
                if isinstance(suffixes, np.ndarray):
                    codes = suffixes.astype(np.int64, copy=False)
                    if codes.size and int(codes.min()) < 0:
                        raise ConfigurationError(
                            "per-entry gate suffixes must be non-negative "
                            "bit indices"
                        )
                else:
                    name = NO_GATE_NAME if suffixes is None else suffixes
                    if not isinstance(name, str):
                        raise ConfigurationError(
                            f"scalar gate suffix {suffixes!r} is not "
                            "persistable; only string suffixes (the AND "
                            "family) are supported on disk"
                        )
                    code = scalar_codes.setdefault(
                        name, -1 - len(scalar_codes)
                    )
                    codes = np.full(rows.size, code, dtype=np.int64)
                key_u8 = keys.view(np.uint8).reshape(-1, key_width)
                combined_u8 = np.concatenate(
                    [key_u8, _suffix_bytes_array(codes)], axis=1
                )
                parts_keys.append(
                    np.ascontiguousarray(combined_u8)
                    .reshape(-1)
                    .view(f"S{entry_width}")
                )
                parts_rows.append(rows.astype(np.int64, copy=False))
            if parts_keys:
                entry_keys = np.concatenate(parts_keys)
                entry_rows = np.concatenate(parts_rows)
            else:
                entry_keys = np.empty(0, dtype=f"S{entry_width}")
                entry_rows = np.empty(0, dtype=np.int64)
            order = np.argsort(entry_keys, kind="stable")
            ordered_keys = entry_keys[order]
            if ordered_keys.size:
                boundaries = (
                    np.flatnonzero(ordered_keys[1:] != ordered_keys[:-1]) + 1
                )
                starts = np.concatenate([[0], boundaries]).astype(np.int64)
                offsets = np.concatenate(
                    [starts, [ordered_keys.size]]
                ).astype(np.int64)
                unique_keys = ordered_keys[starts]
                emit = np.argsort(order[starts], kind="stable").astype(
                    np.int64
                )
            else:
                offsets = np.zeros(1, dtype=np.int64)
                unique_keys = ordered_keys
                emit = np.empty(0, dtype=np.int64)
            files[_table_file(table, "keys")] = _write_segment(
                tmp_dir, _table_file(table, "keys"), unique_keys
            )
            files[_table_file(table, "offsets")] = _write_segment(
                tmp_dir, _table_file(table, "offsets"), offsets
            )
            files[_table_file(table, "members")] = _write_segment(
                tmp_dir, _table_file(table, "members"), entry_rows[order]
            )
            files[_table_file(table, "emit")] = _write_segment(
                tmp_dir, _table_file(table, "emit"), emit
            )
            scalars.append(
                [[name, code] for name, code in scalar_codes.items()]
            )
            faults.maybe_crash("index.write")
        manifest = {
            "format": FORMAT_VERSION,
            "num_tables": banded.num_tables,
            "num_records": len(ids_list),
            "key_bytes": int(key_width),
            "id_bytes": int(id_width),
            "scalars": scalars,
            "files": files,
            "metadata": metadata or {},
        }
        manifest_path = tmp_dir / MANIFEST_NAME
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        dir_fd = os.open(tmp_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        os.rename(tmp_dir, target)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    parent_fd = os.open(parent, os.O_RDONLY)
    try:
        os.fsync(parent_fd)
    finally:
        os.close(parent_fd)


class DiskBandIndex:
    """A read-only banded index served from memory-mapped segments.

    Obtained from :func:`open_index`. Queries mirror
    :meth:`~repro.lsh.index.BandedLSHIndex.query_keys` (table-major,
    bucket-insertion-order, deduplicated) and :meth:`blocks` replays
    the in-memory first-occurrence emission order, so results are
    byte-identical to the index that was persisted.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict,
        ids: np.ndarray,
        tables: list[dict],
    ) -> None:
        self.path = path
        self.metadata = manifest.get("metadata", {})
        self.num_tables = manifest["num_tables"]
        self._key_width = manifest["key_bytes"]
        self._ids = ids
        self._tables = tables

    @property
    def num_records(self) -> int:
        return int(self._ids.shape[0])

    def _record_id(self, row: int) -> str:
        return self._ids[row].decode("utf-8")

    def _bucket_rows(self, table: dict, entry_key: bytes) -> np.ndarray:
        keys = table["keys"]
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        probe = np.array(entry_key, dtype=keys.dtype)
        position = int(np.searchsorted(keys, probe))
        if position >= keys.size or keys[position] != probe:
            return np.empty(0, dtype=np.int64)
        offsets = table["offsets"]
        return table["members"][offsets[position]:offsets[position + 1]]

    def query_keys(
        self,
        keys,
        gate: "GateFn | None" = None,
        *,
        record_id: str | None = None,
    ) -> list[str]:
        """Record ids sharing at least one bucket with these band keys.

        Same contract as the in-memory
        :meth:`~repro.lsh.index.BandedLSHIndex.query_keys`; each probed
        (band key, suffix) costs one binary search over the table's
        sorted key run.
        """
        if len(keys) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} band keys, got {len(keys)}"
            )
        seen: set[str] = set()
        found: list[str] = []
        for table_index, key in enumerate(keys):
            table = self._tables[table_index]
            padded = bytes(key).ljust(self._key_width, b"\0")
            if gate is None:
                suffixes = (None,)
            else:
                suffixes = gate(table_index, record_id or "")
            for suffix in suffixes:
                if isinstance(suffix, (int, np.integer)):
                    code = int(suffix)
                else:
                    name = NO_GATE_NAME if suffix is None else suffix
                    code = table["scalars"].get(name)
                    if code is None:
                        continue  # no entry of this family in the table
                rows = self._bucket_rows(table, padded + _suffix_tail(code))
                for row in rows.tolist():
                    member = self._record_id(row)
                    if member not in seen and member != record_id:
                        seen.add(member)
                        found.append(member)
        return found

    def query(self, record, blocker, *, encoder=None) -> list[str]:
        """Candidates for a probe record, straight from disk.

        ``blocker`` supplies the band-key pipeline the index was built
        with (an :class:`~repro.core.lsh_blocker.LSHBlocker` or
        :class:`~repro.core.salsh_blocker.SALSHBlocker`); SA-LSH
        queries additionally need the frozen ``encoder`` that gated
        the persisted entries. A record the frozen semantic function
        cannot interpret yields no candidates, as in the online path.
        """
        from repro.lsh.bands import record_band_keys

        signature = blocker.hasher.signature(
            blocker.shingler.shingle_ids(record)
        )
        keys = record_band_keys(signature, blocker.k, blocker.l)
        gate = None
        if encoder is not None:
            from repro.errors import SemanticFunctionError

            try:
                semhash = encoder.encode(record)
            except SemanticFunctionError:
                return []
            gates = blocker._gates(encoder.num_bits)

            def gate(table: int, _record_id: str):
                return gates.gate_suffixes(table, semhash)

        return self.query_keys(keys, gate, record_id=record.record_id)

    def blocks(self, *, min_size: int = 2) -> tuple[tuple[str, ...], ...]:
        """All buckets with at least ``min_size`` members.

        First-occurrence emission order with members in insertion
        order — byte-identical to the persisted index's ``blocks()``.
        """
        found: list[tuple[str, ...]] = []
        decode = self._record_id
        for table in self._tables:
            offsets = table["offsets"]
            sizes = np.diff(offsets)
            members = table["members"]
            for bucket in table["emit"].tolist():
                if sizes[bucket] < min_size:
                    continue
                rows = members[offsets[bucket]:offsets[bucket + 1]]
                found.append(tuple(decode(row) for row in rows.tolist()))
        return tuple(found)


def open_index(path: str | os.PathLike) -> DiskBandIndex:
    """Memory-map a persisted index for serving.

    Validates the manifest and every segment's integrity footer, then
    attaches the segments as read-only memory maps. A directory with
    no manifest — a crashed ``write_index`` — or a segment failing its
    footer raises a typed error instead of serving garbage.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise DurabilityError(
            f"{directory} holds no complete index (manifest unreadable: "
            f"{exc}); was write_index interrupted?", path=str(directory),
        ) from exc
    if manifest.get("format") != FORMAT_VERSION:
        raise DurabilityError(
            f"index {directory} has unsupported format "
            f"{manifest.get('format')!r}", path=str(directory),
        )
    for name, expected_size in manifest["files"].items():
        segment = directory / name
        if (
            not segment.is_file()
            or os.path.getsize(segment) != expected_size
        ):
            raise DurabilityError(
                f"index segment {segment} is missing or resized",
                path=str(segment),
            )
        validate_slab_footer(os.fspath(segment))
    ids = np.load(directory / "ids.npy", mmap_mode="r")
    tables: list[dict] = []
    for table in range(manifest["num_tables"]):
        tables.append({
            "keys": np.load(
                directory / _table_file(table, "keys"), mmap_mode="r"
            ),
            "offsets": np.load(
                directory / _table_file(table, "offsets"), mmap_mode="r"
            ),
            "members": np.load(
                directory / _table_file(table, "members"), mmap_mode="r"
            ),
            "emit": np.load(
                directory / _table_file(table, "emit"), mmap_mode="r"
            ),
            "scalars": dict(
                (name, code) for name, code in manifest["scalars"][table]
            ),
        })
    return DiskBandIndex(directory, manifest, ids, tables)
