"""Write-ahead journal for online resolver mutations.

Every mutation (``add_many``/``remove``) is appended — and, under the
default fsync discipline, forced to stable storage — *before* it is
applied to the in-memory store and index. An acknowledged mutation
(``append`` returned) therefore survives kill −9; a mutation in flight
when the process dies leaves at most one torn frame at the tail, which
:func:`read_journal` truncates away.

File layout
-----------
A 16-byte header (magic + the sequence number the journal starts
after), then zero or more frames::

    [uint32 payload length][uint32 CRC32(payload)][payload]

Payloads are UTF-8 JSON objects carrying a monotonic ``seq`` plus the
operation. The length+CRC framing makes every torn-write mode — a
truncated frame, a partially flushed payload, garbage past a crash —
detectable: replay stops at the first frame that fails its checks and
reports the byte offset of the valid prefix, so a reopening writer can
truncate the wreckage and continue appending.

Fsync disciplines
-----------------
``"always"``
    flush + ``os.fsync`` on every append — an acked mutation is on
    stable storage (the durability default).
``"batch"``
    flush per append, fsync only on :meth:`Journal.sync`/``close`` —
    bounded loss window, amortized syscalls for bulk ingest.
``"never"``
    flush only — bench/test mode; the OS decides when bytes land.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

from repro.errors import ConfigurationError, DurabilityError
from repro.utils import faults

#: File name a resolver state directory uses for its journal.
JOURNAL_NAME = "wal.log"

#: 8-byte magic opening every journal file (version byte included).
JOURNAL_MAGIC = b"RWAL\x01\x00\x00\x00"

#: Bytes of the fixed journal header: magic + uint64 start sequence.
_HEADER_LEN = 16

#: Bytes of the per-frame length+CRC prefix.
_FRAME_PREFIX_LEN = 8

#: Accepted fsync disciplines.
FSYNC_MODES = ("always", "batch", "never")


def _encode_frame(payload: bytes) -> bytes:
    return (
        struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
    )


def read_journal(path: str | os.PathLike) -> tuple[list[dict], int, int]:
    """Decode a journal: ``(entries, valid_end, start_seq)``.

    ``entries`` are the decoded payload dicts of every intact frame in
    order; ``valid_end`` is the byte offset just past the last intact
    frame — everything after it is a torn tail a crashed writer left
    behind (zero bytes of it are trusted). A missing or foreign header
    raises :class:`~repro.errors.DurabilityError`; a torn tail does
    not — truncating at it is the recovery algorithm, not a failure.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise DurabilityError(
            f"journal {path} unreadable: {exc}", path=path
        ) from exc
    if len(data) < _HEADER_LEN or data[:8] != JOURNAL_MAGIC:
        raise DurabilityError(
            f"journal {path} has no valid header (foreign or truncated "
            "file)", path=path,
        )
    (start_seq,) = struct.unpack("<Q", data[8:_HEADER_LEN])
    entries: list[dict] = []
    offset = _HEADER_LEN
    expected_seq = start_seq + 1
    while True:
        prefix_end = offset + _FRAME_PREFIX_LEN
        if prefix_end > len(data):
            break
        length, crc = struct.unpack("<II", data[offset:prefix_end])
        payload_end = prefix_end + length
        if payload_end > len(data):
            break
        payload = data[prefix_end:payload_end]
        if zlib.crc32(payload) != crc:
            break
        try:
            entry = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(entry, dict) or entry.get("seq") != expected_seq:
            # A frame from a different journal epoch (or a replayed
            # buffer) — stale bytes, not a continuation.
            break
        entries.append(entry)
        expected_seq += 1
        offset = payload_end
    return entries, offset, start_seq


class Journal:
    """An appendable write-ahead log (see module docstring).

    Use :meth:`create` for a fresh journal and :meth:`open` to continue
    one across a restart (the torn tail, if any, is truncated first).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "always",
        _handle=None,
        _last_seq: int = 0,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ConfigurationError(
                f"fsync mode must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        self.path = os.fspath(path)
        self.fsync = fsync
        self._file = _handle
        self._last_seq = _last_seq
        self._unsynced = False

    @classmethod
    def create(
        cls, path: str | os.PathLike, *, start_seq: int = 0,
        fsync: str = "always",
    ) -> "Journal":
        """A fresh journal whose first entry will be ``start_seq + 1``.

        Overwrites any existing file at ``path`` (checkpoint
        publication resets the journal this way — every entry the old
        journal held is covered by the published snapshot).
        """
        journal = cls(path, fsync=fsync, _last_seq=start_seq)
        handle = open(journal.path, "wb")
        handle.write(JOURNAL_MAGIC + struct.pack("<Q", start_seq))
        handle.flush()
        if fsync != "never":
            os.fsync(handle.fileno())
        journal._file = handle
        return journal

    @classmethod
    def open(
        cls, path: str | os.PathLike, *, fsync: str = "always",
    ) -> "Journal":
        """Reopen an existing journal for appending.

        Scans the frames to find the last acknowledged sequence number
        and the valid byte prefix, truncates any torn tail, and
        positions the writer at the end.
        """
        entries, valid_end, start_seq = read_journal(path)
        last_seq = entries[-1]["seq"] if entries else start_seq
        journal = cls(path, fsync=fsync, _last_seq=last_seq)
        handle = open(journal.path, "r+b")
        handle.truncate(valid_end)
        handle.seek(valid_end)
        journal._file = handle
        return journal

    @property
    def last_seq(self) -> int:
        """Sequence number of the last acknowledged entry."""
        return self._last_seq

    @property
    def closed(self) -> bool:
        return self._file is None

    def append(self, op: str, payload: dict) -> int:
        """Durably log one operation; returns its sequence number.

        The entry is acknowledged — and must survive any later crash —
        only once this method returns. Under ``fsync="always"`` that
        means the bytes were fsynced; under ``"batch"``/``"never"``
        the acknowledgement is correspondingly weaker (by opt-in).
        """
        if self._file is None:
            raise DurabilityError(
                f"journal {self.path} is closed", path=self.path
            )
        seq = self._last_seq + 1
        record = {"seq": seq, "op": op, **payload}
        frame = _encode_frame(
            json.dumps(record, separators=(",", ":")).encode("utf-8")
        )
        if faults.should_fire("wal.append"):  # pragma: no cover - dies
            # The injected torn-write crash: half a frame reaches the
            # file, then the process is SIGKILLed mid-append. Replay
            # must truncate exactly here.
            self._file.write(frame[: max(len(frame) // 2, 1)])
            self._file.flush()
            os.fsync(self._file.fileno())
            faults.kill_self()
        self._file.write(frame)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        else:
            self._unsynced = True
        self._last_seq = seq
        return seq

    def sync(self) -> None:
        """Force buffered frames to stable storage (``"batch"`` mode)."""
        if self._file is None or not self._unsynced:
            return
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())
        self._unsynced = False

    def close(self) -> None:
        """Sync (per discipline) and release the file handle. Idempotent."""
        if self._file is None:
            return
        file, self._file = self._file, None
        try:
            file.flush()
            if self.fsync == "batch" and self._unsynced:
                os.fsync(file.fileno())
        finally:
            file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def journal_path(state_dir: str | os.PathLike) -> Path:
    """The journal file of a resolver state directory."""
    return Path(state_dir) / JOURNAL_NAME
