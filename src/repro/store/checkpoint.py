"""Atomic resolver checkpoints: snapshot/restore with crash safety.

A checkpoint is a directory published atomically into the resolver's
state directory::

    state_dir/
        CURRENT                  # name of the live checkpoint dir
        checkpoint-000007/
            MANIFEST.json        # wal_seq + per-file CRC32/size
            records.json         # RecordStore snapshot (insertion order)
            index.json           # OnlineIndex.checkpoint() state
            encoder.pkl          # frozen SemhashEncoder (SA-LSH only)
            blocker.pkl          # the blocker (pool stripped)
            matcher.pkl          # the similarity matcher
        wal.log                  # journal of mutations since wal_seq

Publication protocol (the classic tmp + fsync + rename dance): every
file is written and fsynced inside ``checkpoint-N.tmp-<pid>``, the tmp
directory is fsynced and renamed to its final name, the parent is
fsynced, and only then is ``CURRENT`` swapped (itself via tmp +
rename). A crash at any point leaves either the old state intact (the
tmp directory is swept later by :func:`sweep_orphan_tmp`'s dead-pid
check, mirroring the shard pool's ``repro-shardpool-*`` sweep) or the
new checkpoint fully published; there is no window where a reader can
observe half a snapshot. The write-ahead journal is only reset *after*
publication — recovery replays journal entries with ``seq`` beyond the
checkpoint's ``wal_seq``, so a crash between rename and journal reset
double-covers (harmlessly) rather than losing mutations.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DurabilityError
from repro.utils import faults
from repro.utils.parallel import _pid_alive

#: Pointer file naming the live checkpoint directory.
CURRENT_NAME = "CURRENT"

#: Prefix of every checkpoint directory.
CHECKPOINT_PREFIX = "checkpoint-"

#: Marker separating a tmp entry's final name from its owner pid
#: (``checkpoint-000007.tmp-12345``).
TMP_MARKER = ".tmp-"

#: Checkpoint format version recorded in every manifest.
FORMAT_VERSION = 1

_MANIFEST_NAME = "MANIFEST.json"
_RECORDS_NAME = "records.json"
_INDEX_NAME = "index.json"
_ENCODER_NAME = "encoder.pkl"
_BLOCKER_NAME = "blocker.pkl"
_MATCHER_NAME = "matcher.pkl"


@dataclass
class CheckpointData:
    """Everything a published checkpoint holds, decoded and verified."""

    name: str
    wal_seq: int
    records_state: dict
    index_state: dict
    blocker: object | None
    matcher: object | None


def _fsync_dir(path: str | os.PathLike) -> None:
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file(directory: Path, name: str, data: bytes) -> dict:
    """Write + fsync one checkpoint member; returns its manifest entry."""
    path = directory / name
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    return {"crc32": zlib.crc32(data), "bytes": len(data)}


def tmp_name(final_name: str) -> str:
    """The in-progress name of an atomically published entry."""
    return f"{final_name}{TMP_MARKER}{os.getpid()}"


def sweep_orphan_tmp(parent: str | os.PathLike) -> None:
    """Remove ``*.tmp-<pid>`` entries whose owning process is gone.

    A ``save()`` killed mid-write leaves its tmp checkpoint directory
    (or tmp ``CURRENT`` file) behind. Every later open of the state
    directory sweeps these: only entries carrying the tmp marker *and*
    a parsable, provably dead pid are removed — in-flight saves from
    live processes and foreign files are left alone. Mirrors the shard
    pool's ``repro-shardpool-<pid>-*`` orphan sweep.
    """
    try:
        entries = os.listdir(parent)
    except OSError:
        return
    for name in entries:
        if TMP_MARKER not in name:
            continue
        pid_part = name.rsplit(TMP_MARKER, 1)[1]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        if pid <= 0 or pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(os.fspath(parent), name)
        if os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
        else:
            try:
                os.unlink(path)
            except OSError:
                pass


def _checkpoint_number(name: str) -> int | None:
    if not name.startswith(CHECKPOINT_PREFIX) or TMP_MARKER in name:
        return None
    suffix = name[len(CHECKPOINT_PREFIX):]
    return int(suffix) if suffix.isdigit() else None


def _published_checkpoints(state_dir: Path) -> list[tuple[int, str]]:
    """(number, name) of every fully renamed checkpoint dir, ascending."""
    found = []
    try:
        entries = os.listdir(state_dir)
    except OSError:
        return []
    for name in entries:
        number = _checkpoint_number(name)
        if number is not None and (state_dir / name).is_dir():
            found.append((number, name))
    return sorted(found)


def latest_checkpoint(state_dir: str | os.PathLike) -> str | None:
    """Name of the checkpoint recovery should load, or ``None``.

    Prefers the ``CURRENT`` pointer; when the pointer is missing or
    dangling (a crash between the publish rename and the pointer swap),
    falls back to the highest-numbered published directory — both are
    consistent, because the journal is only reset *after* the pointer
    swap, so replay from an older checkpoint covers the same
    mutations.
    """
    state_dir = Path(state_dir)
    current = state_dir / CURRENT_NAME
    if current.is_file():
        name = current.read_text(encoding="utf-8").strip()
        if name and _checkpoint_number(name) is not None and (
            state_dir / name
        ).is_dir():
            return name
    published = _published_checkpoints(state_dir)
    return published[-1][1] if published else None


def _pickle_without_pool(obj) -> bytes:
    """Pickle ``obj`` with any live ``pool`` attribute stripped.

    A warm :class:`~repro.utils.parallel.ShardPool` holds an executor
    and shared-memory files — process state that cannot (and must not)
    be persisted. The restored blocker starts poolless; callers re-warm
    it explicitly if they want one.
    """
    pool = getattr(obj, "pool", None)
    if pool is not None:
        obj.pool = None
    try:
        return pickle.dumps(obj)
    finally:
        if pool is not None:
            obj.pool = pool


def write_checkpoint(
    state_dir: str | os.PathLike,
    *,
    records_state: dict,
    index_state: dict,
    wal_seq: int,
    blocker=None,
    matcher=None,
) -> str:
    """Atomically publish a checkpoint; returns its directory name.

    ``index_state`` is the online index's :meth:`checkpoint` dict; a
    non-JSON ``"encoder"`` value is extracted and pickled separately.
    ``wal_seq`` is the journal sequence number the snapshot covers —
    recovery replays only entries beyond it.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    sweep_orphan_tmp(state_dir)
    keep = latest_checkpoint(state_dir)
    published = _published_checkpoints(state_dir)
    # Stale publishes (a crash between rename and pointer swap) are
    # superseded by keep + journal; drop them before numbering.
    for _, name in published:
        if name != keep:
            shutil.rmtree(state_dir / name, ignore_errors=True)
    next_number = (published[-1][0] + 1) if published else 1
    final_name = f"{CHECKPOINT_PREFIX}{next_number:06d}"
    tmp_dir = state_dir / tmp_name(final_name)
    tmp_dir.mkdir()
    try:
        index_state = dict(index_state)
        encoder = index_state.pop("encoder", None)
        files = {
            _RECORDS_NAME: _write_file(
                tmp_dir, _RECORDS_NAME,
                json.dumps(records_state, separators=(",", ":")).encode(),
            ),
            _INDEX_NAME: _write_file(
                tmp_dir, _INDEX_NAME,
                json.dumps(index_state, separators=(",", ":")).encode(),
            ),
        }
        if encoder is not None:
            files[_ENCODER_NAME] = _write_file(
                tmp_dir, _ENCODER_NAME, pickle.dumps(encoder)
            )
        if blocker is not None:
            files[_BLOCKER_NAME] = _write_file(
                tmp_dir, _BLOCKER_NAME, _pickle_without_pool(blocker)
            )
        if matcher is not None:
            files[_MATCHER_NAME] = _write_file(
                tmp_dir, _MATCHER_NAME, pickle.dumps(matcher)
            )
        manifest = {
            "format": FORMAT_VERSION,
            "wal_seq": int(wal_seq),
            "files": files,
        }
        _write_file(
            tmp_dir, _MANIFEST_NAME,
            json.dumps(manifest, separators=(",", ":")).encode(),
        )
        _fsync_dir(tmp_dir)
        faults.maybe_crash("checkpoint.rename")
        os.rename(tmp_dir, state_dir / final_name)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    _fsync_dir(state_dir)
    # Swap the pointer through its own tmp + rename; readers only ever
    # see a complete pointer naming a complete checkpoint.
    pointer_tmp = state_dir / tmp_name(CURRENT_NAME)
    with open(pointer_tmp, "w", encoding="utf-8") as handle:
        handle.write(final_name + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(pointer_tmp, state_dir / CURRENT_NAME)
    _fsync_dir(state_dir)
    if keep is not None and keep != final_name:
        shutil.rmtree(state_dir / keep, ignore_errors=True)
    return final_name


def load_checkpoint(state_dir: str | os.PathLike) -> CheckpointData:
    """Load and verify the live checkpoint of a state directory.

    Sweeps dead-pid tmp wreckage first, resolves the checkpoint via
    :func:`latest_checkpoint`, verifies every member file against the
    manifest's CRC32 + size, and decodes the snapshot. Any missing or
    corrupt member raises :class:`~repro.errors.DurabilityError` —
    recovery must not proceed from a half-trusted snapshot.
    """
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        raise DurabilityError(
            f"no resolver state at {state_dir}", path=str(state_dir)
        )
    sweep_orphan_tmp(state_dir)
    name = latest_checkpoint(state_dir)
    if name is None:
        raise DurabilityError(
            f"state directory {state_dir} holds no published checkpoint",
            path=str(state_dir),
        )
    directory = state_dir / name
    manifest_path = directory / _MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise DurabilityError(
            f"checkpoint manifest {manifest_path} unreadable: {exc}",
            path=str(manifest_path),
        ) from exc
    if manifest.get("format") != FORMAT_VERSION:
        raise DurabilityError(
            f"checkpoint {directory} has unsupported format "
            f"{manifest.get('format')!r}", path=str(directory),
        )
    contents: dict[str, bytes] = {}
    for member, expected in manifest.get("files", {}).items():
        path = directory / member
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise DurabilityError(
                f"checkpoint member {path} unreadable: {exc}",
                path=str(path),
            ) from exc
        if (
            len(data) != expected.get("bytes")
            or zlib.crc32(data) != expected.get("crc32")
        ):
            raise DurabilityError(
                f"checkpoint member {path} failed its manifest checksum",
                path=str(path),
            )
        contents[member] = data
    try:
        records_state = json.loads(contents[_RECORDS_NAME])
        index_state = json.loads(contents[_INDEX_NAME])
    except (KeyError, ValueError) as exc:
        raise DurabilityError(
            f"checkpoint {directory} is missing or corrupts its snapshot "
            f"members: {exc}", path=str(directory),
        ) from exc
    if _ENCODER_NAME in contents:
        index_state["encoder"] = pickle.loads(contents[_ENCODER_NAME])
    blocker = (
        pickle.loads(contents[_BLOCKER_NAME])
        if _BLOCKER_NAME in contents else None
    )
    matcher = (
        pickle.loads(contents[_MATCHER_NAME])
        if _MATCHER_NAME in contents else None
    )
    return CheckpointData(
        name=name,
        wal_seq=int(manifest["wal_seq"]),
        records_state=records_state,
        index_state=index_state,
        blocker=blocker,
        matcher=matcher,
    )
