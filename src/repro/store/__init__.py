"""Durable resolver state: on-disk indexes, WAL, checkpoints.

The serving stack's escape from "state dies with the process"
(DESIGN.md, "Durability & crash recovery"):

* :mod:`repro.store.index_file` — ``write_index``/``open_index``
  persist a banded index as sorted band-key runs in memory-mapped
  ``.npy`` segments; queries binary-search the mapping straight from
  disk.
* :mod:`repro.store.journal` — a length+CRC-framed write-ahead log for
  online mutations; replay truncates at the first torn frame.
* :mod:`repro.store.checkpoint` — atomic snapshot/restore of a
  resolver's record store, online index state and blocker, published
  via tmp + fsync + rename with a per-file-checksummed manifest.
"""

from repro.store.checkpoint import (
    CheckpointData,
    latest_checkpoint,
    load_checkpoint,
    sweep_orphan_tmp,
    write_checkpoint,
)
from repro.store.index_file import DiskBandIndex, open_index, write_index
from repro.store.journal import (
    JOURNAL_NAME,
    Journal,
    read_journal,
)

__all__ = [
    "CheckpointData",
    "DiskBandIndex",
    "JOURNAL_NAME",
    "Journal",
    "latest_checkpoint",
    "load_checkpoint",
    "open_index",
    "read_journal",
    "sweep_orphan_tmp",
    "write_checkpoint",
    "write_index",
]
