"""Blocking-quality measures and experiment runners (paper §6)."""

from repro.evaluation.metrics import (
    BlockingMetrics,
    LinkageMetrics,
    evaluate_blocks,
    evaluate_linkage,
)
from repro.evaluation.objective import ObjectiveValue, blocking_objective
from repro.evaluation.runner import ExperimentResult, best_by, run_blocking
from repro.evaluation.reporting import format_table
from repro.evaluation.statistics import (
    MetricSummary,
    bootstrap_difference,
    seed_sweep,
    summarise,
)

__all__ = [
    "BlockingMetrics",
    "LinkageMetrics",
    "evaluate_blocks",
    "evaluate_linkage",
    "ObjectiveValue",
    "blocking_objective",
    "ExperimentResult",
    "run_blocking",
    "best_by",
    "format_table",
    "MetricSummary",
    "seed_sweep",
    "summarise",
    "bootstrap_difference",
]
