"""Plain-text tables for benchmark output.

The benchmark harness prints each reproduced table/figure as an ASCII
table; keeping the formatter here lets tests assert on structure.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_digits: int = 4,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 0.5]]))
    a | b
    --+-------
    1 | 0.5000
    """
    cells = [[_format_cell(v, float_digits) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
