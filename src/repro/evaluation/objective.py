"""The blocking-problem objective of Eq. 2 (§3).

The optimisation form of the blocking problem minimises the share of
true non-matches among compared pairs subject to losing at most an ε
fraction of true matches:

    minimise   Σ_{(r1,r2) ∈ N} θ_B(r1,r2) / Σ_{r1≠r2} θ_B(r1,r2)
    such that  1 - Σ_{(r1,r2) ∈ P} θ_B(r1,r2) / |P|  <=  ε

where θ_B(r1, r2) = 1 iff some block contains both records. This module
evaluates a blocking against that objective so different blockings can
be compared on the paper's own optimisation criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import BlockingResult
from repro.errors import DatasetError, EvaluationError
from repro.records.dataset import Dataset


@dataclass(frozen=True)
class ObjectiveValue:
    """Eq. 2 evaluated on one blocking."""

    non_match_share: float  # the minimised quantity
    match_loss: float  # 1 - PC, the constrained quantity
    epsilon: float
    feasible: bool  # match_loss <= epsilon

    def __str__(self) -> str:
        status = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"objective={self.non_match_share:.4f} "
            f"loss={self.match_loss:.4f} (ε={self.epsilon}, {status})"
        )


def blocking_objective(
    result: BlockingResult, dataset: Dataset, epsilon: float
) -> ObjectiveValue:
    """Evaluate Eq. 2 for a blocking result.

    ``non_match_share`` is 1 - PQ over distinct candidate pairs;
    ``match_loss`` is 1 - PC. An empty blocking is infeasible for any
    ε < 1 (it loses every match) and has objective 0 by convention.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise EvaluationError(f"epsilon must be in [0, 1], got {epsilon}")

    try:
        keys = result.pair_keys(dataset)
    except DatasetError:
        # Blocks referencing ids outside the dataset keep the original
        # set semantics (foreign pairs count as candidates, never as
        # true positives).
        candidates = result.distinct_pairs
        num_candidates = len(candidates)
        true_positives = len(candidates & dataset.true_matches)
    else:
        from repro.evaluation.metrics import count_common_keys

        num_candidates = int(keys.size)
        true_positives = count_common_keys(keys, dataset.true_match_keys)

    total_true = dataset.num_true_matches
    non_match_share = (
        (num_candidates - true_positives) / num_candidates
        if num_candidates
        else 0.0
    )
    match_loss = 1.0 - (true_positives / total_true if total_true else 1.0)
    return ObjectiveValue(
        non_match_share=non_match_share,
        match_loss=match_loss,
        epsilon=epsilon,
        feasible=match_loss <= epsilon,
    )
