"""The four blocking measures PC, PQ, RR, FM plus PQ*, FM* (paper §6).

Definitions (with Γ the distinct candidate pairs, Γm the per-block
multiset of pairs, Ω all dataset pairs, and ``tp`` marking true
matches):

* PC  = |Γtp| / |Ωtp|   — pair completeness (recall of true matches)
* PQ  = |Γtp| / |Γ|     — pair quality over *distinct* pairs
* RR  = 1 - |Γ| / |Ω|   — reduction ratio
* FM  = harmonic mean of PC and PQ
* PQ* = |Γtp| / |Γm|    — the meta-blocking paper's PQ (redundant pairs)
* FM* = harmonic mean of PC and PQ*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import BipartiteBlockingResult, BlockingResult
from repro.errors import DatasetError, EvaluationError
from repro.records.dataset import Dataset, LinkedCorpus


def _harmonic(a: float, b: float) -> float:
    return 2.0 * a * b / (a + b) if (a + b) > 0.0 else 0.0


@dataclass(frozen=True)
class BlockingMetrics:
    """Quality measures of one blocking result."""

    pc: float
    pq: float
    rr: float
    fm: float
    pq_star: float
    fm_star: float
    num_blocks: int
    num_distinct_pairs: int
    num_multiset_pairs: int
    num_true_positives: int
    max_block_size: int

    def row(self) -> list[float]:
        """The headline measures in report order (PC, PQ, RR, FM)."""
        return [self.pc, self.pq, self.rr, self.fm]

    def __str__(self) -> str:
        return (
            f"PC={self.pc:.4f} PQ={self.pq:.4f} RR={self.rr:.4f} "
            f"FM={self.fm:.4f} (blocks={self.num_blocks}, "
            f"pairs={self.num_distinct_pairs})"
        )


def evaluate_blocks(
    result: BlockingResult, dataset: Dataset, *, engine: str = "array"
) -> BlockingMetrics:
    """Score a blocking result against the dataset's ground truth.

    The default ``array`` engine intersects the result's encoded
    ``uint64`` pair keys with the dataset's cached ``true_match_keys``
    (no Python pair sets); ``engine="legacy"`` runs the original
    set-based path, kept as the equivalence/benchmark reference.
    """
    if engine == "array":
        return _evaluate_array(result, dataset)
    if engine == "legacy":
        return _evaluate_legacy(result, dataset)
    raise EvaluationError(f"unknown evaluation engine {engine!r}")


def count_common_keys(sorted_keys: np.ndarray, probe_keys: np.ndarray) -> int:
    """|A ∩ B| for two sorted unique key arrays, probing the smaller.

    ``np.searchsorted`` membership is O(|B| log |A|) — unlike
    ``np.intersect1d``, which re-sorts the concatenation of both sides.
    """
    if not sorted_keys.size or not probe_keys.size:
        return 0
    if probe_keys.size > sorted_keys.size:
        sorted_keys, probe_keys = probe_keys, sorted_keys
    positions = np.searchsorted(sorted_keys, probe_keys)
    positions = np.minimum(positions, sorted_keys.size - 1)
    return int((sorted_keys[positions] == probe_keys).sum())


def _evaluate_array(result: BlockingResult, dataset: Dataset) -> BlockingMetrics:
    # No membership pre-check: unknown block ids surface as encode
    # errors from the dataset codec.
    try:
        candidate_keys = result.pair_keys(dataset)
    except DatasetError as exc:
        raise EvaluationError(f"block references unknown record: {exc}") from None
    truth_keys = dataset.true_match_keys
    true_positives = count_common_keys(candidate_keys, truth_keys)
    return _metrics_from_counts(
        result,
        dataset,
        true_positives=true_positives,
        total_true=int(truth_keys.size),
        num_distinct=int(candidate_keys.size),
    )


def _evaluate_legacy(result: BlockingResult, dataset: Dataset) -> BlockingMetrics:
    for block in result.blocks:
        for record_id in block:
            if record_id not in dataset:
                raise EvaluationError(
                    f"block references unknown record {record_id!r}"
                )
    candidate_pairs = result.distinct_pairs
    true_matches = dataset.true_matches
    return _metrics_from_counts(
        result,
        dataset,
        true_positives=len(candidate_pairs & true_matches),
        total_true=len(true_matches),
        num_distinct=len(candidate_pairs),
    )


@dataclass(frozen=True)
class LinkageMetrics:
    """Clean-clean measures of one bipartite blocking result.

    Same definitions as :class:`BlockingMetrics` with the clean-clean
    pair spaces: Γ is the cross-side candidate set, Ω is the |S|×|T|
    cross product, and Ωtp is the bipartite ground truth (entities
    labelled on both sides).
    """

    pc: float
    pq: float
    rr: float
    fm: float
    pq_star: float
    fm_star: float
    num_blocks: int
    num_distinct_pairs: int
    num_multiset_pairs: int
    num_true_positives: int
    max_block_size: int

    def row(self) -> list[float]:
        """The headline measures in report order (PC, PQ, RR, FM)."""
        return [self.pc, self.pq, self.rr, self.fm]

    def __str__(self) -> str:
        return (
            f"PC={self.pc:.4f} PQ={self.pq:.4f} RR={self.rr:.4f} "
            f"FM={self.fm:.4f} (blocks={self.num_blocks}, "
            f"cross pairs={self.num_distinct_pairs})"
        )


def evaluate_linkage(
    result: BipartiteBlockingResult,
    linked: LinkedCorpus | None = None,
    *,
    engine: str = "array",
) -> LinkageMetrics:
    """Score a linkage result against a bipartite ground truth.

    ``linked`` defaults to the result's attached corpus. The ``array``
    engine intersects the result's bipartite ``uint64`` cross-pair keys
    with ``linked.true_match_keys``; ``engine="legacy"`` runs the
    set-based reference path over ``(source_id, target_id)`` tuples.
    Within-side pairs never enter either computation — the candidate
    set is the cross-side enumeration by construction.
    """
    if linked is None:
        if not isinstance(result, BipartiteBlockingResult):
            raise EvaluationError(
                "evaluate_linkage needs a BipartiteBlockingResult or an "
                "explicit LinkedCorpus"
            )
        linked = result._require_linked()
    if not isinstance(result, BipartiteBlockingResult):
        from repro.core.base import as_bipartite

        result = as_bipartite(result, linked)
    elif result.linked is not linked:
        from repro.core.base import as_bipartite

        result = as_bipartite(result, linked)
    if engine == "array":
        try:
            candidate_keys = result.cross_pair_keys
        except DatasetError as exc:
            raise EvaluationError(
                f"block references unknown record: {exc}"
            ) from None
        truth_keys = linked.true_match_keys
        true_positives = count_common_keys(candidate_keys, truth_keys)
        total_true = int(truth_keys.size)
        num_distinct = int(candidate_keys.size)
    elif engine == "legacy":
        union = linked.union
        for block in result.blocks:
            for record_id in block:
                if record_id not in union:
                    raise EvaluationError(
                        f"block references unknown record {record_id!r}"
                    )
        candidate_pairs = result.cross_pairs_legacy()
        true_matches = linked.true_matches
        true_positives = len(candidate_pairs & true_matches)
        total_true = len(true_matches)
        num_distinct = len(candidate_pairs)
    else:
        raise EvaluationError(f"unknown evaluation engine {engine!r}")

    total_pairs = linked.total_pairs
    num_multiset = result.num_cross_multiset_comparisons
    pc = true_positives / total_true if total_true else 0.0
    pq = true_positives / num_distinct if num_distinct else 0.0
    pq_star = true_positives / num_multiset if num_multiset else 0.0
    rr = 1.0 - num_distinct / total_pairs if total_pairs else 0.0
    return LinkageMetrics(
        pc=pc,
        pq=pq,
        rr=rr,
        fm=_harmonic(pc, pq),
        pq_star=pq_star,
        fm_star=_harmonic(pc, pq_star),
        num_blocks=result.num_blocks,
        num_distinct_pairs=num_distinct,
        num_multiset_pairs=num_multiset,
        num_true_positives=true_positives,
        max_block_size=result.max_block_size,
    )


def _metrics_from_counts(
    result: BlockingResult,
    dataset: Dataset,
    *,
    true_positives: int,
    total_true: int,
    num_distinct: int,
) -> BlockingMetrics:
    total_pairs = dataset.total_pairs
    num_multiset = result.num_multiset_comparisons

    pc = true_positives / total_true if total_true else 0.0
    pq = true_positives / num_distinct if num_distinct else 0.0
    pq_star = true_positives / num_multiset if num_multiset else 0.0
    rr = 1.0 - num_distinct / total_pairs if total_pairs else 0.0

    return BlockingMetrics(
        pc=pc,
        pq=pq,
        rr=rr,
        fm=_harmonic(pc, pq),
        pq_star=pq_star,
        fm_star=_harmonic(pc, pq_star),
        num_blocks=result.num_blocks,
        num_distinct_pairs=num_distinct,
        num_multiset_pairs=num_multiset,
        num_true_positives=true_positives,
        max_block_size=result.max_block_size,
    )
