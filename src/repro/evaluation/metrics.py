"""The four blocking measures PC, PQ, RR, FM plus PQ*, FM* (paper §6).

Definitions (with Γ the distinct candidate pairs, Γm the per-block
multiset of pairs, Ω all dataset pairs, and ``tp`` marking true
matches):

* PC  = |Γtp| / |Ωtp|   — pair completeness (recall of true matches)
* PQ  = |Γtp| / |Γ|     — pair quality over *distinct* pairs
* RR  = 1 - |Γ| / |Ω|   — reduction ratio
* FM  = harmonic mean of PC and PQ
* PQ* = |Γtp| / |Γm|    — the meta-blocking paper's PQ (redundant pairs)
* FM* = harmonic mean of PC and PQ*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import BlockingResult
from repro.errors import EvaluationError
from repro.records.dataset import Dataset


def _harmonic(a: float, b: float) -> float:
    return 2.0 * a * b / (a + b) if (a + b) > 0.0 else 0.0


@dataclass(frozen=True)
class BlockingMetrics:
    """Quality measures of one blocking result."""

    pc: float
    pq: float
    rr: float
    fm: float
    pq_star: float
    fm_star: float
    num_blocks: int
    num_distinct_pairs: int
    num_multiset_pairs: int
    num_true_positives: int
    max_block_size: int

    def row(self) -> list[float]:
        """The headline measures in report order (PC, PQ, RR, FM)."""
        return [self.pc, self.pq, self.rr, self.fm]

    def __str__(self) -> str:
        return (
            f"PC={self.pc:.4f} PQ={self.pq:.4f} RR={self.rr:.4f} "
            f"FM={self.fm:.4f} (blocks={self.num_blocks}, "
            f"pairs={self.num_distinct_pairs})"
        )


def evaluate_blocks(result: BlockingResult, dataset: Dataset) -> BlockingMetrics:
    """Score a blocking result against the dataset's ground truth."""
    for block in result.blocks:
        for record_id in block:
            if record_id not in dataset:
                raise EvaluationError(
                    f"block references unknown record {record_id!r}"
                )

    candidate_pairs = result.distinct_pairs
    true_matches = dataset.true_matches
    true_positives = len(candidate_pairs & true_matches)

    total_true = len(true_matches)
    total_pairs = dataset.total_pairs
    num_distinct = len(candidate_pairs)
    num_multiset = result.num_multiset_comparisons

    pc = true_positives / total_true if total_true else 0.0
    pq = true_positives / num_distinct if num_distinct else 0.0
    pq_star = true_positives / num_multiset if num_multiset else 0.0
    rr = 1.0 - num_distinct / total_pairs if total_pairs else 0.0

    return BlockingMetrics(
        pc=pc,
        pq=pq,
        rr=rr,
        fm=_harmonic(pc, pq),
        pq_star=pq_star,
        fm_star=_harmonic(pc, pq_star),
        num_blocks=result.num_blocks,
        num_distinct_pairs=num_distinct,
        num_multiset_pairs=num_multiset,
        num_true_positives=true_positives,
        max_block_size=result.max_block_size,
    )
