"""Seed sweeps and bootstrap confidence intervals for metrics.

Table 2 reports mean±std deltas over repeated runs; this module holds
the generic machinery: run a blocker factory across seeds, aggregate
any metric attribute, and bootstrap a confidence interval for the
difference of two configurations.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.base import Blocker
from repro.errors import EvaluationError
from repro.evaluation.metrics import BlockingMetrics
from repro.evaluation.runner import run_blocking
from repro.records.dataset import Dataset
from repro.utils.rand import rng_from_seed


@dataclass(frozen=True)
class MetricSummary:
    """Mean / std / extremes of one metric over repeated runs."""

    metric: str
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:
        return f"{self.metric}: {self.mean:.4f}±{self.std:.4f} (n={self.n})"


def seed_sweep(
    blocker_factory: Callable[[int], Blocker],
    dataset: Dataset,
    seeds: Iterable[int],
) -> list[BlockingMetrics]:
    """Run ``blocker_factory(seed)`` for every seed, collect metrics."""
    return [
        run_blocking(blocker_factory(seed), dataset).metrics for seed in seeds
    ]


def summarise(metrics_list: Sequence[BlockingMetrics], metric: str) -> MetricSummary:
    """Aggregate one metric attribute over a sweep."""
    if not metrics_list:
        raise EvaluationError("cannot summarise an empty sweep")
    if not hasattr(metrics_list[0], metric):
        raise EvaluationError(f"unknown metric {metric!r}")
    values = [float(getattr(m, metric)) for m in metrics_list]
    return MetricSummary(
        metric=metric,
        mean=statistics.mean(values),
        std=statistics.stdev(values) if len(values) > 1 else 0.0,
        minimum=min(values),
        maximum=max(values),
        n=len(values),
    )


def bootstrap_difference(
    values_a: Sequence[float],
    values_b: Sequence[float],
    *,
    num_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Bootstrap CI for mean(values_a) - mean(values_b).

    Returns (point estimate, lower, upper). Paired resampling is not
    assumed — the two samples are resampled independently.
    """
    if not values_a or not values_b:
        raise EvaluationError("both samples must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    rng = rng_from_seed(seed, "bootstrap", len(values_a), len(values_b))
    point = statistics.mean(values_a) - statistics.mean(values_b)
    diffs = []
    for _ in range(num_resamples):
        sample_a = [rng.choice(values_a) for _ in values_a]
        sample_b = [rng.choice(values_b) for _ in values_b]
        diffs.append(statistics.mean(sample_a) - statistics.mean(sample_b))
    diffs.sort()
    alpha = (1.0 - confidence) / 2.0
    lower = diffs[int(alpha * num_resamples)]
    upper = diffs[min(int((1.0 - alpha) * num_resamples), num_resamples - 1)]
    return point, lower, upper
