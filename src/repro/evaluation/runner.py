"""Experiment runner: time a blocker, evaluate its blocks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import Blocker, BlockingResult
from repro.errors import EvaluationError
from repro.evaluation.metrics import BlockingMetrics, evaluate_blocks
from repro.records.dataset import Dataset


@dataclass(frozen=True)
class ExperimentResult:
    """A timed, evaluated blocking run."""

    blocker_name: str
    description: str
    metrics: BlockingMetrics
    seconds: float
    result: BlockingResult

    @property
    def sf_seconds(self) -> float:
        """Semantic-function build time (0 for non-semantic blockers)."""
        return float(self.result.metadata.get("sf_seconds", 0.0))


def run_blocking(blocker: Blocker, dataset: Dataset) -> ExperimentResult:
    """Run one blocker over one dataset, timing the block() call."""
    start = time.perf_counter()
    result = blocker.block(dataset)
    elapsed = time.perf_counter() - start
    metrics = evaluate_blocks(result, dataset)
    return ExperimentResult(
        blocker_name=blocker.name,
        description=blocker.describe(),
        metrics=metrics,
        seconds=elapsed,
        result=result.with_timing(elapsed),
    )


def run_all(blockers: Iterable[Blocker], dataset: Dataset) -> list[ExperimentResult]:
    """Run several blockers over the same dataset."""
    return [run_blocking(b, dataset) for b in blockers]


def best_by(
    results: Sequence[ExperimentResult], measure: str = "fm"
) -> ExperimentResult:
    """The run maximising one metric attribute (the survey's protocol:
    report each technique at its best-performing parameter setting)."""
    if not results:
        raise EvaluationError("best_by needs at least one result")
    if not hasattr(results[0].metrics, measure):
        raise EvaluationError(f"unknown measure {measure!r}")
    return max(results, key=lambda r: getattr(r.metrics, measure))
