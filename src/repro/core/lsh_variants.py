"""LSH variants from the paper's related work (§2): multi-probe LSH and
LSH forest, adapted to blocking.

The paper positions these as alternative trade-offs to plain banded
LSH: multi-probe LSH (Lv et al., VLDB 2007) reaches the recall of many
hash tables with fewer tables by also *probing* perturbed bucket keys;
LSH forest (Bawa et al., WWW 2005) replaces fixed-length band keys with
per-table prefix trees whose depth adapts to bucket occupancy. Both are
implemented here as blockers so ablation benchmarks can compare the
design choices directly.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily


class _MinHasherWithRunnerUp(MinHasher):
    """Minhash that also exposes each function's second-smallest value.

    Multi-probe perturbation for minhash replaces one signature
    component with its runner-up: the nearest alternative bucket in
    which the record would have landed.
    """

    def signature_with_runner_up(
        self, shingle_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if shingle_ids.size == 0:
            sentinel = np.full(self.num_hashes, MERSENNE_PRIME_61, dtype=np.uint64)
            return sentinel, sentinel.copy()
        matrix = self._family.hash_matrix(shingle_ids)
        if matrix.shape[1] == 1:
            minima = matrix[:, 0]
            return minima, minima.copy()
        ordered = np.sort(matrix, axis=1)
        return ordered[:, 0], ordered[:, 1]


class MultiProbeLSHBlocker(Blocker):
    """Multi-probe banded minhash blocking.

    Each record is inserted under its exact band key per table and
    additionally *probes* the keys obtained by swapping one of the k
    rows for its runner-up hash value. A pair co-blocks when one
    record's exact key equals the other's exact or probe key — so fewer
    tables achieve the recall of plain LSH with more tables.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        num_probes: int | None = None,
        seed: int = 0,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.num_probes = k if num_probes is None else num_probes
        if not 0 <= self.num_probes <= k:
            raise ConfigurationError(
                f"num_probes must be in [0, k]; got {self.num_probes}"
            )
        self.seed = seed
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = _MinHasherWithRunnerUp(num_hashes=k * l, seed=seed)
        self.name = name or "MP-LSH"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"probes={self.num_probes})"
        )

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        exact_buckets: list[dict] = [defaultdict(list) for _ in range(self.l)]
        probe_membership: list[dict] = [defaultdict(list) for _ in range(self.l)]

        for record in dataset:
            minima, runners = self.hasher.signature_with_runner_up(
                self.shingler.shingle_ids(record)
            )
            for table in range(self.l):
                lo = table * self.k
                band = tuple(int(v) for v in minima[lo : lo + self.k])
                exact_buckets[table][band].append(record.record_id)
                for probe_row in range(self.num_probes):
                    perturbed = list(band)
                    perturbed[probe_row] = int(runners[lo + probe_row])
                    probe_membership[table][tuple(perturbed)].append(
                        record.record_id
                    )

        groups: list[list[str]] = []
        for table in range(self.l):
            for key, members in exact_buckets[table].items():
                probers = [
                    rid
                    for rid in probe_membership[table].get(key, ())
                    if rid not in members
                ]
                group = members + probers
                if len(group) >= 2:
                    groups.append(group)

        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "num_probes": self.num_probes,
            },
        )


class LSHForestBlocker(Blocker):
    """LSH-forest-style blocking with adaptive band-prefix depth.

    Each of the ``l`` tables sorts records by their k-value hash tuple
    and recursively splits any bucket larger than ``max_block_size`` on
    the next tuple position — the prefix-tree descent of LSH forest.
    Buckets that cannot split further (prefix exhausted) are kept as-is.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        max_block_size: int = 50,
        seed: int = 0,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        if max_block_size < 2:
            raise ConfigurationError(
                f"max_block_size must be >= 2, got {max_block_size}"
            )
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.max_block_size = max_block_size
        self.seed = seed
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "LSH-Forest"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"max_block={self.max_block_size})"
        )

    def _split(
        self,
        members: list[str],
        tuples: dict[str, tuple[int, ...]],
        depth: int,
    ) -> list[list[str]]:
        if len(members) <= self.max_block_size or depth >= self.k:
            return [members]
        partitions: dict[int, list[str]] = defaultdict(list)
        for record_id in members:
            partitions[tuples[record_id][depth]].append(record_id)
        if len(partitions) == 1:
            # All equal on this position; descend without splitting.
            return self._split(members, tuples, depth + 1)
        result: list[list[str]] = []
        for bucket in partitions.values():
            result.extend(self._split(bucket, tuples, depth + 1))
        return result

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        signatures: dict[str, np.ndarray] = {
            record.record_id: self.hasher.signature(
                self.shingler.shingle_ids(record)
            )
            for record in dataset
        }
        groups: list[list[str]] = []
        for table in range(self.l):
            lo = table * self.k
            tuples = {
                rid: tuple(int(v) for v in sig[lo : lo + self.k])
                for rid, sig in signatures.items()
            }
            # Root split on the first position, then adaptive descent.
            roots: dict[int, list[str]] = defaultdict(list)
            for rid, values in tuples.items():
                roots[values[0]].append(rid)
            for bucket in roots.values():
                groups.extend(self._split(bucket, tuples, depth=1))

        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "max_block_size": self.max_block_size,
            },
        )
