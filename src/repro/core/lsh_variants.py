"""LSH variants from the paper's related work (§2): multi-probe LSH and
LSH forest, adapted to blocking.

The paper positions these as alternative trade-offs to plain banded
LSH: multi-probe LSH (Lv et al., VLDB 2007) reaches the recall of many
hash tables with fewer tables by also *probing* perturbed bucket keys;
LSH forest (Bawa et al., WWW 2005) replaces fixed-length band keys with
per-table prefix trees whose depth adapts to bucket occupancy. Both are
implemented here as blockers so ablation benchmarks can compare the
design choices directly.

Like :class:`~repro.core.lsh_blocker.LSHBlocker`, both variants run on
the corpus-level batch signature engine by default (``batch=True``) and
keep the per-record path as the equivalence/benchmark reference.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands_matrix
from repro.lsh.index import grouped_indices
from repro.lsh.sharding import runner_up_signature_slabs, signature_slabs
from repro.minhash.corpus import ShingledCorpus
from repro.minhash.minhash import MinHasher, compact_vocabulary, sentinel_stream
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily
from repro.utils.parallel import (
    ShardPool,
    chunk_spans,
    effective_processes,
    run_chunked,
)


class _MinHasherWithRunnerUp(MinHasher):
    """Minhash that also exposes each function's second-smallest value.

    Multi-probe perturbation for minhash replaces one signature
    component with its runner-up: the nearest alternative bucket in
    which the record would have landed. Runner-ups count duplicate hash
    values (a tied minimum is its own runner-up), matching
    ``np.sort(...)[:, 1]`` on the full per-record hash matrix.
    """

    def signature_with_runner_up(
        self, shingle_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if shingle_ids.size == 0:
            sentinel = np.full(self.num_hashes, MERSENNE_PRIME_61, dtype=np.uint64)
            return sentinel, sentinel.copy()
        matrix = self._family.hash_matrix(shingle_ids)
        if matrix.shape[1] == 1:
            minima = matrix[:, 0]
            return minima, minima.copy()
        ordered = np.sort(matrix, axis=1)
        return ordered[:, 0], ordered[:, 1]

    def signature_matrix_with_runner_up(
        self,
        corpus: ShingledCorpus,
        *,
        chunk_elements: int = 2_000_000,
        workers: int | None = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch minima and runner-ups for a whole corpus.

        Works like :meth:`MinHasher.signature_matrix` (vocabulary-level
        hashing + ``reduceat`` minima over the CSR token stream), then
        recovers each segment's runner-up by masking the *first*
        occurrence of the minimum with the sentinel and reducing again —
        duplicated minima therefore survive as their own runner-up,
        byte-identical to the per-record sort. Like the plain signature
        matrix, hash-function chunks are independent and may be
        evaluated by ``workers`` threads without changing the result.
        """
        n = corpus.num_records
        sentinel = np.uint64(MERSENNE_PRIME_61)
        minima = np.empty((n, self.num_hashes), dtype=np.uint64)
        runners = np.empty((n, self.num_hashes), dtype=np.uint64)
        if n == 0:
            return minima, runners
        if corpus.num_tokens == 0:
            minima.fill(sentinel)
            runners.fill(sentinel)
            return minima, runners

        counts = corpus.counts
        single_rows = counts == 1
        tokens_ext, starts, empty_rows = sentinel_stream(corpus)
        vocab_hashes, tokens_ext = compact_vocabulary(corpus, tokens_ext)
        stream = tokens_ext.shape[0]
        segment_lengths = np.diff(np.append(starts, stream))
        columns = np.arange(stream, dtype=np.int64)[None, :]

        def compute(lo: int, hi: int) -> None:
            gathered = self.gathered_span(vocab_hashes, tokens_ext, lo, hi)
            min1 = np.minimum.reduceat(gathered, starts, axis=1)
            # Position of the first occurrence of each segment's minimum.
            expanded = np.repeat(min1, segment_lengths, axis=1)
            position = np.where(gathered == expanded, columns, stream)
            first = np.minimum.reduceat(position, starts, axis=1)
            # Empty segments may report an out-of-range or neighbouring
            # position; clipping lands on the sentinel column (a no-op
            # write) or on the neighbour's own first-minimum position
            # (an idempotent write).
            first = np.minimum(first, stream - 1)
            gathered[np.arange(hi - lo)[:, None], first] = sentinel
            min2 = np.minimum.reduceat(gathered, starts, axis=1)
            min1[:, empty_rows] = sentinel
            min2[:, empty_rows] = sentinel
            min2[:, single_rows] = min1[:, single_rows]
            minima[:, lo:hi] = min1.T
            runners[:, lo:hi] = min2.T

        run_chunked(
            compute,
            chunk_spans(
                self.num_hashes, self.rows_per_chunk(stream, chunk_elements)
            ),
            workers,
        )
        return minima, runners


class MultiProbeLSHBlocker(Blocker):
    """Multi-probe banded minhash blocking.

    Each record is inserted under its exact band key per table and
    additionally *probes* the keys obtained by swapping one of the k
    rows for its runner-up hash value. A pair co-blocks when one
    record's exact key equals the other's exact or probe key — so fewer
    tables achieve the recall of plain LSH with more tables.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        num_probes: int | None = None,
        seed: int = 0,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.num_probes = k if num_probes is None else num_probes
        if not 0 <= self.num_probes <= k:
            raise ConfigurationError(
                f"num_probes must be in [0, k]; got {self.num_probes}"
            )
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = _MinHasherWithRunnerUp(num_hashes=k * l, seed=seed)
        self.name = name or "MP-LSH"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"probes={self.num_probes})"
        )

    def _block_batch(self, dataset: Dataset) -> list[list[str]]:
        if effective_processes(self.processes, self.pool) > 1 and len(dataset):
            # Record slabs shingled/minhashed across processes; the
            # concatenated matrices equal the one-shot pass byte for
            # byte, so the probe grouping below is unchanged. (An empty
            # dataset yields no slabs to concatenate — the serial path
            # handles it.)
            parts = runner_up_signature_slabs(
                self.shingler, self.hasher, dataset, self.processes,
                workers=self.workers, pool=self.pool,
            )
            record_ids = tuple(rid for p in parts for rid in p[0])
            minima = np.concatenate([p[1] for p in parts])
            runners = np.concatenate([p[2] for p in parts])
        else:
            corpus = self.shingler.shingle_corpus(dataset)
            record_ids = corpus.record_ids
            minima, runners = self.hasher.signature_matrix_with_runner_up(
                corpus, workers=self.workers
            )
        n = len(record_ids)
        ids = np.asarray(record_ids, dtype=object)
        exact_keys = split_bands_matrix(minima, self.k, self.l)

        groups: list[list[str]] = []
        entry_record = np.repeat(np.arange(n), self.num_probes)
        for table in range(self.l):
            lo = table * self.k
            band = minima[:, lo : lo + self.k]
            # Probe keys in (record-major, probe-row) order, matching the
            # per-record insertion order of the legacy path.
            probe_cols = []
            for probe_row in range(self.num_probes):
                perturbed = band.copy()
                perturbed[:, probe_row] = runners[:, lo + probe_row]
                probe_cols.append(
                    np.ascontiguousarray(perturbed)
                    .reshape(-1)
                    .view(f"S{8 * self.k}")
                )
            if probe_cols:
                probe_keys = np.stack(probe_cols, axis=1).reshape(-1)
            else:
                probe_keys = np.empty(0, dtype=exact_keys.dtype)

            all_keys = np.concatenate([exact_keys[:, table], probe_keys])
            _, labels = np.unique(all_keys, return_inverse=True)
            exact_labels = labels[:n]
            probe_labels = labels[n:]
            probes_by_label = {
                int(probe_labels[group[0]]): group
                for group in grouped_indices(probe_labels)
            }
            for members in grouped_indices(exact_labels):
                probe_group = probes_by_label.get(int(exact_labels[members[0]]))
                group_ids = ids[members].tolist()
                if probe_group is not None:
                    probe_records = entry_record[probe_group]
                    keep = ~np.isin(probe_records, members)
                    group_ids.extend(ids[probe_records[keep]].tolist())
                if len(group_ids) >= 2:
                    groups.append(group_ids)
        return groups

    def _block_per_record(self, dataset: Dataset) -> list[list[str]]:
        exact_buckets: list[dict] = [defaultdict(list) for _ in range(self.l)]
        probe_membership: list[dict] = [defaultdict(list) for _ in range(self.l)]

        for record in dataset:
            minima, runners = self.hasher.signature_with_runner_up(
                self.shingler.shingle_ids(record)
            )
            for table in range(self.l):
                lo = table * self.k
                band = tuple(int(v) for v in minima[lo : lo + self.k])
                exact_buckets[table][band].append(record.record_id)
                for probe_row in range(self.num_probes):
                    perturbed = list(band)
                    perturbed[probe_row] = int(runners[lo + probe_row])
                    probe_membership[table][tuple(perturbed)].append(
                        record.record_id
                    )

        groups: list[list[str]] = []
        for table in range(self.l):
            for key, members in exact_buckets[table].items():
                probers = [
                    rid
                    for rid in probe_membership[table].get(key, ())
                    if rid not in members
                ]
                group = members + probers
                if len(group) >= 2:
                    groups.append(group)
        return groups

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        groups = (
            self._block_batch(dataset)
            if self.batch
            else self._block_per_record(dataset)
        )
        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "num_probes": self.num_probes,
                "engine": "batch" if self.batch else "per-record",
            },
        )


class LSHForestBlocker(Blocker):
    """LSH-forest-style blocking with adaptive band-prefix depth.

    Each of the ``l`` tables sorts records by their k-value hash tuple
    and recursively splits any bucket larger than ``max_block_size`` on
    the next tuple position — the prefix-tree descent of LSH forest.
    Buckets that cannot split further (prefix exhausted) are kept as-is.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        max_block_size: int = 50,
        seed: int = 0,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        if max_block_size < 2:
            raise ConfigurationError(
                f"max_block_size must be >= 2, got {max_block_size}"
            )
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.max_block_size = max_block_size
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "LSH-Forest"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"max_block={self.max_block_size})"
        )

    def _split(
        self, members: np.ndarray, band: np.ndarray, depth: int
    ) -> list[np.ndarray]:
        """Prefix-tree descent over row indices.

        ``band`` is the table's (n, k) signature slice; partitions are
        in first-occurrence order with members ascending, exactly like a
        dict-of-lists insertion loop.
        """
        if members.size <= self.max_block_size or depth >= self.k:
            return [members]
        partitions = grouped_indices(band[members, depth])
        if len(partitions) == 1:
            # All equal on this position; descend without splitting.
            return self._split(members, band, depth + 1)
        result: list[np.ndarray] = []
        for part in partitions:
            result.extend(self._split(members[part], band, depth + 1))
        return result

    def _signatures(self, dataset: Dataset) -> tuple[tuple[str, ...], np.ndarray]:
        if self.batch:
            if effective_processes(self.processes, self.pool) > 1 and len(dataset):
                parts = signature_slabs(
                    self.shingler, self.hasher, dataset, self.processes,
                    workers=self.workers, pool=self.pool,
                )
                return (
                    tuple(rid for p in parts for rid in p[0]),
                    np.concatenate([p[1] for p in parts]),
                )
            corpus = self.shingler.shingle_corpus(dataset)
            return corpus.record_ids, self.hasher.signature_matrix(
                corpus, workers=self.workers
            )
        ids = []
        rows = np.empty((len(dataset), self.hasher.num_hashes), dtype=np.uint64)
        for i, record in enumerate(dataset):
            ids.append(record.record_id)
            rows[i] = self.hasher.signature(self.shingler.shingle_ids(record))
        return tuple(ids), rows

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        record_ids, signatures = self._signatures(dataset)
        ids = np.asarray(record_ids, dtype=object)
        groups: list[list[str]] = []
        for table in range(self.l):
            band = signatures[:, table * self.k : (table + 1) * self.k]
            # Root split on the first position, then adaptive descent.
            for bucket in grouped_indices(band[:, 0]):
                for rows in self._split(bucket, band, depth=1):
                    groups.append(ids[rows].tolist())

        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "max_block_size": self.max_block_size,
                "engine": "batch" if self.batch else "per-record",
            },
        )
