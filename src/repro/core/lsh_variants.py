"""LSH variants from the paper's related work (§2): multi-probe LSH and
LSH forest, adapted to blocking.

The paper positions these as alternative trade-offs to plain banded
LSH: multi-probe LSH (Lv et al., VLDB 2007) reaches the recall of many
hash tables with fewer tables by also *probing* perturbed bucket keys;
LSH forest (Bawa et al., WWW 2005) replaces fixed-length band keys with
per-table prefix trees whose depth adapts to bucket occupancy. Both are
implemented here as blockers so ablation benchmarks can compare the
design choices directly.

Like :class:`~repro.core.lsh_blocker.LSHBlocker`, both variants run on
the corpus-level batch signature engine by default (``batch=True``) and
keep the per-record path as the equivalence/benchmark reference.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.core.base import (
    BipartiteBlockingResult,
    Blocker,
    BlockingResult,
    OnlineIndex,
    _coerce_linked,
    make_blocks,
)
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands_matrix
from repro.lsh.index import grouped_indices
from repro.lsh.sharding import runner_up_signature_slabs, signature_slabs
from repro.minhash.corpus import ShingledCorpus, ShingleVocabulary
from repro.minhash.minhash import MinHasher, compact_vocabulary, sentinel_stream
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.utils.hashing import MERSENNE_PRIME_61, UniversalHashFamily
from repro.utils.parallel import (
    ShardPool,
    chunk_spans,
    effective_processes,
    run_chunked,
)


class _MinHasherWithRunnerUp(MinHasher):
    """Minhash that also exposes each function's second-smallest value.

    Multi-probe perturbation for minhash replaces one signature
    component with its runner-up: the nearest alternative bucket in
    which the record would have landed. Runner-ups count duplicate hash
    values (a tied minimum is its own runner-up), matching
    ``np.sort(...)[:, 1]`` on the full per-record hash matrix.
    """

    def signature_with_runner_up(
        self, shingle_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if shingle_ids.size == 0:
            sentinel = np.full(self.num_hashes, MERSENNE_PRIME_61, dtype=np.uint64)
            return sentinel, sentinel.copy()
        matrix = self._family.hash_matrix(shingle_ids)
        if matrix.shape[1] == 1:
            minima = matrix[:, 0]
            return minima, minima.copy()
        ordered = np.sort(matrix, axis=1)
        return ordered[:, 0], ordered[:, 1]

    def signature_matrix_with_runner_up(
        self,
        corpus: ShingledCorpus,
        *,
        chunk_elements: int = 2_000_000,
        workers: int | None = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch minima and runner-ups for a whole corpus.

        Works like :meth:`MinHasher.signature_matrix` (vocabulary-level
        hashing + ``reduceat`` minima over the CSR token stream), then
        recovers each segment's runner-up by masking the *first*
        occurrence of the minimum with the sentinel and reducing again —
        duplicated minima therefore survive as their own runner-up,
        byte-identical to the per-record sort. Like the plain signature
        matrix, hash-function chunks are independent and may be
        evaluated by ``workers`` threads without changing the result.
        """
        n = corpus.num_records
        sentinel = np.uint64(MERSENNE_PRIME_61)
        minima = np.empty((n, self.num_hashes), dtype=np.uint64)
        runners = np.empty((n, self.num_hashes), dtype=np.uint64)
        if n == 0:
            return minima, runners
        if corpus.num_tokens == 0:
            minima.fill(sentinel)
            runners.fill(sentinel)
            return minima, runners

        counts = corpus.counts
        single_rows = counts == 1
        tokens_ext, starts, empty_rows = sentinel_stream(corpus)
        vocab_hashes, tokens_ext = compact_vocabulary(corpus, tokens_ext)
        stream = tokens_ext.shape[0]
        segment_lengths = np.diff(np.append(starts, stream))
        columns = np.arange(stream, dtype=np.int64)[None, :]

        def compute(lo: int, hi: int) -> None:
            gathered = self.gathered_span(vocab_hashes, tokens_ext, lo, hi)
            min1 = np.minimum.reduceat(gathered, starts, axis=1)
            # Position of the first occurrence of each segment's minimum.
            expanded = np.repeat(min1, segment_lengths, axis=1)
            position = np.where(gathered == expanded, columns, stream)
            first = np.minimum.reduceat(position, starts, axis=1)
            # Empty segments may report an out-of-range or neighbouring
            # position; clipping lands on the sentinel column (a no-op
            # write) or on the neighbour's own first-minimum position
            # (an idempotent write).
            first = np.minimum(first, stream - 1)
            gathered[np.arange(hi - lo)[:, None], first] = sentinel
            min2 = np.minimum.reduceat(gathered, starts, axis=1)
            min1[:, empty_rows] = sentinel
            min2[:, empty_rows] = sentinel
            min2[:, single_rows] = min1[:, single_rows]
            minima[:, lo:hi] = min1.T
            runners[:, lo:hi] = min2.T

        run_chunked(
            compute,
            chunk_spans(
                self.num_hashes, self.rows_per_chunk(stream, chunk_elements)
            ),
            workers,
        )
        return minima, runners


class MultiProbeLSHBlocker(Blocker):
    """Multi-probe banded minhash blocking.

    Each record is inserted under its exact band key per table and
    additionally *probes* the keys obtained by swapping one of the k
    rows for its runner-up hash value. A pair co-blocks when one
    record's exact key equals the other's exact or probe key — so fewer
    tables achieve the recall of plain LSH with more tables.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        num_probes: int | None = None,
        seed: int = 0,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.num_probes = k if num_probes is None else num_probes
        if not 0 <= self.num_probes <= k:
            raise ConfigurationError(
                f"num_probes must be in [0, k]; got {self.num_probes}"
            )
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = _MinHasherWithRunnerUp(num_hashes=k * l, seed=seed)
        self.name = name or "MP-LSH"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"probes={self.num_probes})"
        )

    def _block_batch(self, dataset: Dataset) -> list[list[str]]:
        if effective_processes(self.processes, self.pool) > 1 and len(dataset):
            # Record slabs shingled/minhashed across processes; the
            # concatenated matrices equal the one-shot pass byte for
            # byte, so the probe grouping below is unchanged. (An empty
            # dataset yields no slabs to concatenate — the serial path
            # handles it.)
            parts = runner_up_signature_slabs(
                self.shingler, self.hasher, dataset, self.processes,
                workers=self.workers, pool=self.pool,
            )
            record_ids = tuple(rid for p in parts for rid in p[0])
            minima = np.concatenate([p[1] for p in parts])
            runners = np.concatenate([p[2] for p in parts])
        else:
            corpus = self.shingler.shingle_corpus(dataset)
            record_ids = corpus.record_ids
            minima, runners = self.hasher.signature_matrix_with_runner_up(
                corpus, workers=self.workers
            )
        return self._probe_groups(
            np.asarray(record_ids, dtype=object), minima, runners
        )

    def _probe_groups(
        self, ids: np.ndarray, minima: np.ndarray, runners: np.ndarray
    ) -> list[list[str]]:
        """Co-blocking groups from aligned (ids, minima, runner-ups).

        The grouping core of :meth:`_block_batch`, shared with
        :class:`OnlineMultiProbeIndex` so incremental blocks after
        removals reuse the batch rule verbatim: a bucket's group is its
        exact members plus the records probing its key.
        """
        n = ids.shape[0]
        exact_keys = split_bands_matrix(minima, self.k, self.l)

        groups: list[list[str]] = []
        entry_record = np.repeat(np.arange(n), self.num_probes)
        for table in range(self.l):
            lo = table * self.k
            band = minima[:, lo : lo + self.k]
            # Probe keys in (record-major, probe-row) order, matching the
            # per-record insertion order of the legacy path.
            probe_cols = []
            for probe_row in range(self.num_probes):
                perturbed = band.copy()
                perturbed[:, probe_row] = runners[:, lo + probe_row]
                probe_cols.append(
                    np.ascontiguousarray(perturbed)
                    .reshape(-1)
                    .view(f"S{8 * self.k}")
                )
            if probe_cols:
                probe_keys = np.stack(probe_cols, axis=1).reshape(-1)
            else:
                probe_keys = np.empty(0, dtype=exact_keys.dtype)

            all_keys = np.concatenate([exact_keys[:, table], probe_keys])
            _, labels = np.unique(all_keys, return_inverse=True)
            exact_labels = labels[:n]
            probe_labels = labels[n:]
            probes_by_label = {
                int(probe_labels[group[0]]): group
                for group in grouped_indices(probe_labels)
            }
            for members in grouped_indices(exact_labels):
                probe_group = probes_by_label.get(int(exact_labels[members[0]]))
                group_ids = ids[members].tolist()
                if probe_group is not None:
                    probe_records = entry_record[probe_group]
                    keep = ~np.isin(probe_records, members)
                    group_ids.extend(ids[probe_records[keep]].tolist())
                if len(group_ids) >= 2:
                    groups.append(group_ids)
        return groups

    def _block_per_record(self, dataset: Dataset) -> list[list[str]]:
        exact_buckets: list[dict] = [defaultdict(list) for _ in range(self.l)]
        probe_membership: list[dict] = [defaultdict(list) for _ in range(self.l)]

        for record in dataset:
            minima, runners = self.hasher.signature_with_runner_up(
                self.shingler.shingle_ids(record)
            )
            for table in range(self.l):
                lo = table * self.k
                band = tuple(int(v) for v in minima[lo : lo + self.k])
                exact_buckets[table][band].append(record.record_id)
                for probe_row in range(self.num_probes):
                    perturbed = list(band)
                    perturbed[probe_row] = int(runners[lo + probe_row])
                    probe_membership[table][tuple(perturbed)].append(
                        record.record_id
                    )

        groups: list[list[str]] = []
        for table in range(self.l):
            for key, members in exact_buckets[table].items():
                probers = [
                    rid
                    for rid in probe_membership[table].get(key, ())
                    if rid not in members
                ]
                group = members + probers
                if len(group) >= 2:
                    groups.append(group)
        return groups

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        groups = (
            self._block_batch(dataset)
            if self.batch
            else self._block_per_record(dataset)
        )
        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "num_probes": self.num_probes,
                "engine": "batch" if self.batch else "per-record",
            },
        )

    def online(
        self, records: Iterable[Record] = ()
    ) -> "OnlineMultiProbeIndex":
        """A mutable :class:`OnlineMultiProbeIndex` seeded with ``records``."""
        return OnlineMultiProbeIndex(self, records)

    def block_pair(self, source, target=None) -> BipartiteBlockingResult:
        """Clean-clean linkage on the online streaming path.

        Index the target, stream the source as a second slab, then emit
        the incremental index's blocks — the batch probe grouping over
        the union survivors. Probing alone would miss cross pairs that
        only co-occur through a *third* record's exact bucket (two
        probes of one key see each other only inside that bucket's
        group), so linkage runs the full union grouping, whose pair set
        is insertion-order independent and equals the filtered
        ``block(S∪T)`` oracle.
        """
        linked = _coerce_linked(source, target)
        start = time.perf_counter()
        index = self.online(linked.target.records)
        index.add_many(linked.source.records)
        blocks = index.blocks()
        elapsed = time.perf_counter() - start
        return BipartiteBlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "num_probes": self.num_probes,
                "engine": "linkage-online",
                "num_source": len(linked.source),
                "num_target": len(linked.target),
            },
            linked=linked,
        )


class LSHForestBlocker(Blocker):
    """LSH-forest-style blocking with adaptive band-prefix depth.

    Each of the ``l`` tables sorts records by their k-value hash tuple
    and recursively splits any bucket larger than ``max_block_size`` on
    the next tuple position — the prefix-tree descent of LSH forest.
    Buckets that cannot split further (prefix exhausted) are kept as-is.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        max_block_size: int = 50,
        seed: int = 0,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        if max_block_size < 2:
            raise ConfigurationError(
                f"max_block_size must be >= 2, got {max_block_size}"
            )
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.max_block_size = max_block_size
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.shingler = Shingler(self.attributes, q=q)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "LSH-Forest"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"max_block={self.max_block_size})"
        )

    def _split(
        self, members: np.ndarray, band: np.ndarray, depth: int
    ) -> list[np.ndarray]:
        """Prefix-tree descent over row indices.

        ``band`` is the table's (n, k) signature slice; partitions are
        in first-occurrence order with members ascending, exactly like a
        dict-of-lists insertion loop.
        """
        if members.size <= self.max_block_size or depth >= self.k:
            return [members]
        partitions = grouped_indices(band[members, depth])
        if len(partitions) == 1:
            # All equal on this position; descend without splitting.
            return self._split(members, band, depth + 1)
        result: list[np.ndarray] = []
        for part in partitions:
            result.extend(self._split(members[part], band, depth + 1))
        return result

    def _signatures(self, dataset: Dataset) -> tuple[tuple[str, ...], np.ndarray]:
        if self.batch:
            if effective_processes(self.processes, self.pool) > 1 and len(dataset):
                parts = signature_slabs(
                    self.shingler, self.hasher, dataset, self.processes,
                    workers=self.workers, pool=self.pool,
                )
                return (
                    tuple(rid for p in parts for rid in p[0]),
                    np.concatenate([p[1] for p in parts]),
                )
            corpus = self.shingler.shingle_corpus(dataset)
            return corpus.record_ids, self.hasher.signature_matrix(
                corpus, workers=self.workers
            )
        ids = []
        rows = np.empty((len(dataset), self.hasher.num_hashes), dtype=np.uint64)
        for i, record in enumerate(dataset):
            ids.append(record.record_id)
            rows[i] = self.hasher.signature(self.shingler.shingle_ids(record))
        return tuple(ids), rows

    def _forest_groups(
        self, ids: np.ndarray, signatures: np.ndarray
    ) -> list[list[str]]:
        """Adaptive prefix-tree groups from aligned (ids, signatures).

        The grouping core of :meth:`block`, shared with
        :class:`OnlineForestIndex` so incremental blocks after removals
        rebuild the survivor trees with the batch descent verbatim.
        """
        groups: list[list[str]] = []
        for table in range(self.l):
            band = signatures[:, table * self.k : (table + 1) * self.k]
            # Root split on the first position, then adaptive descent.
            for bucket in grouped_indices(band[:, 0]):
                for rows in self._split(bucket, band, depth=1):
                    groups.append(ids[rows].tolist())
        return groups

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        record_ids, signatures = self._signatures(dataset)
        groups = self._forest_groups(
            np.asarray(record_ids, dtype=object), signatures
        )
        blocks = make_blocks(groups)
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "max_block_size": self.max_block_size,
                "engine": "batch" if self.batch else "per-record",
            },
        )

    def online(self, records: Iterable[Record] = ()) -> "OnlineForestIndex":
        """A mutable :class:`OnlineForestIndex` seeded with ``records``."""
        return OnlineForestIndex(self, records)

    def block_pair(self, source, target=None) -> BipartiteBlockingResult:
        """Clean-clean linkage on the online streaming path.

        Index the target, stream the source as a second slab, then emit
        the incremental index's blocks — the adaptive prefix descent
        over the union. The tree's split depths depend on *union*
        bucket occupancy (a target-only descent would split differently
        once source records arrive), so linkage reruns the batch
        grouping over the survivors; the resulting pair set is
        insertion-order independent and equals the filtered
        ``block(S∪T)`` oracle.
        """
        linked = _coerce_linked(source, target)
        start = time.perf_counter()
        index = self.online(linked.target.records)
        index.add_many(linked.source.records)
        blocks = index.blocks()
        elapsed = time.perf_counter() - start
        return BipartiteBlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k, "l": self.l, "q": self.q,
                "max_block_size": self.max_block_size,
                "engine": "linkage-online",
                "num_source": len(linked.source),
                "num_target": len(linked.target),
            },
            linked=linked,
        )


class _VariantOnlineBase(OnlineIndex):
    """Shared slab/tombstone bookkeeping of the variant online indexes.

    Both variants accumulate per-slab signature arrays (one growing
    shingle vocabulary, signatures identical to the batch rows) and
    tombstone removals by id; :meth:`blocks` concatenates the surviving
    rows in insertion order and reruns the owning blocker's batch
    grouping, so incremental results equal a from-scratch rebuild.
    Removed ids are retired permanently, as in
    :class:`~repro.lsh.index.BandedLSHIndex`.
    """

    def __init__(self, blocker: Blocker) -> None:
        self.blocker = blocker
        self._vocabulary = ShingleVocabulary()
        self._id_slabs: list[np.ndarray] = []
        self._ids_seen: set[str] = set()
        self._tombstones: set[str] = set()

    def _guard_new_ids(self, record_ids) -> None:
        if self._tombstones and not self._tombstones.isdisjoint(record_ids):
            retired = sorted(self._tombstones.intersection(record_ids))
            raise KeyError(
                f"record ids {retired!r} were removed and are retired; "
                "re-adding them would resurrect their dead entries"
            )
        self._ids_seen.update(record_ids)

    def remove(self, record_id: str) -> None:
        if record_id in self._tombstones or record_id not in self._ids_seen:
            raise KeyError(record_id)
        self._tombstones.add(record_id)

    def is_retired(self, record_id: str) -> bool:
        return record_id in self._tombstones

    @property
    def num_live(self) -> int:
        return len(self._ids_seen) - len(self._tombstones)

    def checkpoint(self) -> dict:
        return {"kind": self.blocker.name, "retired": sorted(self._tombstones)}

    def restore(self, state: dict) -> None:
        for record_id in state.get("retired", ()):
            if (
                record_id in self._ids_seen
                and record_id not in self._tombstones
            ):
                raise KeyError(
                    f"cannot retire live record {record_id!r} during "
                    "restore; retired ids must be absent from the "
                    "survivor rebuild"
                )
            self._ids_seen.add(record_id)
            self._tombstones.add(record_id)

    def _all_ids(self) -> np.ndarray:
        if not self._id_slabs:
            return np.empty(0, dtype=object)
        if len(self._id_slabs) == 1:
            return self._id_slabs[0]
        return np.concatenate(self._id_slabs)

    def _keep_mask(self, ids_all: np.ndarray) -> np.ndarray | None:
        if not self._tombstones:
            return None
        tombstones = self._tombstones
        return np.fromiter(
            (rid not in tombstones for rid in ids_all.tolist()),
            dtype=bool,
            count=ids_all.size,
        )

    def _emit(
        self, members, seen: set[str], found: list[str], record_id: str
    ) -> None:
        for member in members or ():
            if (
                member not in seen
                and member not in self._tombstones
                and member != record_id
            ):
                seen.add(member)
                found.append(member)


class OnlineMultiProbeIndex(_VariantOnlineBase):
    """Long-lived incremental form of :class:`MultiProbeLSHBlocker`.

    :meth:`query` applies the batch co-blocking rule from the probe
    record's side — a pair co-blocks when one record's exact key equals
    the other's exact *or* probe key — by probing, per table, the exact
    and probe maps with the query's exact key and the exact map with
    each of its perturbed keys. The maps grow per slab and removals
    filter at lookup, so neither mutation rebuilds anything.
    """

    def __init__(
        self,
        blocker: MultiProbeLSHBlocker,
        records: Iterable[Record] = (),
    ) -> None:
        super().__init__(blocker)
        self._minima_slabs: list[np.ndarray] = []
        self._runner_slabs: list[np.ndarray] = []
        self._exact_maps: list[dict] = [dict() for _ in range(blocker.l)]
        self._probe_maps: list[dict] = [dict() for _ in range(blocker.l)]
        self.add_many(records)

    def add_many(self, records) -> None:
        blocker = self.blocker
        corpus = blocker.shingler.shingle_corpus(
            records, vocabulary=self._vocabulary
        )
        if corpus.num_records == 0:
            return
        self._guard_new_ids(corpus.record_ids)
        minima, runners = blocker.hasher.signature_matrix_with_runner_up(
            corpus, workers=blocker.workers
        )
        self._id_slabs.append(np.asarray(corpus.record_ids, dtype=object))
        self._minima_slabs.append(minima)
        self._runner_slabs.append(runners)
        self._extend_maps(corpus.record_ids, minima, runners)

    def _extend_maps(
        self, record_ids, minima: np.ndarray, runners: np.ndarray
    ) -> None:
        blocker = self.blocker
        k = blocker.k
        exact_keys = split_bands_matrix(minima, k, blocker.l)
        for table in range(blocker.l):
            exact_map = self._exact_maps[table]
            for rid, key in zip(record_ids, exact_keys[:, table].tolist()):
                exact_map.setdefault(key, []).append(rid)
            probe_map = self._probe_maps[table]
            lo = table * k
            band = minima[:, lo : lo + k]
            for probe_row in range(blocker.num_probes):
                perturbed = band.copy()
                perturbed[:, probe_row] = runners[:, lo + probe_row]
                keys = (
                    np.ascontiguousarray(perturbed)
                    .reshape(-1)
                    .view(f"S{8 * k}")
                    .tolist()
                )
                for rid, key in zip(record_ids, keys):
                    probe_map.setdefault(key, []).append(rid)

    def query(self, record: Record) -> list[str]:
        blocker = self.blocker
        minima, runners = blocker.hasher.signature_with_runner_up(
            blocker.shingler.shingle_ids(record)
        )
        k = blocker.k
        seen: set[str] = set()
        found: list[str] = []
        for table in range(blocker.l):
            lo = table * k
            band = np.ascontiguousarray(minima[lo : lo + k])
            exact_key = band.view(f"S{8 * k}")[0]
            self._emit(
                self._exact_maps[table].get(exact_key),
                seen, found, record.record_id,
            )
            self._emit(
                self._probe_maps[table].get(exact_key),
                seen, found, record.record_id,
            )
            for probe_row in range(blocker.num_probes):
                perturbed = band.copy()
                perturbed[probe_row] = runners[lo + probe_row]
                probe_key = perturbed.view(f"S{8 * k}")[0]
                self._emit(
                    self._exact_maps[table].get(probe_key),
                    seen, found, record.record_id,
                )
        return found

    def blocks(self):
        ids_all = self._all_ids()
        if ids_all.size == 0:
            return ()
        minima = (
            self._minima_slabs[0]
            if len(self._minima_slabs) == 1
            else np.concatenate(self._minima_slabs)
        )
        runners = (
            self._runner_slabs[0]
            if len(self._runner_slabs) == 1
            else np.concatenate(self._runner_slabs)
        )
        keep = self._keep_mask(ids_all)
        if keep is not None:
            ids_all = ids_all[keep]
            minima = minima[keep]
            runners = runners[keep]
        return make_blocks(self.blocker._probe_groups(ids_all, minima, runners))


class OnlineForestIndex(_VariantOnlineBase):
    """Long-lived incremental form of :class:`LSHForestBlocker`.

    :meth:`blocks` rebuilds the survivor prefix trees with the batch
    descent (cached until the next mutation). :meth:`query` descends
    each table's survivor tree along the query's band values: at every
    split it follows the partition matching the query's next signature
    position — an empty match means the query would occupy a leaf of
    its own, contributing no candidates from that table.
    """

    def __init__(
        self,
        blocker: LSHForestBlocker,
        records: Iterable[Record] = (),
    ) -> None:
        super().__init__(blocker)
        self._signature_slabs: list[np.ndarray] = []
        self._live: tuple[np.ndarray, np.ndarray] | None = None
        self.add_many(records)

    def add_many(self, records) -> None:
        blocker = self.blocker
        corpus = blocker.shingler.shingle_corpus(
            records, vocabulary=self._vocabulary
        )
        if corpus.num_records == 0:
            return
        self._guard_new_ids(corpus.record_ids)
        signatures = blocker.hasher.signature_matrix(
            corpus, workers=blocker.workers
        )
        self._id_slabs.append(np.asarray(corpus.record_ids, dtype=object))
        self._signature_slabs.append(signatures)
        self._live = None

    def remove(self, record_id: str) -> None:
        super().remove(record_id)
        self._live = None

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._live = None

    def _live_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._live is None:
            ids_all = self._all_ids()
            if self._signature_slabs:
                signatures = (
                    self._signature_slabs[0]
                    if len(self._signature_slabs) == 1
                    else np.concatenate(self._signature_slabs)
                )
            else:
                signatures = np.empty(
                    (0, self.blocker.hasher.num_hashes), dtype=np.uint64
                )
            keep = self._keep_mask(ids_all)
            if keep is not None:
                ids_all = ids_all[keep]
                signatures = signatures[keep]
            self._live = (ids_all, signatures)
        return self._live

    def _descend(
        self,
        rows: np.ndarray,
        band: np.ndarray,
        query_band: np.ndarray,
        depth: int,
    ) -> np.ndarray:
        blocker = self.blocker
        while rows.size > blocker.max_block_size and depth < blocker.k:
            matching = rows[band[rows, depth] == query_band[depth]]
            if matching.size != rows.size:
                # A real split: follow the query's partition (empty
                # when no indexed record shares the next position).
                rows = matching
                if rows.size == 0:
                    break
            depth += 1
        return rows

    def query(self, record: Record) -> list[str]:
        ids_all, signatures = self._live_arrays()
        if ids_all.size == 0:
            return []
        blocker = self.blocker
        query_signature = blocker.hasher.signature(
            blocker.shingler.shingle_ids(record)
        )
        seen: set[str] = set()
        found: list[str] = []
        for table in range(blocker.l):
            lo = table * blocker.k
            band = signatures[:, lo : lo + blocker.k]
            query_band = query_signature[lo : lo + blocker.k]
            rows = np.flatnonzero(band[:, 0] == query_band[0])
            rows = self._descend(rows, band, query_band, 1)
            self._emit(ids_all[rows].tolist(), seen, found, record.record_id)
        return found

    def blocks(self):
        ids_all, signatures = self._live_arrays()
        return make_blocks(self.blocker._forest_groups(ids_all, signatures))
