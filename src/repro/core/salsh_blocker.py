"""Semantic-aware LSH blocking — the paper's SA-LSH (§5.2).

SA-LSH augments each of the ``l`` minhash hash tables with a w-way
AND/OR semantic hash function over semhash signatures. Records are
inserted into buckets keyed by (band key, semantic gate suffix), so a
pair collides iff it agrees on a band *and* passes the table's w-way
semantic function — Proposition 5.3: semantically dissimilar pairs never
collide, regardless of textual similarity.
"""

from __future__ import annotations

import time

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands, split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.semantic.hashing import WWaySemanticHashFamily
from repro.semantic.interpretation import SemanticFunction
from repro.semantic.semhash import SemhashEncoder


class SALSHBlocker(Blocker):
    """Semantic-aware LSH blocker.

    Parameters
    ----------
    attributes, q, k, l, seed, padded:
        As for :class:`~repro.core.lsh_blocker.LSHBlocker`.
    semantic_function:
        The semantic function ζ (carries its taxonomy).
    w:
        Number of semhash functions per table, or ``'all'`` for the
        lowest-threshold configuration (at least one shared concept —
        used in Fig. 9).
    mode:
        ``'and'`` or ``'or'`` (the paper's µ).
    batch:
        Use the corpus-level vectorized engine (default); the
        per-record engine produces identical blocks and exists for
        equivalence tests and the perf benchmark.
    workers:
        Threads evaluating minhash signature chunks concurrently
        (``None`` = all CPUs); byte-identical blocks for any count.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        semantic_function: SemanticFunction,
        w: int | str = "all",
        mode: str = "or",
        seed: int = 0,
        padded: bool = False,
        batch: bool = True,
        workers: int | None = 1,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        if mode not in ("and", "or"):
            raise ConfigurationError(f"mode must be 'and' or 'or', got {mode!r}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.w = w
        self.mode = mode
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.semantic_function = semantic_function
        self.shingler = Shingler(self.attributes, q=q, padded=padded)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "SA-LSH"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"w={self.w}, mode={self.mode})"
        )

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()

        # Semantic-function build time is reported separately (the SF
        # curve of Fig. 13): it covers interpreting all records, fixing
        # the semhash bit set, and encoding the signatures.
        sf_start = time.perf_counter()
        encoder = SemhashEncoder(self.semantic_function, dataset)
        if self.batch:
            semhash_matrix = encoder.signature_matrix(dataset)
        else:
            signatures = {
                record.record_id: encoder.encode(record) for record in dataset
            }
        sf_seconds = time.perf_counter() - sf_start

        gates = WWaySemanticHashFamily(
            num_bits=encoder.num_bits,
            w=self.w,
            mode=self.mode,
            num_tables=self.l,
            seed=self.seed,
        )

        index = BandedLSHIndex(self.l)
        if self.batch:
            corpus = self.shingler.shingle_corpus(dataset)
            signature_matrix = self.hasher.signature_matrix(
                corpus, workers=self.workers
            )
            keys = split_bands_matrix(signature_matrix, self.k, self.l)
            entries = [
                gates.gate_entries(table, semhash_matrix)
                for table in range(self.l)
            ]
            index.add_many(corpus.record_ids, keys, gate_entries=entries)
        else:
            for record in dataset:
                signature = self.hasher.signature(
                    self.shingler.shingle_ids(record)
                )
                semhash = signatures[record.record_id]

                def gate(table: int, _record_id: str, _sig=semhash):
                    return gates.gate_suffixes(table, _sig)

                index.add(
                    record.record_id, split_bands(signature, self.k, self.l), gate
                )

        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": gates.w,
                "mode": self.mode,
                "num_semantic_bits": encoder.num_bits,
                "sf_seconds": sf_seconds,
                "workers": self.workers,
                "engine": "batch" if self.batch else "per-record",
            },
        )
