"""Semantic-aware LSH blocking — the paper's SA-LSH (§5.2).

SA-LSH augments each of the ``l`` minhash hash tables with a w-way
AND/OR semantic hash function over semhash signatures. Records are
inserted into buckets keyed by (band key, semantic gate suffix), so a
pair collides iff it agrees on a band *and* passes the table's w-way
semantic function — Proposition 5.3: semantically dissimilar pairs never
collide, regardless of textual similarity.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.base import (
    BipartiteBlockingResult,
    Blocker,
    BlockingResult,
    OnlineIndex,
    _coerce_linked,
    as_bipartite,
    make_blocks,
)
from repro.core.lsh_blocker import stream_slab_signatures
from repro.errors import ConfigurationError, SemanticFunctionError
from repro.lsh.bands import record_band_keys, split_bands, split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.lsh.sharding import semantic_signature_slabs, signature_slabs
from repro.minhash.corpus import ShingleVocabulary
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.minhash.signature import GrowableSignatureSpill
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.semantic.hashing import WWaySemanticHashFamily
from repro.semantic.interpretation import SemanticFunction
from repro.semantic.semhash import SemhashEncoder
from repro.utils.parallel import ShardPool, effective_processes


class OnlineSALSHIndex(OnlineIndex):
    """Long-lived incremental form of :class:`SALSHBlocker`.

    Mirrors :class:`~repro.core.lsh_blocker.OnlineLSHIndex` with the
    semantic gate applied per slab: band keys come from the streaming
    signature engine and each slab's semhash rows are encoded by one
    *frozen* :class:`~repro.semantic.semhash.SemhashEncoder`, so after
    any interleaving of adds and removes :meth:`blocks` equals
    :meth:`SALSHBlocker.block_stream` (same encoder) over the surviving
    records. When no encoder is given, one is frozen from the first
    non-empty slab — records added later encode against that fixed bit
    set, exactly like the streamed path's sample-fitted encoder.

    :meth:`query` gates the probe record through the same w-way family.
    A record whose interpretation the semantic function cannot produce
    (:class:`~repro.errors.SemanticFunctionError`), or whose concepts
    are entirely unseen by the frozen encoder (an all-zero semhash the
    OR/AND gates exclude), yields empty candidates — never an
    exception.
    """

    def __init__(
        self,
        blocker: "SALSHBlocker",
        records: Iterable[Record] = (),
        *,
        encoder: SemhashEncoder | None = None,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
    ) -> None:
        self.blocker = blocker
        self.encoder = encoder
        self._gates = (
            None if encoder is None else blocker._gates(encoder.num_bits)
        )
        self._vocabulary = ShingleVocabulary()
        self._signatures_out = signatures_out
        self._cursor = 0
        self._index = BandedLSHIndex(
            blocker.l, processes=blocker.processes, pool=blocker.pool
        )
        self.add_many(records)

    def add_many(self, records) -> None:
        records = (
            records if isinstance(records, (list, tuple)) else list(records)
        )
        if not records:
            return
        blocker = self.blocker
        if self.encoder is None:
            self.encoder = SemhashEncoder(blocker.semantic_function, records)
            self._gates = blocker._gates(self.encoder.num_bits)
        corpus = blocker.shingler.shingle_corpus(
            records, vocabulary=self._vocabulary
        )
        signatures = stream_slab_signatures(
            blocker.hasher, corpus, self._signatures_out,
            self._cursor, blocker.workers,
        )
        semhash = self.encoder.signature_matrix(records)
        entries = [
            self._gates.gate_entries(table, semhash)
            for table in range(blocker.l)
        ]
        self._index.add_many(
            corpus.record_ids,
            split_bands_matrix(signatures, blocker.k, blocker.l),
            gate_entries=entries,
        )
        self._cursor += corpus.num_records

    def remove(self, record_id: str) -> None:
        self._index.remove(record_id)

    def is_retired(self, record_id: str) -> bool:
        return self._index.is_retired(record_id)

    @property
    def num_live(self) -> int:
        return self._index.num_live

    def query(self, record: Record) -> list[str]:
        if self.encoder is None:
            return []
        try:
            semhash = self.encoder.encode(record)
        except SemanticFunctionError:
            # The frozen semantic function cannot interpret this record
            # at all (e.g. an incomplete pattern table): semantically it
            # matches nothing, so it blocks with nothing.
            return []
        blocker = self.blocker
        keys = record_band_keys(
            blocker.hasher.signature(blocker.shingler.shingle_ids(record)),
            blocker.k,
            blocker.l,
        )
        gates = self._gates

        def gate(table: int, _record_id: str):
            return gates.gate_suffixes(table, semhash)

        return self._index.query_keys(keys, gate, record_id=record.record_id)

    def blocks(self):
        return make_blocks(self._index.blocks())

    @property
    def banded_index(self) -> BandedLSHIndex:
        """The underlying banded index (the on-disk exporter's input)."""
        return self._index

    def checkpoint(self) -> dict:
        # The frozen encoder is part of the durable state: a survivor
        # rebuild must gate later additions against the *same* bit set
        # the pre-crash index froze (the checkpoint writer pickles the
        # "encoder" value; everything else is JSON).
        return {
            "kind": "salsh",
            "retired": self._index.retired_ids(),
            "encoder": self.encoder,
        }

    def restore(self, state: dict) -> None:
        encoder = state.get("encoder")
        if encoder is not None and self.encoder is None:
            # Every record was removed before the checkpoint: the
            # survivor rebuild saw no slab to freeze from, but the
            # pre-crash encoder must still gate future additions.
            self.encoder = encoder
            self._gates = self.blocker._gates(encoder.num_bits)
        self._index.restore_retired(state.get("retired", ()))


class SALSHBlocker(Blocker):
    """Semantic-aware LSH blocker.

    Parameters
    ----------
    attributes, q, k, l, seed, padded:
        As for :class:`~repro.core.lsh_blocker.LSHBlocker`.
    semantic_function:
        The semantic function ζ (carries its taxonomy).
    w:
        Number of semhash functions per table, or ``'all'`` for the
        lowest-threshold configuration (at least one shared concept —
        used in Fig. 9).
    mode:
        ``'and'`` or ``'or'`` (the paper's µ).
    batch:
        Use the corpus-level vectorized engine (default); the
        per-record engine produces identical blocks and exists for
        equivalence tests and the perf benchmark.
    workers:
        Threads evaluating minhash signature chunks concurrently
        (``None`` = all CPUs); byte-identical blocks for any count.
    processes:
        Worker processes for the sharded runtime (``None`` = all CPUs):
        record slabs are shingled, minhashed *and interpreted* in
        parallel processes, and bucket grouping is band-sharded across
        the same pool. Byte-identical blocks for every process count;
        applies to the batch engine only.
    pool:
        Optional persistent :class:`~repro.utils.parallel.ShardPool`:
        the sharded runtime reuses its warm executor across repeated
        blocking calls (the pool's process count wins over
        ``processes``) and slabs ride shared memory. Blocks stay
        byte-identical to serial for any pool.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        semantic_function: SemanticFunction,
        w: int | str = "all",
        mode: str = "or",
        seed: int = 0,
        padded: bool = False,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        if mode not in ("and", "or"):
            raise ConfigurationError(f"mode must be 'and' or 'or', got {mode!r}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.w = w
        self.mode = mode
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.semantic_function = semantic_function
        self.shingler = Shingler(self.attributes, q=q, padded=padded)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "SA-LSH"

    def describe(self) -> str:
        return (
            f"{self.name}(q={self.q}, k={self.k}, l={self.l}, "
            f"w={self.w}, mode={self.mode})"
        )

    def _gates(self, num_bits: int) -> WWaySemanticHashFamily:
        return WWaySemanticHashFamily(
            num_bits=num_bits,
            w=self.w,
            mode=self.mode,
            num_tables=self.l,
            seed=self.seed,
        )

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        if not len(dataset):
            # An empty corpus has no interpretations to derive semhash
            # bits from; every engine (serial, sharded, pooled) returns
            # empty blocks instead of tripping the encoder's
            # no-concepts error.
            return self._empty_result(start)
        if self.batch and effective_processes(self.processes, self.pool) > 1:
            return self._block_sharded(dataset, start)

        # Semantic-function build time is reported separately (the SF
        # curve of Fig. 13): it covers interpreting all records, fixing
        # the semhash bit set, and encoding the signatures.
        sf_start = time.perf_counter()
        encoder = SemhashEncoder(self.semantic_function, dataset)
        if self.batch:
            semhash_matrix = encoder.signature_matrix(dataset)
        else:
            signatures = {
                record.record_id: encoder.encode(record) for record in dataset
            }
        sf_seconds = time.perf_counter() - sf_start

        gates = self._gates(encoder.num_bits)

        index = BandedLSHIndex(self.l)
        if self.batch:
            corpus = self.shingler.shingle_corpus(dataset)
            signature_matrix = self.hasher.signature_matrix(
                corpus, workers=self.workers
            )
            keys = split_bands_matrix(signature_matrix, self.k, self.l)
            entries = [
                gates.gate_entries(table, semhash_matrix)
                for table in range(self.l)
            ]
            index.add_many(corpus.record_ids, keys, gate_entries=entries)
        else:
            for record in dataset:
                signature = self.hasher.signature(
                    self.shingler.shingle_ids(record)
                )
                semhash = signatures[record.record_id]

                def gate(table: int, _record_id: str, _sig=semhash):
                    return gates.gate_suffixes(table, _sig)

                index.add(
                    record.record_id, split_bands(signature, self.k, self.l), gate
                )

        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": gates.w,
                "mode": self.mode,
                "num_semantic_bits": encoder.num_bits,
                "sf_seconds": sf_seconds,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "batch" if self.batch else "per-record",
            },
        )

    def _empty_result(self, start: float) -> BlockingResult:
        return BlockingResult(
            blocker_name=self.name,
            blocks=(),
            seconds=time.perf_counter() - start,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": self.w,
                "mode": self.mode,
                "num_semantic_bits": 0,
                "sf_seconds": 0.0,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "batch" if self.batch else "per-record",
            },
        )

    def _block_sharded(self, dataset: Dataset, start: float) -> BlockingResult:
        """The ``processes>1`` batch path.

        One process-pool pass shingles, minhashes *and* interprets each
        record slab; the parent derives the semhash bit set from the
        shipped ζ sets (a union — order-independent, so identical to
        the serial encoder), encodes each slab's semhash rows with the
        vectorized scatter, and bulk-inserts with per-slab gate
        entries. Cross-slab bucket merging plus band-sharded grouping
        make the blocks byte-identical to the serial batch engine.

        On a persistent pool the derived semantic state — the frozen
        encoder and per-slab semhash matrices, pure functions of
        (semantic function, corpus, slab layout) — is memoised for the
        pool's lifetime, so repeated calls over one corpus skip the
        worker-side re-interpretation and the parent-side re-encode;
        the workers then run the plain signature map. Blocks are
        byte-identical either way.
        """
        memo_key = ("salsh-semantic", self.semantic_function)
        cached = (
            self.pool.get_memo(dataset, memo_key)
            if self.pool is not None
            else None
        )
        if cached is None:
            slabs = semantic_signature_slabs(
                self.shingler, self.hasher, self.semantic_function,
                dataset, self.processes, workers=self.workers, pool=self.pool,
            )
            # sf_seconds covers the parent-side bit-set fix + semhash
            # encode; per-record interpretation time is folded into the
            # parallel slab pass and not separable from minhashing.
            sf_start = time.perf_counter()
            interpretations: dict[str, frozenset[str]] = {}
            for record_ids, _, zetas in slabs:
                interpretations.update(zip(record_ids, zetas))
            encoder = SemhashEncoder.from_interpretations(
                self.semantic_function, interpretations
            )
            semhash_slabs = [
                encoder.matrix_from_interpretations(zetas)
                for _, _, zetas in slabs
            ]
            sf_seconds = time.perf_counter() - sf_start
            signature_parts = [
                (record_ids, signatures) for record_ids, signatures, _ in slabs
            ]
            if self.pool is not None:
                self.pool.set_memo(
                    dataset, memo_key, (encoder, semhash_slabs)
                )
        else:
            encoder, semhash_slabs = cached
            signature_parts = signature_slabs(
                self.shingler, self.hasher, dataset, self.processes,
                workers=self.workers, pool=self.pool,
            )
            sf_seconds = 0.0

        gates = self._gates(encoder.num_bits)
        index = BandedLSHIndex(self.l, processes=self.processes, pool=self.pool)
        for (record_ids, signatures), semhash in zip(
            signature_parts, semhash_slabs
        ):
            entries = [
                gates.gate_entries(table, semhash) for table in range(self.l)
            ]
            index.add_many(
                record_ids,
                split_bands_matrix(signatures, self.k, self.l),
                gate_entries=entries,
            )
        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": gates.w,
                "mode": self.mode,
                "num_semantic_bits": encoder.num_bits,
                "sf_seconds": sf_seconds,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "sharded",
            },
        )

    def online(
        self,
        records: Iterable[Record] = (),
        *,
        encoder: SemhashEncoder | None = None,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
    ) -> OnlineSALSHIndex:
        """A mutable :class:`OnlineSALSHIndex` seeded with ``records``.

        ``encoder`` fixes the semhash bit set up front (as
        :meth:`block_stream` requires); without one, the index freezes
        an encoder from its first non-empty record slab.
        """
        return OnlineSALSHIndex(
            self, records, encoder=encoder, signatures_out=signatures_out
        )

    def block_pair(self, source, target=None) -> BipartiteBlockingResult:
        """Clean-clean linkage on the online streaming path.

        The semhash encoder is frozen over the *union* of both sides —
        exactly what the batch oracle ``block(S∪T)`` derives, and
        order-independent (the bit set is a union of ζ concept sets) —
        then the target is indexed and the source streams through the
        same online cursors. Blocks therefore equal a batch block over
        the union in target-first insertion order, the cross pair set
        equals the filtered oracle, and the ``processes=``/``pool=``
        runtimes keep results byte-identical across serial/sharded/
        pooled.
        """
        linked = _coerce_linked(source, target)
        start = time.perf_counter()
        union = linked.union
        if not len(union):
            return as_bipartite(self._empty_result(start), linked)
        sf_start = time.perf_counter()
        encoder = SemhashEncoder(self.semantic_function, union)
        sf_seconds = time.perf_counter() - sf_start
        index = self.online(linked.target.records, encoder=encoder)
        index.add_many(linked.source.records)
        blocks = index.blocks()
        elapsed = time.perf_counter() - start
        return BipartiteBlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": self.w,
                "mode": self.mode,
                "num_semantic_bits": encoder.num_bits,
                "sf_seconds": sf_seconds,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "linkage-online",
                "num_source": len(linked.source),
                "num_target": len(linked.target),
            },
            linked=linked,
        )

    def block_stream(
        self,
        slabs: Iterable[Iterable[Record]],
        *,
        encoder: SemhashEncoder,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
        vocabulary: ShingleVocabulary | None = None,
    ) -> BlockingResult:
        """Block a corpus streamed as record slabs — SA-LSH's streaming
        entry point.

        Works like :meth:`repro.core.lsh_blocker.LSHBlocker.
        block_stream` with the semantic gate applied per slab: each
        slab is shingled against one growing vocabulary, minhashed,
        encoded with the *frozen* ``encoder`` and bulk-inserted under
        (band key, gate suffix) buckets that merge across slabs.
        ``slabs`` may be a plain generator of unknown length.

        With ``encoder`` frozen from the full corpus
        (``SemhashEncoder(semantic_function, records)``) the blocks are
        byte-identical to :meth:`block` over the concatenated records.
        With an encoder fitted on a training sample
        (:meth:`~repro.semantic.semhash.SemhashEncoder.fit`) unseen
        leaf concepts are dropped from the signatures, so blocks can
        differ; the streamed SA-LSH tests bound the recall dip.

        Parameters
        ----------
        slabs:
            Iterable of record chunks; ids must be unique across slabs.
        encoder:
            A frozen :class:`~repro.semantic.semhash.SemhashEncoder`
            (its bit set fixes the gate family; it is never mutated).
        signatures_out:
            Optional spill target (fixed memory map or growable spill),
            as for the LSH streaming path.
        vocabulary:
            Optional vocabulary to extend (continue an earlier stream).
        """
        start = time.perf_counter()
        vocab = ShingleVocabulary() if vocabulary is None else vocabulary
        gates = self._gates(encoder.num_bits)
        index = BandedLSHIndex(self.l, processes=self.processes, pool=self.pool)
        cursor = 0
        num_slabs = 0
        # As in the LSH streaming path: an aborting stream releases the
        # spill's file handle before the error propagates; successful
        # streams leave it open for the caller to continue or finalize.
        try:
            for slab in slabs:
                records = slab if isinstance(slab, (list, tuple)) else list(slab)
                corpus = self.shingler.shingle_corpus(records, vocabulary=vocab)
                signatures = stream_slab_signatures(
                    self.hasher, corpus, signatures_out, cursor, self.workers
                )
                semhash = encoder.signature_matrix(records)
                entries = [
                    gates.gate_entries(table, semhash) for table in range(self.l)
                ]
                index.add_many(
                    corpus.record_ids,
                    split_bands_matrix(signatures, self.k, self.l),
                    gate_entries=entries,
                )
                cursor += corpus.num_records
                num_slabs += 1
        except BaseException:
            if isinstance(signatures_out, GrowableSignatureSpill):
                signatures_out.close()
            raise
        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "w": gates.w,
                "mode": self.mode,
                "num_semantic_bits": encoder.num_bits,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "streaming",
                "num_slabs": num_slabs,
                "num_records": cursor,
                "spilled": signatures_out is not None,
            },
        )
