"""The paper's primary contribution: LSH and semantic-aware LSH blocking."""

from repro.core.base import Blocker, BlockingResult
from repro.core.lsh_blocker import LSHBlocker
from repro.core.salsh_blocker import SALSHBlocker
from repro.core.lsh_variants import LSHForestBlocker, MultiProbeLSHBlocker
from repro.core.pipeline import PipelineConfig, PipelineReport, run_pipeline
from repro.core.tuning import (
    TunedParameters,
    determine_kl,
    determine_sh,
    kl_ladder,
    required_tables,
)
from repro.core.robustness import (
    SimilarityBin,
    classify_region,
    estimate_gamma,
    match_probability_curve,
)

__all__ = [
    "Blocker",
    "BlockingResult",
    "LSHBlocker",
    "SALSHBlocker",
    "MultiProbeLSHBlocker",
    "LSHForestBlocker",
    "PipelineConfig",
    "PipelineReport",
    "run_pipeline",
    "TunedParameters",
    "determine_sh",
    "determine_kl",
    "kl_ladder",
    "required_tables",
    "SimilarityBin",
    "match_probability_curve",
    "estimate_gamma",
    "classify_region",
]
