"""The paper's primary contribution: LSH and semantic-aware LSH blocking."""

from repro.core.base import (
    BipartiteBlockingResult,
    Blocker,
    BlockingResult,
    OnlineIndex,
    as_bipartite,
)
from repro.core.lsh_blocker import LSHBlocker, OnlineLSHIndex
from repro.core.salsh_blocker import OnlineSALSHIndex, SALSHBlocker
from repro.core.lsh_variants import (
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    OnlineForestIndex,
    OnlineMultiProbeIndex,
)
from repro.core.pipeline import (
    PipelineConfig,
    PipelineReport,
    build_blocker,
    build_resolver,
    run_pipeline,
)
from repro.core.tuning import (
    TunedParameters,
    determine_kl,
    determine_sh,
    kl_ladder,
    required_tables,
)
from repro.core.robustness import (
    SimilarityBin,
    classify_region,
    estimate_gamma,
    match_probability_curve,
)

__all__ = [
    "Blocker",
    "BlockingResult",
    "BipartiteBlockingResult",
    "as_bipartite",
    "OnlineIndex",
    "OnlineLSHIndex",
    "OnlineSALSHIndex",
    "OnlineMultiProbeIndex",
    "OnlineForestIndex",
    "LSHBlocker",
    "SALSHBlocker",
    "MultiProbeLSHBlocker",
    "LSHForestBlocker",
    "PipelineConfig",
    "PipelineReport",
    "run_pipeline",
    "build_blocker",
    "build_resolver",
    "TunedParameters",
    "determine_sh",
    "determine_kl",
    "kl_ladder",
    "required_tables",
    "SimilarityBin",
    "match_probability_curve",
    "estimate_gamma",
    "classify_region",
]
