"""Blocker interface and the :class:`BlockingResult` value type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping, Sequence

from repro.records.dataset import Dataset
from repro.records.ground_truth import Pair, sorted_pair

Block = tuple[str, ...]


@dataclass(frozen=True)
class BlockingResult:
    """Blocks produced by a blocker over one dataset.

    Attributes
    ----------
    blocker_name:
        Name of the technique that produced the blocks.
    blocks:
        Possibly overlapping groups of record ids (each of size >= 2;
        singleton blocks carry no candidate pairs and are dropped).
    seconds:
        Wall-clock blocking time when measured by a runner, else None.
    metadata:
        Free-form diagnostics (parameters, sub-timings such as the
        semantic-function build time of Fig. 13).
    """

    blocker_name: str
    blocks: tuple[Block, ...]
    seconds: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @cached_property
    def distinct_pairs(self) -> frozenset[Pair]:
        """Γ — distinct candidate pairs across all blocks."""
        pairs: set[Pair] = set()
        for block in self.blocks:
            for i, first in enumerate(block):
                for second in block[i + 1 :]:
                    if first != second:
                        pairs.add(sorted_pair(first, second))
        return frozenset(pairs)

    @property
    def num_multiset_comparisons(self) -> int:
        """|Γm| — pair comparisons counted per block (with redundancy)."""
        return sum(len(b) * (len(b) - 1) // 2 for b in self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def max_block_size(self) -> int:
        return max((len(b) for b in self.blocks), default=0)

    def record_block_ids(self) -> dict[str, list[int]]:
        """Record id -> indices of blocks containing it (meta-blocking)."""
        assignment: dict[str, list[int]] = {}
        for index, block in enumerate(self.blocks):
            for record_id in set(block):
                assignment.setdefault(record_id, []).append(index)
        return assignment

    def with_timing(self, seconds: float) -> "BlockingResult":
        """Copy of the result annotated with a wall-clock time."""
        return BlockingResult(
            blocker_name=self.blocker_name,
            blocks=self.blocks,
            seconds=seconds,
            metadata=self.metadata,
        )


def make_blocks(groups: Sequence[Sequence[str]]) -> tuple[Block, ...]:
    """Normalise raw groups: drop singletons, freeze to tuples."""
    return tuple(tuple(g) for g in groups if len(g) >= 2)


class Blocker(ABC):
    """Base class of every blocking technique in the library."""

    #: Short display name used in result tables (overridden by subclasses).
    name: str = "blocker"

    @abstractmethod
    def block(self, dataset: Dataset) -> BlockingResult:
        """Group the dataset's records into candidate blocks."""

    def describe(self) -> str:
        """One-line parameter description for reports."""
        return self.name
