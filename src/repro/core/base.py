"""Blocker interface and the :class:`BlockingResult` value type."""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.records.dataset import Dataset, LinkedCorpus
from repro.records.ground_truth import Pair, sorted_pair
from repro.records.record import Record
from repro.records.pairs import (
    decode_pair_keys,
    encode_pair_keys,
    enumerate_csr_cross_pairs,
    enumerate_csr_pairs,
    pairs_from_keys,
    unique_bipartite_keys,
    unique_pair_keys,
)

Block = tuple[str, ...]


@dataclass(frozen=True)
class BlockArrays:
    """CSR array form of a block collection over a local id vocabulary.

    ``ids`` is the sorted list of distinct record ids appearing in any
    block; block ``b`` holds the vocabulary positions
    ``indices[offsets[b]:offsets[b + 1]]`` (``int32``, duplicates
    preserved). Because the vocabulary is sorted, position order equals
    lexicographic id order, which makes pair keys over these indices
    decode directly into canonical ``sorted_pair`` tuples.
    """

    ids: list[str]
    offsets: np.ndarray
    indices: np.ndarray

    @property
    def num_blocks(self) -> int:
        return len(self.offsets) - 1


@dataclass(frozen=True)
class BlockingResult:
    """Blocks produced by a blocker over one dataset.

    Attributes
    ----------
    blocker_name:
        Name of the technique that produced the blocks.
    blocks:
        Possibly overlapping groups of record ids (each of size >= 2;
        singleton blocks carry no candidate pairs and are dropped).
    seconds:
        Wall-clock blocking time when measured by a runner, else None.
    metadata:
        Free-form diagnostics (parameters, sub-timings such as the
        semantic-function build time of Fig. 13).
    """

    blocker_name: str
    blocks: tuple[Block, ...]
    seconds: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def _flat_ids_and_offsets(self) -> tuple[list[str], np.ndarray]:
        """Concatenated block member ids and their CSR offsets."""
        flat = [rid for block in self.blocks for rid in block]
        offsets = np.zeros(len(self.blocks) + 1, dtype=np.int64)
        if self.blocks:
            np.cumsum([len(b) for b in self.blocks], out=offsets[1:])
        return flat, offsets

    @cached_property
    def local_arrays(self) -> BlockArrays:
        """Array (CSR) form of the blocks over the local id vocabulary."""
        flat, offsets = self._flat_ids_and_offsets()
        if not flat:
            return BlockArrays(
                ids=[], offsets=offsets, indices=np.empty(0, dtype=np.int32)
            )
        vocab, inverse = np.unique(np.asarray(flat), return_inverse=True)
        return BlockArrays(
            ids=vocab.tolist(),
            offsets=offsets,
            indices=inverse.astype(np.int32),
        )

    @cached_property
    def pair_keys_local(self) -> np.ndarray:
        """Γ as sorted ``uint64`` pair keys over the local vocabulary."""
        arrays = self.local_arrays
        left, right = enumerate_csr_pairs(arrays.offsets, arrays.indices)
        return unique_pair_keys(left, right)

    @cached_property
    def distinct_pairs(self) -> frozenset[Pair]:
        """Γ — distinct candidate pairs across all blocks.

        Compatibility view: decodes :attr:`pair_keys_local` back to id
        tuples (the sorted local vocabulary makes them canonical).
        """
        return frozenset(pairs_from_keys(self.pair_keys_local, self.local_arrays.ids))

    def distinct_pairs_legacy(self) -> frozenset[Pair]:
        """Γ via the original per-block Python loops (uncached).

        Kept as the reference implementation for the equivalence suite
        and the perf benchmark's legacy column.
        """
        pairs: set[Pair] = set()
        for block in self.blocks:
            for i, first in enumerate(block):
                for second in block[i + 1 :]:
                    if first != second:
                        pairs.add(sorted_pair(first, second))
        return frozenset(pairs)

    @cached_property
    def _per_dataset_cache(self) -> "weakref.WeakKeyDictionary[Dataset, np.ndarray]":
        # Weak keys: cached encodings die with their dataset instead of
        # pinning whole corpora to a long-lived result.
        return weakref.WeakKeyDictionary()

    def pair_keys(self, dataset: Dataset) -> np.ndarray:
        """Γ as sorted ``uint64`` pair keys over the dataset's id codec.

        Reuses the cached local enumeration when one exists (one
        ``encode_ids`` over the vocabulary plus a translation);
        otherwise encodes the blocks straight through the dataset codec
        — the evaluation path never needs the local string vocabulary.
        Raises :class:`~repro.errors.DatasetError` when a block
        references an id outside the dataset.
        """
        cached = self._per_dataset_cache.get(dataset)
        if cached is not None:
            return cached
        if "pair_keys_local" in self.__dict__:
            codes = dataset.encode_ids(self.local_arrays.ids)
            lo, hi = decode_pair_keys(self.pair_keys_local)
            if lo.size:
                keys = np.sort(encode_pair_keys(codes[lo], codes[hi]))
            else:
                keys = np.empty(0, dtype=np.uint64)
        else:
            flat, offsets = self._flat_ids_and_offsets()
            indices = dataset.encode_ids(flat)
            keys = unique_pair_keys(*enumerate_csr_pairs(offsets, indices))
        self._per_dataset_cache[dataset] = keys
        return keys

    @property
    def num_multiset_comparisons(self) -> int:
        """|Γm| — pair comparisons counted per block (with redundancy)."""
        return sum(len(b) * (len(b) - 1) // 2 for b in self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def max_block_size(self) -> int:
        return max((len(b) for b in self.blocks), default=0)

    def record_block_ids(self) -> dict[str, list[int]]:
        """Record id -> indices of blocks containing it (meta-blocking)."""
        assignment: dict[str, list[int]] = {}
        for index, block in enumerate(self.blocks):
            for record_id in set(block):
                assignment.setdefault(record_id, []).append(index)
        return assignment

    def with_timing(self, seconds: float) -> "BlockingResult":
        """Copy of the result annotated with a wall-clock time."""
        return BlockingResult(
            blocker_name=self.blocker_name,
            blocks=self.blocks,
            seconds=seconds,
            metadata=self.metadata,
        )


@dataclass(frozen=True)
class BipartiteBlockingResult(BlockingResult):
    """Blocks over a :class:`LinkedCorpus` union, read as cross pairs.

    The blocks themselves are ordinary union-corpus blocks (so every
    dedup-side consumer — meta-blocking, the equivalence suites — still
    works on them); the linkage view carves the bipartite candidate set
    out of each block with cross-side enumeration: a pair is a
    candidate iff a source member and a target member co-occur in a
    block. Within-side pairs are never emitted.
    """

    linked: LinkedCorpus | None = None

    def _require_linked(self) -> LinkedCorpus:
        if self.linked is None:
            raise DatasetError(
                "BipartiteBlockingResult has no attached LinkedCorpus"
            )
        return self.linked

    @cached_property
    def _source_mask_local(self) -> np.ndarray:
        """True at local-vocabulary positions that are source records."""
        linked = self._require_linked()
        ids = self.local_arrays.ids
        return np.fromiter(
            (rid in linked.source_id_set for rid in ids),
            dtype=bool,
            count=len(ids),
        )

    @cached_property
    def cross_pair_keys(self) -> np.ndarray:
        """Γ as sorted bipartite ``uint64`` keys over the linked codec.

        High word: position in ``linked.source``; low word: position in
        ``linked.target`` — directly intersectable with
        ``linked.true_match_keys``.
        """
        linked = self._require_linked()
        arrays = self.local_arrays
        mask = self._source_mask_local
        if not arrays.ids:
            return np.empty(0, dtype=np.uint64)
        positions = np.empty(len(arrays.ids), dtype=np.int64)
        src_local = np.flatnonzero(mask)
        tgt_local = np.flatnonzero(~mask)
        ids = arrays.ids
        if src_local.size:
            positions[src_local] = linked.source.encode_ids(
                [ids[i] for i in src_local.tolist()]
            )
        if tgt_local.size:
            positions[tgt_local] = linked.target.encode_ids(
                [ids[i] for i in tgt_local.tolist()]
            )
        left, right = enumerate_csr_cross_pairs(
            arrays.offsets, arrays.indices, mask
        )
        return unique_bipartite_keys(positions[left], positions[right])

    @cached_property
    def cross_pairs(self) -> frozenset[Pair]:
        """Γ as distinct ``(source_id, target_id)`` tuples."""
        linked = self._require_linked()
        return frozenset(linked.pairs_from_keys(self.cross_pair_keys))

    def cross_pairs_legacy(self) -> frozenset[Pair]:
        """Γ via per-block Python loops (the reference implementation)."""
        linked = self._require_linked()
        source_ids = linked.source_id_set
        pairs: set[Pair] = set()
        for block in self.blocks:
            members = set(block)
            src = [rid for rid in members if rid in source_ids]
            tgt = [rid for rid in members if rid not in source_ids]
            for s in src:
                for t in tgt:
                    pairs.add((s, t))
        return frozenset(pairs)

    @property
    def num_cross_multiset_comparisons(self) -> int:
        """|Γm| of the cross space: Σ per block n_source × n_target."""
        source_ids = self._require_linked().source_id_set
        total = 0
        for block in self.blocks:
            n_src = sum(1 for rid in block if rid in source_ids)
            total += n_src * (len(block) - n_src)
        return total

    def with_timing(self, seconds: float) -> "BipartiteBlockingResult":
        """Copy of the result annotated with a wall-clock time."""
        return BipartiteBlockingResult(
            blocker_name=self.blocker_name,
            blocks=self.blocks,
            seconds=seconds,
            metadata=self.metadata,
            linked=self.linked,
        )


def as_bipartite(
    result: BlockingResult, linked: LinkedCorpus
) -> BipartiteBlockingResult:
    """Re-type a union-corpus result as a bipartite result."""
    return BipartiteBlockingResult(
        blocker_name=result.blocker_name,
        blocks=result.blocks,
        seconds=result.seconds,
        metadata=result.metadata,
        linked=linked,
    )


def make_blocks(groups: Sequence[Sequence[str]]) -> tuple[Block, ...]:
    """Normalise raw groups: drop singletons, freeze to tuples."""
    return tuple(tuple(g) for g in groups if len(g) >= 2)


def _coerce_linked(
    source: Dataset | LinkedCorpus, target: Dataset | None
) -> LinkedCorpus:
    """Accept either a prebuilt :class:`LinkedCorpus` or two datasets."""
    if isinstance(source, LinkedCorpus):
        if target is not None:
            raise DatasetError(
                "block_pair got a LinkedCorpus and a target dataset; "
                "pass one or the other"
            )
        return source
    if target is None:
        raise DatasetError("block_pair needs a target dataset")
    return LinkedCorpus(source, target)


class Blocker(ABC):
    """Base class of every blocking technique in the library."""

    #: Short display name used in result tables (overridden by subclasses).
    name: str = "blocker"

    @abstractmethod
    def block(self, dataset: Dataset) -> BlockingResult:
        """Group the dataset's records into candidate blocks."""

    def block_pair(
        self,
        source: Dataset | LinkedCorpus,
        target: Dataset | None = None,
    ) -> BipartiteBlockingResult:
        """Clean-clean linkage: block source against target.

        The base implementation blocks the union corpus and re-types
        the result; the candidate set is the cross-side subset of each
        block's pairs (:attr:`BipartiteBlockingResult.cross_pair_keys`),
        so every blocker gets linkage for free. The four LSH blockers
        override this with an online-index streaming path — index the
        target, stream the source through the same incremental cursors
        the resolver uses — that produces identical pair sets.
        """
        linked = _coerce_linked(source, target)
        return as_bipartite(self.block(linked.union), linked)

    def describe(self) -> str:
        """One-line parameter description for reports."""
        return self.name


class OnlineIndex(ABC):
    """A long-lived blocking index answering single-record queries.

    Produced by a blocker's ``online()`` factory; the contract every
    implementation keeps (and the equivalence suite enforces):

    * :meth:`add_many` / :meth:`add` index records incrementally — no
      rebuild, identical end state regardless of how the corpus is
      split into calls;
    * :meth:`remove` drops one record in O(1); the id is *retired*
      (re-adding raises ``KeyError`` — replacements use a fresh id);
    * :meth:`query` returns live candidate ids for a probe record
      without mutating the index (empty for a record nothing
      co-blocks with — never an exception);
    * :meth:`blocks` equals the owning blocker's batch ``block()``
      over the surviving records in their original insertion order.
    """

    @abstractmethod
    def add_many(self, records: Sequence[Record]) -> None:
        """Index a slab of records (ids unique across all calls)."""

    def add(self, record: Record) -> None:
        """Index one record (convenience wrapper over :meth:`add_many`)."""
        self.add_many([record])

    @abstractmethod
    def remove(self, record_id: str) -> None:
        """Tombstone one indexed record; the id is retired permanently."""

    @abstractmethod
    def query(self, record: Record) -> list[str]:
        """Live record ids sharing at least one block with ``record``."""

    @abstractmethod
    def blocks(self) -> tuple[Block, ...]:
        """Current blocks over the live records (batch-equivalent)."""

    def checkpoint(self) -> dict:
        """The index's durable mutation state, as a state dict.

        Because every implementation keeps the incremental≡rebuild
        equivalence (``blocks()`` after any add/remove interleaving
        equals a from-scratch rebuild over the survivors in insertion
        order), a checkpoint does not persist internal tables — only
        the state a survivor rebuild cannot rederive: the retired-id
        set, and for frozen-encoder indexes the encoder itself (under
        the ``"encoder"`` key, pickled by the checkpoint writer).
        :meth:`restore` applies the dict to an index freshly rebuilt
        from the surviving records.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def restore(self, state: dict) -> None:
        """Apply :meth:`checkpoint` state to a survivor-rebuilt index."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )
