"""End-to-end SA-LSH pipeline: tune, block, evaluate, resolve.

Glues the §5.3 parameter-tuning chain to the blocker and (optionally)
the downstream ER stage so that one call covers the whole methodology:

1. learn sh from the true-match similarity distribution of a training
   sample and derive (k, l);
2. analyse semantic-feature quality and choose (µ, w) (§5.3 step iii);
3. block with SA-LSH (or LSH when no semantic function is given);
4. evaluate against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsh_blocker import LSHBlocker
from repro.core.salsh_blocker import SALSHBlocker
from repro.core.tuning import TunedParameters, determine_kl, determine_sh
from repro.errors import ConfigurationError
from repro.evaluation.metrics import BlockingMetrics, evaluate_blocks
from repro.evaluation.runner import ExperimentResult, run_blocking
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset
from repro.semantic.analysis import (
    SemanticFeatureQuality,
    analyse_semantic_features,
    recommend_gate,
)
from repro.semantic.interpretation import SemanticFunction
from repro.semantic.semhash import SemhashEncoder
from repro.utils.parallel import ShardPool
from repro.utils.retry import RetryPolicy


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of :func:`run_pipeline`.

    ``epsilon``, ``ph``, ``pl`` and ``sl_gap`` drive §5.3 tuning; gate
    selection is automatic unless ``w``/``mode`` are pinned.
    ``workers`` is passed to the blocker's batch signature engine
    (threads over hash-function chunks; ``None`` = all CPUs);
    ``processes`` to its process-sharded runtime (record-slab
    signatures + band-sharded grouping; blocks are byte-identical for
    any count). ``pool`` hands the blocker a persistent
    :class:`~repro.utils.parallel.ShardPool`, so the blocking stage of
    repeated pipeline runs shares one warm executor with shared-memory
    slab transport (tuning and evaluation are serial); the pool's
    process count wins over ``processes``.

    ``retry`` and ``map_timeout`` tune the pool's fault tolerance
    (DESIGN.md, "Fault tolerance & the degradation ladder"): ``retry``
    is a :class:`~repro.utils.retry.RetryPolicy` or an int retry count
    (``0`` disables recovery, surfacing typed errors instead of the
    serial fallback), ``map_timeout`` bounds each pooled map attempt
    in seconds. ``None`` (the default) leaves the pool's own settings
    untouched; both apply to ``pool`` via
    :meth:`~repro.utils.parallel.ShardPool.configure` when a blocker
    is built.
    """

    attributes: tuple[str, ...]
    q: int | None = 3
    epsilon: float = 0.05
    ph: float = 0.4
    pl: float = 0.1
    sl_gap: float = 0.1
    training_pairs: int = 500
    seed: int = 0
    w: int | str | None = None
    mode: str | None = None
    workers: int | None = 1
    processes: int | None = 1
    pool: ShardPool | None = None
    retry: "RetryPolicy | int | None" = None
    map_timeout: float | None = None


@dataclass(frozen=True)
class PipelineReport:
    """Everything the pipeline decided and measured."""

    parameters: TunedParameters
    gate: tuple[str, int | str] | None
    feature_quality: SemanticFeatureQuality | None
    outcome: ExperimentResult

    @property
    def metrics(self) -> BlockingMetrics:
        return self.outcome.metrics


def tune_from_dataset(dataset: Dataset, config: PipelineConfig) -> TunedParameters:
    """§5.3 steps (i)-(ii) on a training sample of true matches."""
    if not dataset.num_true_matches:
        raise ConfigurationError(
            "parameter tuning needs ground-truth matches in the training data"
        )
    shingler = Shingler(config.attributes, q=config.q)
    pairs = sorted(dataset.true_matches)[: config.training_pairs]
    # Shingle each distinct training record once (interned corpus pass)
    # instead of re-shingling per pair; corpus-level Jaccard over the
    # interned vocabulary ids is exact, like the textual Jaccard.
    training_ids = sorted({record_id for pair in pairs for record_id in pair})
    corpus = shingler.shingle_corpus(dataset[rid] for rid in training_ids)
    rows = corpus.row_index
    similarities = [
        corpus.jaccard(rows[id1], rows[id2]) for id1, id2 in pairs
    ]
    sh = determine_sh(similarities, config.epsilon)
    sh = min(max(sh, 0.05), 0.99)
    sl = max(sh - config.sl_gap, sh / 2, 0.01)
    return determine_kl(sh, sl, config.ph, config.pl)


def build_blocker(
    training: Dataset,
    config: PipelineConfig,
    parameters: TunedParameters,
    semantic_function: SemanticFunction | None = None,
) -> tuple[
    "LSHBlocker | SALSHBlocker",
    tuple[str, int | str] | None,
    SemanticFeatureQuality | None,
]:
    """§5.3 step (iii): the tuned blocker plus its gate decision.

    Returns ``(blocker, gate, feature_quality)``; the latter two are
    ``None`` for plain LSH (no semantic function). Shared by
    :func:`run_pipeline` and :func:`build_resolver` so the batch and
    online surfaces make identical parameter choices. A caller-owned
    ``pool`` picks up the config's fault-tolerance knobs here.
    """
    if config.pool is not None and (
        config.retry is not None or config.map_timeout is not None
    ):
        config.pool.configure(
            retry=config.retry, map_timeout=config.map_timeout
        )
    if semantic_function is None:
        blocker = LSHBlocker(
            config.attributes, q=config.q,
            k=parameters.k, l=parameters.l, seed=config.seed,
            workers=config.workers, processes=config.processes,
            pool=config.pool,
        )
        return blocker, None, None
    quality = analyse_semantic_features(training, semantic_function)
    num_bits = SemhashEncoder(semantic_function, training).num_bits
    mode, w = recommend_gate(quality, num_bits)
    if config.mode is not None:
        mode = config.mode
    if config.w is not None:
        w = config.w
    blocker = SALSHBlocker(
        config.attributes, q=config.q,
        k=parameters.k, l=parameters.l, seed=config.seed,
        semantic_function=semantic_function, w=w, mode=mode,
        workers=config.workers, processes=config.processes,
        pool=config.pool,
    )
    return blocker, (mode, w), quality


def run_pipeline(
    dataset: Dataset,
    config: PipelineConfig,
    semantic_function: SemanticFunction | None = None,
    *,
    training_dataset: Dataset | None = None,
) -> PipelineReport:
    """Tune on ``training_dataset`` (default: the dataset itself), then
    block and evaluate ``dataset``."""
    training = training_dataset or dataset
    parameters = tune_from_dataset(training, config)
    blocker, gate, quality = build_blocker(
        training, config, parameters, semantic_function
    )
    outcome = run_blocking(blocker, dataset)
    return PipelineReport(
        parameters=parameters,
        gate=gate,
        feature_quality=quality,
        outcome=outcome,
    )


def build_resolver(
    corpus: Dataset,
    config: PipelineConfig,
    semantic_function: SemanticFunction | None = None,
    *,
    training_dataset: Dataset | None = None,
    matcher: "SimilarityMatcher | None" = None,
):
    """The online counterpart of :func:`run_pipeline`: a tuned, warm
    :class:`~repro.er.resolver.Resolver` over ``corpus``.

    Runs the same §5.3 tuning chain (sh → (k, l) → gate selection) on
    ``training_dataset`` (default: the corpus), builds the blocker —
    with the config's ``pool`` so repeated serving calls share one warm
    shard runtime — and seeds the resolver's incremental index with the
    corpus in one slab. Mutations and single-record queries then go
    through :class:`~repro.er.resolver.Resolver`.
    """
    from repro.er.resolver import Resolver

    training = training_dataset or corpus
    parameters = tune_from_dataset(training, config)
    blocker, _, _ = build_blocker(
        training, config, parameters, semantic_function
    )
    return Resolver(blocker, corpus, matcher=matcher)
