"""γ-robustness of similarity metrics (paper §3, Eq. 1).

A similarity metric is γ-robust when, for any two record pairs whose
similarity difference exceeds 1-γ, the more similar pair is more likely
to be a true match. Robustness is estimated empirically from labelled
pairs: bin the similarities, compute the match probability per bin, and
find the largest γ for which bins separated by more than 1-γ are
probability-ordered.

The §3 region model (high / uncertain / low by distance thresholds
``dh < dl``) is provided by :func:`classify_region`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import EvaluationError


@dataclass(frozen=True)
class SimilarityBin:
    """One bin of the empirical match-probability curve."""

    lo: float
    hi: float
    count: int
    matches: int

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def match_probability(self) -> float:
        return self.matches / self.count if self.count else 0.0


def match_probability_curve(
    labelled_similarities: Iterable[tuple[float, bool]],
    *,
    num_bins: int = 10,
) -> list[SimilarityBin]:
    """Empirical Pr[e(r1)=e(r2) | sim] over equal-width bins.

    Parameters
    ----------
    labelled_similarities:
        (similarity, is_true_match) samples with similarity in [0, 1].
    num_bins:
        Number of equal-width bins over [0, 1].
    """
    if num_bins < 1:
        raise EvaluationError(f"num_bins must be >= 1, got {num_bins}")
    counts = [0] * num_bins
    matches = [0] * num_bins
    for similarity, is_match in labelled_similarities:
        if not 0.0 <= similarity <= 1.0:
            raise EvaluationError(
                f"similarity out of range [0, 1]: {similarity}"
            )
        index = min(int(similarity * num_bins), num_bins - 1)
        counts[index] += 1
        if is_match:
            matches[index] += 1
    width = 1.0 / num_bins
    return [
        SimilarityBin(lo=i * width, hi=(i + 1) * width, count=counts[i], matches=matches[i])
        for i in range(num_bins)
    ]


def estimate_gamma(
    curve: Sequence[SimilarityBin],
    *,
    tolerance: float = 0.0,
    min_count: int = 1,
) -> float:
    """Largest γ such that the metric is γ-robust on the given curve.

    For every pair of (sufficiently populated) bins where the
    higher-similarity bin has a *lower* match probability (beyond
    ``tolerance``), monotonicity fails at separation Δ = mid_hi -
    mid_lo; γ-robustness then requires 1-γ > Δ for all violations, i.e.
    γ = 1 - max violating Δ. With no violations γ = 1.
    """
    populated = [b for b in curve if b.count >= min_count]
    worst_violation = 0.0
    for i, low_bin in enumerate(populated):
        for high_bin in populated[i + 1 :]:
            if high_bin.match_probability + tolerance < low_bin.match_probability:
                separation = high_bin.midpoint - low_bin.midpoint
                worst_violation = max(worst_violation, separation)
    return 1.0 - worst_violation


def classify_region(distance: float, dh: float, dl: float) -> str:
    """Classify a record distance into the §3 regions.

    ``dh`` bounds the high region, ``dl`` the low region; distances in
    (dh, dl] are uncertain. Requires dh <= dl.
    """
    if not 0.0 <= dh <= dl <= 1.0:
        raise EvaluationError(f"need 0 <= dh <= dl <= 1, got dh={dh}, dl={dl}")
    if distance <= dh:
        return "high"
    if distance > dl:
        return "low"
    return "uncertain"
