"""Parameter tuning for (SA-)LSH blocking (paper §5.3).

Given the textual-similarity distribution of true matches in a training
sample:

1. ``sh`` is the ε-quantile of the distribution — the similarity below
   which at most an ε fraction of true matches fall.
2. ``sl`` is chosen below ``sh`` as the boundary of the low region.
3. ``k`` and ``l`` follow from the banded collision model: at ``sh`` the
   collision probability must be at least ``ph``; at ``sl`` at most
   ``pl``. For each k, ``l >= ln(1-ph)/ln(1-sh^k)`` and
   ``l <= ln(1-pl)/ln(1-sl^k)``; the smallest feasible k wins.

With the paper's Cora inputs (sh=0.3, ph=0.4, sl=0.2, pl=0.1) this
module reproduces the exact ladder l = 2, 6, 19, 63, 210, 701 for
k = 1..6 and selects (k=4, l=63).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TunedParameters:
    """Outcome of parameter tuning."""

    sh: float
    sl: float
    ph: float
    pl: float
    k: int
    l: int


def determine_sh(similarities: Sequence[float], epsilon: float) -> float:
    """The similarity threshold ``sh`` for a desired error ratio ε.

    ``sh`` is the value such that the fraction of true-match
    similarities below it is at most ε (the empirical ε-quantile):
    blocking may lose up to an ε share of true matches whose similarity
    falls under ``sh``.
    """
    if not similarities:
        raise ConfigurationError("need at least one training similarity")
    if not 0.0 <= epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in [0, 1), got {epsilon}")
    ordered = sorted(similarities)
    # Largest index such that (index / n) <= epsilon.
    cutoff = int(epsilon * len(ordered))
    cutoff = min(cutoff, len(ordered) - 1)
    return ordered[cutoff]


def required_tables(s: float, k: int, p: float) -> int:
    """Minimum l with banded collision probability >= p at similarity s.

    >>> required_tables(0.3, 4, 0.4)
    63
    """
    if not 0.0 < s <= 1.0:
        raise ConfigurationError(f"s must be in (0, 1], got {s}")
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    s_k = s**k
    if s_k >= 1.0:
        return 1
    return math.ceil(math.log(1.0 - p) / math.log(1.0 - s_k))


def allowed_tables(s: float, k: int, p: float) -> float:
    """Maximum l with banded collision probability <= p at similarity s.

    Returns ``math.inf`` when even infinitely many tables stay below p
    (impossible for s > 0, so only when s == 0).
    """
    if not 0.0 <= s <= 1.0:
        raise ConfigurationError(f"s must be in [0, 1], got {s}")
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    s_k = s**k
    if s_k <= 0.0:
        return math.inf
    if s_k >= 1.0:
        return 0.0
    return math.floor(math.log(1.0 - p) / math.log(1.0 - s_k))


def determine_kl(
    sh: float,
    sl: float,
    ph: float,
    pl: float,
    *,
    max_k: int = 32,
) -> TunedParameters:
    """Choose the smallest k (and its minimal l) meeting both constraints.

    >>> params = determine_kl(0.3, 0.2, 0.4, 0.1)
    >>> (params.k, params.l)
    (4, 63)
    """
    if not 0.0 <= sl < sh <= 1.0:
        raise ConfigurationError(
            f"need 0 <= sl < sh <= 1, got sl={sl}, sh={sh}"
        )
    for k in range(1, max_k + 1):
        lower = required_tables(sh, k, ph)
        upper = allowed_tables(sl, k, pl)
        if lower <= upper:
            return TunedParameters(sh=sh, sl=sl, ph=ph, pl=pl, k=k, l=lower)
    raise ConfigurationError(
        f"no feasible (k, l) for sh={sh}, sl={sl}, ph={ph}, pl={pl} "
        f"with k <= {max_k}"
    )


def kl_ladder(sh: float, ph: float, ks: Iterable[int]) -> list[tuple[int, int]]:
    """(k, l) pairs with minimal l reaching ph at sh, for each k.

    This is the ladder of Fig. 6 / Fig. 9: with sh=0.3, ph=0.4 it yields
    [(1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701)].
    """
    return [(k, required_tables(sh, k, ph)) for k in ks]
