"""Textual-only LSH blocking (the paper's "LSH" baseline).

Pipeline (§5.1): shingle each record's blocking attributes into q-grams,
minhash into a k*l signature, band into l hash tables of k rows, and
emit every bucket with at least two records as a block.

Two engines produce identical blocks:

* ``batch`` (default) — the corpus-level vectorized path: one
  shingling pass with an interned vocabulary, one chunked
  ``reduceat`` minhash over the CSR layout, byte-view band keys and
  bulk bucket grouping (see DESIGN.md, "Batch signature engine");
* ``per-record`` — the legacy record-at-a-time loop, kept as the
  equivalence/benchmark reference.
"""

from __future__ import annotations

import time

from repro.core.base import Blocker, BlockingResult, make_blocks
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands, split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.records.dataset import Dataset


class LSHBlocker(Blocker):
    """Banded minhash LSH over textual similarity only.

    Parameters
    ----------
    attributes:
        Attributes shingled into the textual representation.
    q:
        q-gram length (None for whole-value shingles).
    k:
        Minhash functions per hash table (rows per band).
    l:
        Number of hash tables (bands).
    seed:
        Seed for the minhash permutations.
    padded:
        Pad values before q-gram extraction.
    batch:
        Use the corpus-level vectorized engine (default). The
        per-record engine produces identical blocks and exists for
        equivalence tests and the perf benchmark.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        seed: int = 0,
        padded: bool = False,
        batch: bool = True,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.seed = seed
        self.batch = batch
        self.shingler = Shingler(self.attributes, q=q, padded=padded)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "LSH"

    def describe(self) -> str:
        return f"{self.name}(q={self.q}, k={self.k}, l={self.l})"

    def _fill_index(self, dataset: Dataset, index: BandedLSHIndex) -> None:
        if self.batch:
            corpus = self.shingler.shingle_corpus(dataset)
            signatures = self.hasher.signature_matrix(corpus)
            keys = split_bands_matrix(signatures, self.k, self.l)
            index.add_many(corpus.record_ids, keys)
        else:
            for record in dataset:
                signature = self.hasher.signature(
                    self.shingler.shingle_ids(record)
                )
                index.add(record.record_id, split_bands(signature, self.k, self.l))

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        index = BandedLSHIndex(self.l)
        self._fill_index(dataset, index)
        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "engine": "batch" if self.batch else "per-record",
            },
        )
