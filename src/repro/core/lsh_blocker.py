"""Textual-only LSH blocking (the paper's "LSH" baseline).

Pipeline (§5.1): shingle each record's blocking attributes into q-grams,
minhash into a k*l signature, band into l hash tables of k rows, and
emit every bucket with at least two records as a block.

Two engines produce identical blocks:

* ``batch`` (default) — the corpus-level vectorized path: one
  shingling pass with an interned vocabulary, one chunked
  ``reduceat`` minhash over the CSR layout (optionally spread over
  ``workers`` threads), byte-view band keys and bulk bucket grouping
  (see DESIGN.md, "Batch signature engine");
* ``per-record`` — the legacy record-at-a-time loop, kept as the
  equivalence/benchmark reference.

A third entry point, :meth:`LSHBlocker.block_stream`, runs the batch
engine over record *slabs*: the shingle vocabulary grows incrementally,
signatures can spill to a memory-mapped ``.npy`` file (or, for streams
of unknown length, a growable append-to-file spill), and buckets merge
across slabs — blocks are byte-identical to :meth:`block` on the
concatenated records (see DESIGN.md, "Parallel & streaming runtime").

Orthogonally, ``processes=`` routes the batch engine through the
process-sharded runtime — record slabs shingled/minhashed in worker
processes, bucket grouping band-sharded — with byte-identical blocks
for any process count (see DESIGN.md, "Process-sharded streaming
runtime").
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.base import (
    BipartiteBlockingResult,
    Blocker,
    BlockingResult,
    OnlineIndex,
    _coerce_linked,
    make_blocks,
)
from repro.errors import ConfigurationError
from repro.lsh.bands import record_band_keys, split_bands, split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.lsh.sharding import signature_slabs
from repro.minhash.corpus import ShingleVocabulary
from repro.minhash.minhash import MinHasher
from repro.minhash.shingling import Shingler
from repro.minhash.signature import GrowableSignatureSpill
from repro.records.dataset import Dataset
from repro.records.record import Record
from repro.utils.parallel import ShardPool, effective_processes


def stream_slab_signatures(
    hasher: MinHasher,
    corpus,
    signatures_out: "np.ndarray | GrowableSignatureSpill | None",
    cursor: int,
    workers: int | None,
) -> np.ndarray:
    """Compute one streamed slab's signatures, honouring the spill target.

    Fixed buffers (plain arrays or :func:`~repro.minhash.signature.
    open_signature_memmap` maps) are filled in place via ``out=``; a
    :class:`~repro.minhash.signature.GrowableSignatureSpill` has the
    freshly computed slab appended. Returns the array band keys should
    be derived from — the file-backed rows whenever a spill is in play,
    so streamed key views stay pageable instead of pinning every slab
    in RAM.
    """
    out = None
    n = corpus.num_records
    if isinstance(signatures_out, np.ndarray):
        if cursor + n > signatures_out.shape[0]:
            raise ConfigurationError(
                f"signatures_out holds {signatures_out.shape[0]} rows; "
                f"streamed records exceed it at {cursor + n}"
            )
        out = signatures_out[cursor : cursor + n]
    signatures = hasher.signature_matrix(corpus, workers=workers, out=out)
    if isinstance(signatures_out, GrowableSignatureSpill):
        signatures = signatures_out.append(signatures)
    return signatures


class OnlineLSHIndex(OnlineIndex):
    """Long-lived incremental form of :class:`LSHBlocker`.

    Built once, then mutated: each :meth:`add_many` slab is shingled
    against one growing vocabulary and minhashed on the batch engine
    (exactly the :meth:`LSHBlocker.block_stream` loop), so after any
    interleaving of adds and removes :meth:`blocks` is identical to
    :meth:`LSHBlocker.block` over the surviving records in insertion
    order. :meth:`query` probes the banded index with a single record's
    signature — O(l) bucket lookups, no mutation — and returns live
    candidate ids in first-encounter order.

    ``signatures_out`` may point at a
    :class:`~repro.minhash.signature.GrowableSignatureSpill` (or a
    preallocated memmap) so the accumulated signature rows live on disk
    rather than RAM, as in the streaming path.
    """

    def __init__(
        self,
        blocker: "LSHBlocker",
        records: Iterable[Record] = (),
        *,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
    ) -> None:
        self.blocker = blocker
        self._vocabulary = ShingleVocabulary()
        self._signatures_out = signatures_out
        self._cursor = 0
        self._index = BandedLSHIndex(
            blocker.l, processes=blocker.processes, pool=blocker.pool
        )
        self.add_many(records)

    def add_many(self, records) -> None:
        blocker = self.blocker
        corpus = blocker.shingler.shingle_corpus(
            records, vocabulary=self._vocabulary
        )
        if corpus.num_records == 0:
            return
        signatures = stream_slab_signatures(
            blocker.hasher, corpus, self._signatures_out,
            self._cursor, blocker.workers,
        )
        self._index.add_many(
            corpus.record_ids,
            split_bands_matrix(signatures, blocker.k, blocker.l),
        )
        self._cursor += corpus.num_records

    def remove(self, record_id: str) -> None:
        self._index.remove(record_id)

    def is_retired(self, record_id: str) -> bool:
        return self._index.is_retired(record_id)

    @property
    def num_live(self) -> int:
        return self._index.num_live

    def _query_signature(self, record: Record) -> np.ndarray:
        # shingle_ids never grows the vocabulary, so queries are pure.
        return self.blocker.hasher.signature(
            self.blocker.shingler.shingle_ids(record)
        )

    def query(self, record: Record) -> list[str]:
        keys = record_band_keys(
            self._query_signature(record), self.blocker.k, self.blocker.l
        )
        return self._index.query_keys(keys, record_id=record.record_id)

    def blocks(self):
        return make_blocks(self._index.blocks())

    @property
    def banded_index(self) -> BandedLSHIndex:
        """The underlying banded index (the on-disk exporter's input)."""
        return self._index

    def checkpoint(self) -> dict:
        return {"kind": "lsh", "retired": self._index.retired_ids()}

    def restore(self, state: dict) -> None:
        self._index.restore_retired(state.get("retired", ()))


class LSHBlocker(Blocker):
    """Banded minhash LSH over textual similarity only.

    Parameters
    ----------
    attributes:
        Attributes shingled into the textual representation.
    q:
        q-gram length (None for whole-value shingles).
    k:
        Minhash functions per hash table (rows per band).
    l:
        Number of hash tables (bands).
    seed:
        Seed for the minhash permutations.
    padded:
        Pad values before q-gram extraction.
    batch:
        Use the corpus-level vectorized engine (default). The
        per-record engine produces identical blocks and exists for
        equivalence tests and the perf benchmark.
    workers:
        Threads evaluating signature chunks concurrently (``None`` =
        all CPUs). Any worker count produces byte-identical blocks.
    processes:
        Worker *processes* for the sharded runtime (``None`` = all
        CPUs): record slabs are shingled/minhashed in parallel
        processes and bucket grouping is band-sharded across the same
        pool — escaping the GIL for the string-heavy hot loops. Blocks
        are byte-identical for every process count; applies to the
        batch engine only.
    pool:
        Optional persistent :class:`~repro.utils.parallel.ShardPool`
        carrying the sharded runtime: the pool's executor stays warm
        across repeated :meth:`block`/:meth:`block_stream` calls and
        slabs ride shared memory instead of the executor's pipes. The
        pool's process count wins over ``processes``; blocks stay
        byte-identical to serial for any pool.
    """

    def __init__(
        self,
        attributes: tuple[str, ...],
        q: int | None,
        k: int,
        l: int,
        *,
        seed: int = 0,
        padded: bool = False,
        batch: bool = True,
        workers: int | None = 1,
        processes: int | None = 1,
        pool: ShardPool | None = None,
        name: str | None = None,
    ) -> None:
        if k < 1 or l < 1:
            raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
        self.attributes = tuple(attributes)
        self.q = q
        self.k = k
        self.l = l
        self.seed = seed
        self.batch = batch
        self.workers = workers
        self.processes = processes
        self.pool = pool
        self.shingler = Shingler(self.attributes, q=q, padded=padded)
        self.hasher = MinHasher(num_hashes=k * l, seed=seed)
        self.name = name or "LSH"

    def describe(self) -> str:
        return f"{self.name}(q={self.q}, k={self.k}, l={self.l})"

    def _fill_index(self, dataset: Dataset, index: BandedLSHIndex) -> None:
        if not self.batch:
            for record in dataset:
                signature = self.hasher.signature(
                    self.shingler.shingle_ids(record)
                )
                index.add(record.record_id, split_bands(signature, self.k, self.l))
        elif effective_processes(self.processes, self.pool) > 1:
            for record_ids, signatures in signature_slabs(
                self.shingler, self.hasher, dataset, self.processes,
                workers=self.workers, pool=self.pool,
            ):
                index.add_many(
                    record_ids, split_bands_matrix(signatures, self.k, self.l)
                )
        else:
            corpus = self.shingler.shingle_corpus(dataset)
            signatures = self.hasher.signature_matrix(
                corpus, workers=self.workers
            )
            keys = split_bands_matrix(signatures, self.k, self.l)
            index.add_many(corpus.record_ids, keys)

    def block(self, dataset: Dataset) -> BlockingResult:
        start = time.perf_counter()
        index = BandedLSHIndex(self.l, processes=self.processes, pool=self.pool)
        self._fill_index(dataset, index)
        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "batch" if self.batch else "per-record",
            },
        )

    def online(
        self,
        records: Iterable[Record] = (),
        *,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
    ) -> OnlineLSHIndex:
        """A mutable :class:`OnlineLSHIndex` seeded with ``records``."""
        return OnlineLSHIndex(self, records, signatures_out=signatures_out)

    def block_pair(self, source, target=None) -> BipartiteBlockingResult:
        """Clean-clean linkage on the online streaming path.

        The target side is indexed first (exactly the resolver shape —
        the index holds the target), then the source records stream
        through the same incremental cursors as a second slab. By the
        incremental≡rebuild contract the resulting blocks equal a batch
        ``block()`` over the union in target-first insertion order, and
        because signatures and bucket membership are insertion-order
        independent the *cross pair set* equals the filtered
        ``block(S∪T)`` oracle. The ``processes=``/``pool=`` runtimes
        flow through unchanged, so results stay byte-identical across
        serial/sharded/pooled.
        """
        linked = _coerce_linked(source, target)
        start = time.perf_counter()
        index = self.online(linked.target.records)
        index.add_many(linked.source.records)
        blocks = index.blocks()
        elapsed = time.perf_counter() - start
        return BipartiteBlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "linkage-online",
                "num_source": len(linked.source),
                "num_target": len(linked.target),
            },
            linked=linked,
        )

    def block_stream(
        self,
        slabs: Iterable[Iterable[Record]],
        *,
        signatures_out: "np.ndarray | GrowableSignatureSpill | None" = None,
        vocabulary: ShingleVocabulary | None = None,
    ) -> BlockingResult:
        """Block a corpus streamed as record slabs.

        Each slab is shingled against one growing
        :class:`~repro.minhash.corpus.ShingleVocabulary`, minhashed on
        the batch engine (with this blocker's ``workers``), banded, and
        bulk-inserted; buckets merge across slabs, so the blocks are
        byte-identical to :meth:`block` over the concatenated records.
        ``slabs`` may be any iterable — including a plain generator of
        unknown length; nothing here calls ``len()``.

        Memory: the index keeps each slab's band keys, which are
        *views* of the slab's signature rows. With ``signatures_out``
        pointing at a memory map or growable spill, those views are
        file-backed (the OS pages them in and out at will), so resident
        memory is one slab's transient working set plus the final
        grouped index — that is the larger-than-RAM configuration.
        Without ``signatures_out``, the key views pin every slab's
        signature rows in RAM, so streaming only bounds the *transient*
        engine memory, not the signature matrix itself.

        Parameters
        ----------
        slabs:
            Iterable of record chunks, e.g. batches parsed from a file
            too large to load. Record ids must be unique across slabs.
        signatures_out:
            Optional spill target filled with consecutive row slabs so
            the full signature matrix lands on disk instead of RAM:
            either a preallocated uint64 buffer with exactly ``k * l``
            columns and at least ``total_records`` rows (typically a
            memory-mapped ``.npy`` from
            :func:`~repro.minhash.signature.open_signature_memmap`) or,
            when the stream length is unknown up front, a
            :class:`~repro.minhash.signature.GrowableSignatureSpill`
            with ``k * l`` hashes (the caller finalizes it afterwards).
        vocabulary:
            Optional vocabulary to extend (continue an earlier stream);
            a fresh one is used by default.
        """
        start = time.perf_counter()
        vocab = ShingleVocabulary() if vocabulary is None else vocabulary
        index = BandedLSHIndex(self.l, processes=self.processes, pool=self.pool)
        cursor = 0
        num_slabs = 0
        # An aborting stream must not leak the spill's file handle: the
        # handle is released (header patched to the rows written so
        # far) before the error propagates. Successful streams leave
        # the spill open for the caller to continue or finalize.
        try:
            for slab in slabs:
                corpus = self.shingler.shingle_corpus(slab, vocabulary=vocab)
                signatures = stream_slab_signatures(
                    self.hasher, corpus, signatures_out, cursor, self.workers
                )
                index.add_many(
                    corpus.record_ids,
                    split_bands_matrix(signatures, self.k, self.l),
                )
                cursor += corpus.num_records
                num_slabs += 1
        except BaseException:
            if isinstance(signatures_out, GrowableSignatureSpill):
                signatures_out.close()
            raise
        blocks = make_blocks(index.blocks())
        elapsed = time.perf_counter() - start
        return BlockingResult(
            blocker_name=self.name,
            blocks=blocks,
            seconds=elapsed,
            metadata={
                "k": self.k,
                "l": self.l,
                "q": self.q,
                "workers": self.workers,
                "processes": self.processes,
                "pooled": self.pool is not None,
                "engine": "streaming",
                "num_slabs": num_slabs,
                "num_records": cursor,
                "spilled": signatures_out is not None,
            },
        )
