"""Process-level sharding of the blocking hot loops.

The ``workers=`` runtime (threads) only helps the numpy kernels that
release the GIL; the remaining hot loops — string shingling, semantic
interpretation and the sort-and-segment bucket grouping — are GIL-bound
Python/numpy work. This module maps them over a
:class:`~concurrent.futures.ProcessPoolExecutor` in two phases (see
DESIGN.md, "Process-sharded streaming runtime"):

* **Record slabs** (map): the corpus is cut into contiguous record
  slabs; each worker shingles, minhashes and (for SA-LSH) interprets
  its slab with private state. Signatures are a pure function of the
  hashed gram multiset, and interpretations of the record alone, so the
  reassembled outputs are byte-identical to a single-process pass.
* **Band-key shards** (reduce): grouping entries into buckets routes
  each entry by a deterministic hash of its grouping label
  (:func:`fold_labels`), so every shard owns a *disjoint* label range
  and groups it independently — no cross-shard bucket merge is needed
  beyond concatenation. Each bucket's global first-occurrence position
  is carried back, and the merged emission order sorts on it, which
  reproduces the serial ``BandedLSHIndex.blocks`` order exactly.

Worker functions are module-level (the pickling contract of
:func:`repro.utils.parallel.map_processes`); payloads carry the
shingler/hasher/semantic-function objects plus plain record lists.

Because every sharded map goes through that one contract, the runtime's
fault tolerance (DESIGN.md, "Fault tolerance & the degradation ladder")
applies uniformly: a pooled map that loses a worker, times out or hits
a corrupt slab re-ships only the unfinished slabs — and, in the worst
case, computes them serially in-process — so the reassembled output
stays byte-identical to the serial pass under any single fault.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.records.record import Record
from repro.utils.parallel import (
    ShardPool,
    effective_processes,
    map_processes,
)

#: Multiplier of the label-folding hash (the 64-bit golden ratio, as in
#: splitmix64) — fixed so shard routing is deterministic across runs
#: and hosts.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX = np.uint64(0xFF51AFD7ED558CCD)
_SHIFT = np.uint64(33)


def record_slabs(
    records: Sequence[Record], num_slabs: int
) -> list[Sequence[Record]]:
    """Cut a record list into at most ``num_slabs`` contiguous slabs."""
    if num_slabs < 1:
        raise ConfigurationError(f"num_slabs must be >= 1, got {num_slabs}")
    n = len(records)
    per_slab = max(1, -(-n // num_slabs))
    return [records[lo : lo + per_slab] for lo in range(0, n, per_slab)]


def _plain_slab(payload):
    shingler, hasher, records, workers = payload
    corpus = shingler.shingle_corpus(records)
    return corpus.record_ids, hasher.signature_matrix(corpus, workers=workers)


def _runner_up_slab(payload):
    shingler, hasher, records, workers = payload
    corpus = shingler.shingle_corpus(records)
    minima, runners = hasher.signature_matrix_with_runner_up(
        corpus, workers=workers
    )
    return corpus.record_ids, minima, runners


def _semantic_slab(payload):
    shingler, hasher, semantic_function, records, workers = payload
    corpus = shingler.shingle_corpus(records)
    zetas = [semantic_function.interpret(record) for record in records]
    return (
        corpus.record_ids,
        hasher.signature_matrix(corpus, workers=workers),
        zetas,
    )


def _pooled_slabs(records, processes, pool):
    """Cut ``records`` into slabs, interning them on the pool if one is
    given.

    The interning key is the original ``records`` object (typically the
    Dataset) plus the slab layout, so repeated blocking calls over the
    same corpus reuse the parked slab files without even re-cutting the
    record list — the slab *contents* are identical either way, and all
    three slab flavours share one parked copy per corpus. Interning is
    best-effort: a pool whose slab directory cannot take the files
    (even after its disk fallback) hands the slabs back unparked, and
    the pool retains the originals so a parked file corrupted later can
    be rewritten in place during fault recovery.
    """
    layout = effective_processes(processes, pool)
    if pool is not None:
        cached = pool.get_interned_slabs(records, layout)
        if cached is not None:
            return cached
    slabs = record_slabs(list(records), layout)
    if pool is not None:
        slabs = pool.intern_slabs(records, layout, slabs)
    return slabs


def signature_slabs(
    shingler, hasher, records, processes, *, workers=1, pool=None
):
    """Shingle + minhash record slabs across processes.

    Returns one ``(record_ids, signature_matrix)`` tuple per slab, in
    record order — concatenated they equal the single-process corpus
    pass byte for byte (each worker interns a private vocabulary, which
    signatures do not depend on). ``workers`` threads evaluate each
    slab's hash-function chunks *inside* its worker process, so the two
    knobs compose (processes × workers) instead of one silently
    disabling the other. ``pool`` runs the map on a persistent
    :class:`~repro.utils.parallel.ShardPool` (its process count also
    sets the slab layout) instead of a per-call executor, and interns
    the record slabs so repeated calls over one corpus stop
    re-pickling them.
    """
    slabs = _pooled_slabs(records, processes, pool)
    return map_processes(
        _plain_slab,
        [(shingler, hasher, slab, workers) for slab in slabs],
        processes,
        pool=pool,
    )


def runner_up_signature_slabs(
    shingler, hasher, records, processes, *, workers=1, pool=None
):
    """Like :func:`signature_slabs` for minima + runner-up matrices."""
    slabs = _pooled_slabs(records, processes, pool)
    return map_processes(
        _runner_up_slab,
        [(shingler, hasher, slab, workers) for slab in slabs],
        processes,
        pool=pool,
    )


def semantic_signature_slabs(
    shingler, hasher, semantic_function, records, processes, *,
    workers=1, pool=None,
):
    """Shingle + minhash + interpret record slabs across processes.

    Returns one ``(record_ids, signature_matrix, zetas)`` tuple per
    slab; ``zetas`` aligns with ``record_ids``. Interpretation (the
    regex/lookup-heavy ζ evaluation) happens exactly once per record,
    inside the workers — the parent derives the semhash bit set from
    the shipped ζ sets without re-interpreting anything.
    """
    slabs = _pooled_slabs(records, processes, pool)
    return map_processes(
        _semantic_slab,
        [(shingler, hasher, semantic_function, slab, workers) for slab in slabs],
        processes,
        pool=pool,
    )


def fold_labels(labels: np.ndarray) -> np.ndarray:
    """Deterministic uint64 hash of grouping labels, for shard routing.

    Accepts the two label dtypes the index groups by — fixed-width byte
    band keys (``S{8k}``, folded word-wise) and combined int64
    (band, gate-suffix) labels — and avalanches the fold so shard
    assignment ``fold_labels(labels) % num_shards`` spreads near-equal
    labels. Equal labels always fold equal, so every bucket lands
    wholly inside one shard.
    """
    if labels.dtype.kind == "S":
        itemsize = labels.dtype.itemsize
        if itemsize % 8 != 0:
            raise ConfigurationError(
                f"byte labels must be a multiple of 8 wide, got {itemsize}"
            )
        words = (
            np.ascontiguousarray(labels)
            .view(np.uint64)
            .reshape(len(labels), itemsize // 8)
        )
        folded = np.zeros(len(labels), dtype=np.uint64)
        for column in range(words.shape[1]):
            folded = folded * _GOLDEN + words[:, column]
    else:
        folded = labels.astype(np.uint64, copy=True) * _GOLDEN
    folded ^= folded >> _SHIFT
    folded *= _MIX
    folded ^= folded >> _SHIFT
    return folded


def _segment_shard(payload):
    """Worker: sort-and-segment every (table, labels) subset of a shard."""
    from repro.lsh.index import _segment

    return [(table, _segment(labels)) for table, labels in payload]


def group_tables_sharded(entries, processes, pool: "ShardPool | None" = None):
    """Group per-table entries into buckets across process shards.

    ``entries`` is one ``(entry_ids, labels)`` pair (or ``None``) per
    table, in serial entry order — the output of
    ``BandedLSHIndex._table_entries``. Entries are routed to
    ``effective_processes(processes, pool)`` shards by label hash; each
    shard sort-and-segments its disjoint label subset, and the merged
    buckets are re-emitted by ascending global first-occurrence
    position — byte-identical to the serial grouping (members ascend
    within each bucket because shard subsets preserve relative entry
    order). With ``pool`` set the shards run on the persistent pool and
    each shard's label arrays ride as shared-memory slabs.

    Returns one ``_BulkBuckets`` (or ``None``) per table.
    """
    from repro.lsh.index import _BulkBuckets

    num_shards = effective_processes(processes, pool)
    payloads: list[list] = [[] for _ in range(num_shards)]
    selections: dict[tuple[int, int], np.ndarray] = {}
    for table, entry in enumerate(entries):
        if entry is None:
            continue
        _, labels = entry
        shard_ids = fold_labels(labels) % np.uint64(num_shards)
        for shard in range(num_shards):
            chosen = np.flatnonzero(shard_ids == shard)
            if chosen.size == 0:
                continue
            selections[(shard, table)] = chosen
            payloads[shard].append((table, labels[chosen]))
    results = map_processes(_segment_shard, payloads, processes, pool=pool)

    merged: list = [None] * len(entries)
    parts: dict[int, list] = {}
    for shard, result in enumerate(results):
        for table, (order, starts, ends) in result:
            chosen = selections[(shard, table)]
            entry_ids = entries[table][0]
            positions = chosen[order]
            parts.setdefault(table, []).append(
                (entry_ids[positions], starts, ends, positions[starts])
            )
    for table, shard_parts in parts.items():
        members = np.concatenate([p[0] for p in shard_parts])
        sizes = [p[0].size for p in shard_parts]
        offsets = np.cumsum([0] + sizes[:-1])
        starts = np.concatenate(
            [p[1] + offset for p, offset in zip(shard_parts, offsets)]
        )
        ends = np.concatenate(
            [p[2] + offset for p, offset in zip(shard_parts, offsets)]
        )
        first_positions = np.concatenate([p[3] for p in shard_parts])
        emit_order = np.argsort(first_positions, kind="stable")
        merged[table] = _BulkBuckets(members, starts, ends, emit_order)
    return merged
