"""Splitting minhash signatures into bands (hash tables)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def split_bands(signature: np.ndarray, k: int, l: int) -> list[tuple[int, ...]]:
    """Split a length-(k*l) signature into ``l`` tuples of ``k`` values.

    Each tuple is the key of the record in one hash table; records whose
    keys agree in *any* table land in a common block.
    """
    if signature.shape[0] != k * l:
        raise ConfigurationError(
            f"signature length {signature.shape[0]} != k*l = {k * l}"
        )
    return [tuple(int(v) for v in signature[band * k : (band + 1) * k]) for band in range(l)]


def split_bands_matrix(signatures: np.ndarray, k: int, l: int) -> np.ndarray:
    """All band keys of all records in one pass — the batch form.

    ``signatures`` is the ``(n, k * l)`` uint64 signature matrix of a
    corpus (row order = record order). Returns an ``(n, l)`` array of
    opaque band keys: each key is the little-endian byte view of the
    contiguous k-value signature slice (dtype ``S{8k}``), so two keys
    compare equal exactly when the corresponding k-tuples from
    :func:`split_bands` are equal. The fixed-width bytes keys are
    hashable, sortable and ``np.unique``-able without materialising
    ``n * l`` Python tuples.

    Note numpy's S dtype truncates trailing NUL bytes when a scalar is
    *read*; since every key starts from exactly ``8 * k`` bytes, the
    truncation is injective and equality/grouping semantics are
    unaffected. Re-pad with ``key.ljust(8 * k, b"\\0")`` to recover the
    raw uint64 tuple.
    """
    if signatures.ndim != 2 or signatures.shape[1] != k * l:
        raise ConfigurationError(
            f"signature matrix of shape {signatures.shape} incompatible "
            f"with k*l = {k * l}"
        )
    contiguous = np.ascontiguousarray(signatures, dtype=np.uint64)
    return contiguous.reshape(-1).view(f"S{8 * k}").reshape(-1, l)


def record_band_keys(signature: np.ndarray, k: int, l: int) -> list[bytes]:
    """One record's band keys in the batch key convention.

    The single-record counterpart of :func:`split_bands_matrix`:
    returns ``l`` Python ``bytes`` keys that compare equal to the
    matrix keys of the same signature (numpy's trailing-NUL truncation
    applies to both sides, so equality is preserved). This is what the
    online query path uses to probe an index that was bulk-filled.
    """
    return split_bands_matrix(
        np.asarray(signature, dtype=np.uint64).reshape(1, -1), k, l
    )[0].tolist()


def band_keys(signature: np.ndarray, k: int, l: int) -> list[int]:
    """Hashed band keys — one Python int per hash table.

    Collapses each k-tuple with the builtin tuple hash; cheaper to store
    than tuples while preserving exact-equality collisions with
    overwhelmingly high probability.
    """
    return [hash(band) for band in split_bands(signature, k, l)]
