"""Splitting minhash signatures into bands (hash tables)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def split_bands(signature: np.ndarray, k: int, l: int) -> list[tuple[int, ...]]:
    """Split a length-(k*l) signature into ``l`` tuples of ``k`` values.

    Each tuple is the key of the record in one hash table; records whose
    keys agree in *any* table land in a common block.
    """
    if signature.shape[0] != k * l:
        raise ConfigurationError(
            f"signature length {signature.shape[0]} != k*l = {k * l}"
        )
    return [tuple(int(v) for v in signature[band * k : (band + 1) * k]) for band in range(l)]


def band_keys(signature: np.ndarray, k: int, l: int) -> list[int]:
    """Hashed band keys — one Python int per hash table.

    Collapses each k-tuple with the builtin tuple hash; cheaper to store
    than tuples while preserving exact-equality collisions with
    overwhelmingly high probability.
    """
    return [hash(band) for band in split_bands(signature, k, l)]
