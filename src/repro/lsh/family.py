"""LSH family sensitivity model.

A family ``H`` is (d1, d2, p1, p2)-sensitive over a distance space when
close pairs (distance <= d1) collide with probability >= p1 and far
pairs (distance >= d2) collide with probability <= p2. Banding with
``k`` rows per band and ``l`` bands turns a (d1, d2, p1, p2)-sensitive
family into a (d1, d2, 1-(1-p1^k)^l, 1-(1-p2^k)^l)-sensitive family
(paper §5.1 step 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensitivityParams:
    """The (d1, d2, p1, p2) tuple describing an LSH family."""

    d1: float
    d2: float
    p1: float
    p2: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.d1 <= self.d2 <= 1.0:
            raise ConfigurationError(
                f"need 0 <= d1 <= d2 <= 1, got d1={self.d1}, d2={self.d2}"
            )
        for name, p in (("p1", self.p1), ("p2", self.p2)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if self.p1 < self.p2:
            raise ConfigurationError(
                f"a useful family needs p1 >= p2, got p1={self.p1} < p2={self.p2}"
            )

    @property
    def gap(self) -> float:
        """The probability gap p1 - p2 that amplification widens."""
        return self.p1 - self.p2


def amplify_sensitivity(params: SensitivityParams, k: int, l: int) -> SensitivityParams:
    """Apply k-row AND / l-band OR amplification to a family.

    >>> base = SensitivityParams(0.2, 0.6, 0.8, 0.4)
    >>> amplified = amplify_sensitivity(base, k=4, l=8)
    >>> amplified.p1 > amplified.p2
    True
    """
    if k < 1 or l < 1:
        raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
    p1 = 1.0 - (1.0 - params.p1**k) ** l
    p2 = 1.0 - (1.0 - params.p2**k) ** l
    return SensitivityParams(params.d1, params.d2, p1, p2)
