"""The banded LSH index: hash tables of buckets.

Construction is a single pass over the records (O(n * l)); blocks are
the buckets that hold at least two records. The optional semantic gate
(used by SA-LSH) extends each bucket key with suffixes derived from the
record's semhash signature, implementing the w-way AND/OR functions of
paper §5.2 without pairwise work (see DESIGN.md, "O(n) SA-LSH bucket
construction").

Two insertion styles fill the same index:

* :meth:`BandedLSHIndex.add` — one record at a time into per-table
  dicts of buckets (the legacy path);
* :meth:`BandedLSHIndex.add_many` — a whole corpus at once: buckets
  are derived per table by one vectorized sort-and-segment pass and
  stored as grouped arrays, never touching a Python dict (see
  DESIGN.md, "Batch signature engine"). Both styles emit buckets in
  first-occurrence order with members in insertion order, so
  :meth:`BandedLSHIndex.blocks` is byte-identical across them.

  Buckets never merge across insertion calls: each ``add_many`` call
  groups only the records it was given, and its buckets stay separate
  from dict buckets and from other ``add_many`` calls even under equal
  band keys. Insert one corpus with one call; streaming slab-wise
  insertion that merges across calls is future work (see ROADMAP.md).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

GateFn = Callable[[int, str], Sequence[Hashable]]
#: A gate takes (table_index, record_id) and returns the bucket-key
#: suffixes under which the record is inserted in that table. Returning
#: an empty sequence excludes the record from the table entirely.


def _no_gate(_table: int, _record_id: str) -> Sequence[Hashable]:
    return (0,)


#: Batch gate entries for one table: ``(entry_rows, suffixes)`` where
#: ``entry_rows`` are record row indices (one per insertion, possibly
#: repeated for multi-suffix OR gates) and ``suffixes`` is either a
#: single hashable shared by all entries (AND gates) or a per-entry
#: int array (OR gates). An empty ``entry_rows`` excludes every record
#: from the table.
GateEntries = tuple[np.ndarray, "np.ndarray | Hashable"]


def _segment(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort-and-segment equal labels: (order, starts, ends).

    ``order`` is a stable permutation grouping equal labels; group ``g``
    occupies ``order[starts[g]:ends[g]]``. Stability keeps positions
    ascending within each group.
    """
    order = np.argsort(labels, kind="stable")
    ordered = labels[order]
    boundaries = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [labels.size]])
    return order, starts, ends


def grouped_indices(labels: np.ndarray) -> list[np.ndarray]:
    """Group positions of equal labels, vectorized.

    Returns one int array per distinct label. Positions within a group
    are ascending and groups are ordered by first occurrence — exactly
    the order a ``dict``-of-lists insertion loop over ``labels`` would
    produce, which keeps batch blockers byte-identical to the legacy
    per-record path.
    """
    if labels.size == 0:
        return []
    order, starts, ends = _segment(labels)
    first_occurrence = np.argsort(order[starts], kind="stable")
    return [
        order[starts[g] : ends[g]] for g in first_occurrence
    ]


class _BulkBuckets:
    """Grouped buckets of one ``add_many`` call for one table.

    ``members`` holds record ids permuted into group order; bucket ``g``
    is ``members[starts[g]:ends[g]]`` and ``emit_order`` lists buckets
    by first occurrence. Keeping the arrays (instead of dict entries)
    makes bulk insertion O(sort) and lets :meth:`BandedLSHIndex.blocks`
    skip singleton buckets without materialising them.
    """

    __slots__ = ("members", "starts", "ends", "emit_order")

    def __init__(
        self,
        members: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        emit_order: np.ndarray,
    ) -> None:
        self.members = members
        self.starts = starts
        self.ends = ends
        self.emit_order = emit_order

    def sizes(self) -> np.ndarray:
        return self.ends - self.starts

    def iter_buckets(self, min_size: int) -> Iterable[tuple[str, ...]]:
        sizes = self.sizes()
        for g in self.emit_order[sizes[self.emit_order] >= min_size]:
            yield tuple(self.members[self.starts[g] : self.ends[g]])


class BandedLSHIndex:
    """Accumulates records into ``l`` hash tables keyed by band keys."""

    def __init__(self, num_tables: int) -> None:
        if num_tables < 1:
            raise ValueError(f"need at least one table, got {num_tables}")
        self.num_tables = num_tables
        self._tables: list[dict[Hashable, list[str]]] = [
            defaultdict(list) for _ in range(num_tables)
        ]
        self._bulk: list[list[_BulkBuckets]] = [[] for _ in range(num_tables)]

    def add(
        self,
        record_id: str,
        keys: Sequence[Hashable],
        gate: GateFn = _no_gate,
    ) -> None:
        """Insert one record under its per-table band keys.

        Parameters
        ----------
        record_id:
            Identifier stored in the buckets.
        keys:
            One band key per table (length must equal ``num_tables``).
        gate:
            Semantic gate; for every table the record is inserted once
            per suffix the gate yields.
        """
        if len(keys) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} band keys, got {len(keys)}"
            )
        for table_index, key in enumerate(keys):
            for suffix in gate(table_index, record_id):
                self._tables[table_index][(key, suffix)].append(record_id)

    def add_many(
        self,
        record_ids: Sequence[str],
        key_matrix: np.ndarray,
        gate_entries: Sequence[GateEntries | None] | None = None,
    ) -> None:
        """Bulk insertion of a whole corpus — the batch counterpart of
        :meth:`add`.

        Parameters
        ----------
        record_ids:
            One id per key-matrix row, in dataset order.
        key_matrix:
            ``(n, num_tables)`` array of band keys, one column per
            table, as produced by
            :func:`repro.lsh.bands.split_bands_matrix`. Any sortable
            ``np.unique``-able dtype works.
        gate_entries:
            Optional per-table batch gates (see :data:`GateEntries`);
            ``None`` inserts every record once per table, like the
            per-record no-gate path.

        Buckets come out of :meth:`blocks` in first-occurrence order
        with members in dataset order — exactly what n calls to
        :meth:`add` would have produced — at the cost of one stable
        sort per table instead of per-record dict operations.

        Records of *one corpus* must arrive in *one call*: buckets do
        not merge with earlier ``add_many`` or :meth:`add` insertions,
        so splitting a corpus across calls silently splits its blocks.
        """
        n = len(record_ids)
        key_matrix = np.asarray(key_matrix)
        if key_matrix.shape[:2] != (n, self.num_tables):
            raise ValueError(
                f"expected a ({n}, {self.num_tables}) key matrix, got "
                f"shape {key_matrix.shape}"
            )
        if gate_entries is not None and len(gate_entries) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} gate entries, got {len(gate_entries)}"
            )
        if n == 0:
            return
        ids = np.asarray(record_ids, dtype=object)
        for table in range(self.num_tables):
            keys_col = key_matrix[:, table]
            if gate_entries is None or gate_entries[table] is None:
                # Band keys sort directly; no per-entry suffixes.
                order, starts, ends = _segment(keys_col)
                entry_ids = ids
            else:
                entry_rows, suffixes = gate_entries[table]
                entry_rows = np.asarray(entry_rows, dtype=np.int64)
                if entry_rows.size == 0:
                    continue
                _, band_label = np.unique(keys_col, return_inverse=True)
                if isinstance(suffixes, np.ndarray):
                    # Distinct (band, suffix) pairs need distinct
                    # labels: stride the band label by the suffix range.
                    suffixes = suffixes.astype(np.int64, copy=False)
                    span = int(suffixes.max()) + 1
                    labels = band_label[entry_rows] * span + suffixes
                else:
                    # One shared suffix (AND gates): the band label
                    # alone separates buckets.
                    labels = band_label[entry_rows]
                order, starts, ends = _segment(labels)
                entry_ids = ids[entry_rows]
            emit_order = np.argsort(order[starts], kind="stable")
            self._bulk[table].append(
                _BulkBuckets(entry_ids[order], starts, ends, emit_order)
            )

    def blocks(self, *, min_size: int = 2) -> list[tuple[str, ...]]:
        """All buckets holding at least ``min_size`` records.

        Bucket contents preserve insertion order; a bucket from table t
        is independent of buckets from other tables (blocks may overlap,
        as the paper's framework intends).
        """
        found: list[tuple[str, ...]] = []
        for table in range(self.num_tables):
            for members in self._tables[table].values():
                if len(members) >= min_size:
                    found.append(tuple(members))
            for bulk in self._bulk[table]:
                found.extend(bulk.iter_buckets(min_size))
        return found

    def bucket_sizes(self) -> list[int]:
        """Sizes of all non-empty buckets (diagnostics)."""
        sizes = [
            len(members) for table in self._tables for members in table.values()
        ]
        for per_table in self._bulk:
            for bulk in per_table:
                sizes.extend(bulk.sizes()[bulk.emit_order].tolist())
        return sizes
