"""The banded LSH index: hash tables of buckets.

Construction is a single pass over the records (O(n * l)); blocks are
the buckets that hold at least two records. The optional semantic gate
(used by SA-LSH) extends each bucket key with suffixes derived from the
record's semhash signature, implementing the w-way AND/OR functions of
paper §5.2 without pairwise work (see DESIGN.md, "O(n) SA-LSH bucket
construction").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

GateFn = Callable[[int, str], Sequence[Hashable]]
#: A gate takes (table_index, record_id) and returns the bucket-key
#: suffixes under which the record is inserted in that table. Returning
#: an empty sequence excludes the record from the table entirely.


def _no_gate(_table: int, _record_id: str) -> Sequence[Hashable]:
    return (0,)


class BandedLSHIndex:
    """Accumulates records into ``l`` hash tables keyed by band keys."""

    def __init__(self, num_tables: int) -> None:
        if num_tables < 1:
            raise ValueError(f"need at least one table, got {num_tables}")
        self.num_tables = num_tables
        self._tables: list[dict[Hashable, list[str]]] = [
            defaultdict(list) for _ in range(num_tables)
        ]

    def add(
        self,
        record_id: str,
        keys: Sequence[Hashable],
        gate: GateFn = _no_gate,
    ) -> None:
        """Insert one record under its per-table band keys.

        Parameters
        ----------
        record_id:
            Identifier stored in the buckets.
        keys:
            One band key per table (length must equal ``num_tables``).
        gate:
            Semantic gate; for every table the record is inserted once
            per suffix the gate yields.
        """
        if len(keys) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} band keys, got {len(keys)}"
            )
        for table_index, key in enumerate(keys):
            for suffix in gate(table_index, record_id):
                self._tables[table_index][(key, suffix)].append(record_id)

    def blocks(self, *, min_size: int = 2) -> list[tuple[str, ...]]:
        """All buckets holding at least ``min_size`` records.

        Bucket contents preserve insertion order; a bucket from table t
        is independent of buckets from other tables (blocks may overlap,
        as the paper's framework intends).
        """
        found: list[tuple[str, ...]] = []
        for table in self._tables:
            for members in table.values():
                if len(members) >= min_size:
                    found.append(tuple(members))
        return found

    def bucket_sizes(self) -> list[int]:
        """Sizes of all non-empty buckets (diagnostics)."""
        return [
            len(members) for table in self._tables for members in table.values()
        ]
