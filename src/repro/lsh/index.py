"""The banded LSH index: hash tables of buckets.

Construction is a single pass over the records (O(n * l)); blocks are
the buckets that hold at least two records. The optional semantic gate
(used by SA-LSH) extends each bucket key with suffixes derived from the
record's semhash signature, implementing the w-way AND/OR functions of
paper §5.2 without pairwise work (see DESIGN.md, "O(n) SA-LSH bucket
construction").

Two insertion styles fill the same index:

* :meth:`BandedLSHIndex.add` — one record at a time into per-table
  dicts of buckets (the legacy path);
* :meth:`BandedLSHIndex.add_many` — one *slab* (a whole corpus, or a
  streamed chunk of one) at a time: slabs are appended cheaply and the
  buckets of every table are derived lazily, by one vectorized
  sort-and-segment pass over all slabs together, never touching a
  Python dict (see DESIGN.md, "Batch signature engine" and "Parallel &
  streaming runtime"). Buckets *merge across ``add_many`` calls* —
  records from different slabs sharing a (band key, gate suffix) land
  in one bucket, exactly as if the concatenated corpus had been
  inserted in a single call — which is what lets corpora larger than
  RAM stream through blocking slab by slab. Both insertion styles emit
  buckets in first-occurrence order with members in insertion order,
  so :meth:`BandedLSHIndex.blocks` is byte-identical across them.

  The one seam that does not merge: dict buckets from :meth:`add` stay
  separate from bulk buckets (the legacy path exists for equivalence
  tests; production code uses one style per index).

Beyond construction, the index is a *mutable, long-lived* structure
(the online resolver path): :meth:`BandedLSHIndex.remove` tombstones a
record without regrouping, and :meth:`BandedLSHIndex.query_keys`
answers "which live records share a bucket with these band keys"
against both insertion styles without mutating anything. Tombstoned
entries are dropped *before* the deferred grouping runs, so
:meth:`BandedLSHIndex.blocks` after removals is byte-identical to
rebuilding the index from the surviving records in their original
insertion order. Removed ids are retired permanently — re-adding one
would resurrect its dead bucket entries — so replacements must use a
fresh id.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.utils.parallel import ShardPool, effective_processes

GateFn = Callable[[int, str], Sequence[Hashable]]
#: A gate takes (table_index, record_id) and returns the bucket-key
#: suffixes under which the record is inserted in that table. Returning
#: an empty sequence excludes the record from the table entirely.


def _no_gate(_table: int, _record_id: str) -> Sequence[Hashable]:
    return (0,)


#: Marker object coding "no gate" entries when gated and ungated slabs
#: meet in one table (they must not share buckets with any real suffix).
_NO_GATE = object()


def _scalar_code(codes: dict[Hashable, int], suffix: Hashable) -> int:
    """Negative integer code of a shared (AND-style) gate suffix.

    Negative codes can never collide with OR-gate suffixes, which are
    non-negative semhash bit indices; distinct scalar suffixes get
    distinct codes, and equal suffixes from different slabs get the
    same code — so cross-slab bucket merging matches the per-record
    dict keyed by (band key, suffix).
    """
    code = codes.get(suffix)
    if code is None:
        code = -1 - len(codes)
        codes[suffix] = code
    return code


#: Batch gate entries for one table: ``(entry_rows, suffixes)`` where
#: ``entry_rows`` are record row indices (one per insertion, possibly
#: repeated for multi-suffix OR gates) and ``suffixes`` is either a
#: single hashable shared by all entries (AND gates) or a per-entry
#: int array (OR gates). An empty ``entry_rows`` excludes every record
#: from the table.
GateEntries = tuple[np.ndarray, "np.ndarray | Hashable"]


def _segment(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort-and-segment equal labels: (order, starts, ends).

    ``order`` is a stable permutation grouping equal labels; group ``g``
    occupies ``order[starts[g]:ends[g]]``. Stability keeps positions
    ascending within each group.
    """
    order = np.argsort(labels, kind="stable")
    ordered = labels[order]
    boundaries = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [labels.size]])
    return order, starts, ends


def grouped_indices(labels: np.ndarray) -> list[np.ndarray]:
    """Group positions of equal labels, vectorized.

    Returns one int array per distinct label. Positions within a group
    are ascending and groups are ordered by first occurrence — exactly
    the order a ``dict``-of-lists insertion loop over ``labels`` would
    produce, which keeps batch blockers byte-identical to the legacy
    per-record path.
    """
    if labels.size == 0:
        return []
    order, starts, ends = _segment(labels)
    first_occurrence = np.argsort(order[starts], kind="stable")
    return [
        order[starts[g] : ends[g]] for g in first_occurrence
    ]


class _PendingSlab:
    """One ``add_many`` call, kept raw until the index is finalised.

    Grouping is deferred so that buckets can merge across slabs: the
    index concatenates every slab's keys (and gate entries) per table
    and groups them in one pass, which is both cheaper than re-grouping
    on every call and required for streamed corpora to produce the same
    blocks as a single bulk insertion.
    """

    __slots__ = ("ids", "key_matrix", "gate_entries")

    def __init__(
        self,
        ids: np.ndarray,
        key_matrix: np.ndarray,
        gate_entries: "Sequence[GateEntries | None] | None",
    ) -> None:
        self.ids = ids
        self.key_matrix = key_matrix
        self.gate_entries = gate_entries


class _BulkBuckets:
    """Grouped buckets of the merged bulk insertions for one table.

    ``members`` holds record ids permuted into group order; bucket ``g``
    is ``members[starts[g]:ends[g]]`` and ``emit_order`` lists buckets
    by first occurrence. Keeping the arrays (instead of dict entries)
    makes bulk insertion O(sort) and lets :meth:`BandedLSHIndex.blocks`
    skip singleton buckets without materialising them.
    """

    __slots__ = ("members", "starts", "ends", "emit_order")

    def __init__(
        self,
        members: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        emit_order: np.ndarray,
    ) -> None:
        self.members = members
        self.starts = starts
        self.ends = ends
        self.emit_order = emit_order

    def sizes(self) -> np.ndarray:
        return self.ends - self.starts

    def iter_buckets(self, min_size: int) -> Iterable[tuple[str, ...]]:
        sizes = self.sizes()
        for g in self.emit_order[sizes[self.emit_order] >= min_size]:
            yield tuple(self.members[self.starts[g] : self.ends[g]])


class BandedLSHIndex:
    """Accumulates records into ``l`` hash tables keyed by band keys.

    ``processes`` routes the bulk bucket grouping through the
    band-sharded process runtime (see DESIGN.md, "Process-sharded
    streaming runtime"): entries are hashed to disjoint label shards,
    each grouped by a worker process, and re-emitted in global
    first-occurrence order — :meth:`blocks` is byte-identical for every
    process count. ``pool`` runs that grouping on a persistent
    :class:`~repro.utils.parallel.ShardPool` (its process count wins)
    instead of forking a fresh executor per grouping pass.
    """

    def __init__(
        self,
        num_tables: int,
        *,
        processes: int | None = 1,
        pool: ShardPool | None = None,
    ) -> None:
        if num_tables < 1:
            raise ValueError(f"need at least one table, got {num_tables}")
        self.num_tables = num_tables
        self.processes = processes
        self.pool = pool
        self._tables: list[dict[Hashable, list[str]]] = [
            defaultdict(list) for _ in range(num_tables)
        ]
        self._pending: list[_PendingSlab] = []
        #: Lazily derived buckets of all pending slabs, merged — one
        #: (or no) bucket group per table; ``None`` marks the cache
        #: stale (new slabs arrived since the last grouping).
        self._bulk: list[_BulkBuckets | None] | None = None
        #: Ids ever inserted (either style) and ids since retired.
        self._ids_seen: set[str] = set()
        self._tombstones: set[str] = set()
        #: Lazy per-table query maps over the bulk slabs:
        #: ``(band key, suffix) -> [record ids in insertion order]``.
        #: Extended incrementally (``_query_cursor`` counts the slabs
        #: already folded in); removals filter at lookup time, so
        #: neither mutation invalidates the maps.
        self._query_maps: list[dict] | None = None
        self._query_cursor = 0

    def add(
        self,
        record_id: str,
        keys: Sequence[Hashable],
        gate: GateFn = _no_gate,
    ) -> None:
        """Insert one record under its per-table band keys.

        Parameters
        ----------
        record_id:
            Identifier stored in the buckets.
        keys:
            One band key per table (length must equal ``num_tables``).
        gate:
            Semantic gate; for every table the record is inserted once
            per suffix the gate yields.
        """
        if len(keys) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} band keys, got {len(keys)}"
            )
        if record_id in self._tombstones:
            raise KeyError(
                f"record id {record_id!r} was removed and is retired; "
                "re-adding it would resurrect its dead bucket entries"
            )
        self._ids_seen.add(record_id)
        for table_index, key in enumerate(keys):
            for suffix in gate(table_index, record_id):
                self._tables[table_index][(key, suffix)].append(record_id)

    def add_many(
        self,
        record_ids: Sequence[str],
        key_matrix: np.ndarray,
        gate_entries: Sequence[GateEntries | None] | None = None,
    ) -> None:
        """Bulk insertion of a whole corpus — the batch counterpart of
        :meth:`add`.

        Parameters
        ----------
        record_ids:
            One id per key-matrix row, in dataset order.
        key_matrix:
            ``(n, num_tables)`` array of band keys, one column per
            table, as produced by
            :func:`repro.lsh.bands.split_bands_matrix`. Any sortable
            ``np.unique``-able dtype works.
        gate_entries:
            Optional per-table batch gates (see :data:`GateEntries`);
            ``None`` inserts every record once per table, like the
            per-record no-gate path.

        Buckets come out of :meth:`blocks` in first-occurrence order
        with members in insertion order — exactly what n calls to
        :meth:`add` would have produced — at the cost of one stable
        sort per table instead of per-record dict operations.

        Slabs of one corpus may arrive across *multiple* calls (the
        streaming path): grouping is deferred until :meth:`blocks` /
        :meth:`bucket_sizes`, where all slabs are concatenated per
        table and bucketed together, so records from different slabs
        with equal (band key, gate suffix) share a bucket. Record ids
        must be unique across slabs, as within a dataset.
        """
        n = len(record_ids)
        key_matrix = np.asarray(key_matrix)
        if key_matrix.shape[:2] != (n, self.num_tables):
            raise ValueError(
                f"expected a ({n}, {self.num_tables}) key matrix, got "
                f"shape {key_matrix.shape}"
            )
        if gate_entries is not None and len(gate_entries) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} gate entries, got {len(gate_entries)}"
            )
        if n == 0:
            return
        if self._tombstones and not self._tombstones.isdisjoint(record_ids):
            retired = sorted(self._tombstones.intersection(record_ids))
            raise KeyError(
                f"record ids {retired!r} were removed and are retired; "
                "re-adding them would resurrect their dead bucket entries"
            )
        self._ids_seen.update(record_ids)
        self._pending.append(
            _PendingSlab(
                np.asarray(record_ids, dtype=object), key_matrix, gate_entries
            )
        )
        self._bulk = None

    def remove(self, record_id: str) -> None:
        """Tombstone one record — O(1), no regrouping.

        The record stops appearing in :meth:`blocks`, :meth:`query_keys`
        and :meth:`bucket_sizes`; dead entries are dropped *before* the
        deferred grouping runs, so the resulting blocks are
        byte-identical to an index rebuilt from the surviving records
        in their original insertion order. The id is retired for the
        index's lifetime (see :meth:`add_many`).

        Raises
        ------
        KeyError
            If the id was never inserted or is already removed.
        """
        if record_id in self._tombstones or record_id not in self._ids_seen:
            raise KeyError(record_id)
        self._tombstones.add(record_id)
        self._bulk = None

    def is_retired(self, record_id: str) -> bool:
        """True when the id was removed (and may never be re-added)."""
        return record_id in self._tombstones

    @property
    def num_live(self) -> int:
        """Distinct inserted ids minus tombstoned ones."""
        return len(self._ids_seen) - len(self._tombstones)

    def retired_ids(self) -> list[str]:
        """Sorted retired ids — the checkpointable removal state."""
        return sorted(self._tombstones)

    def restore_retired(self, record_ids: Iterable[str]) -> None:
        """Re-register retired ids on an index rebuilt from survivors.

        A checkpoint restores an online index by re-inserting the
        surviving records and then replaying the retired-id set through
        this method, so re-adding a removed id keeps raising after
        recovery exactly as it did before the crash. The ids must not
        name live records (they were removed, so a survivor rebuild
        never contains them).
        """
        for record_id in record_ids:
            if record_id in self._ids_seen and record_id not in self._tombstones:
                raise KeyError(
                    f"cannot retire live record {record_id!r} during "
                    "restore; retired ids must be absent from the "
                    "survivor rebuild"
                )
            self._ids_seen.add(record_id)
            self._tombstones.add(record_id)
        self._bulk = None

    def export_entries(
        self,
    ) -> tuple[np.ndarray, "list[list[tuple[np.ndarray, np.ndarray, object]]]"]:
        """Raw live bulk entries for the on-disk index exporter.

        Returns ``(ids, tables)``: ``ids`` is the live record ids in
        insertion order; ``tables`` holds, per table, a list of
        ``(rows, keys, suffixes)`` segments in insertion order, where
        ``rows`` are int64 indices into ``ids``, ``keys`` the
        segment's fixed-width band keys (aligned with ``rows``) and
        ``suffixes`` is ``None`` for ungated entries, a per-entry
        non-negative int array for OR gates, or the scalar suffix
        shared by the whole segment for AND-style gates. Tombstoned
        records are dropped. Entries created through the per-record
        :meth:`add` path (the legacy equivalence path) have no batch
        layout and cannot be exported.
        """
        for table in self._tables:
            if table:
                raise ValueError(
                    "per-record add() entries cannot be exported to disk; "
                    "build the index through add_many (the batch path)"
                )
        slabs = self._pending
        if slabs:
            ids_all = (
                slabs[0].ids
                if len(slabs) == 1
                else np.concatenate([slab.ids for slab in slabs])
            )
        else:
            ids_all = np.empty(0, dtype=object)
        bases = np.cumsum([0] + [slab.ids.size for slab in slabs])
        if self._tombstones:
            tombstones = self._tombstones
            keep = np.fromiter(
                (rid not in tombstones for rid in ids_all.tolist()),
                dtype=bool,
                count=ids_all.size,
            )
            live_ids = ids_all[keep]
            live_row = np.cumsum(keep, dtype=np.int64) - 1
        else:
            keep = None
            live_ids = ids_all
            live_row = None
        tables: list[list[tuple[np.ndarray, np.ndarray, object]]] = []
        for table in range(self.num_tables):
            segments: list[tuple[np.ndarray, np.ndarray, object]] = []
            for slab, base in zip(slabs, bases):
                keys = slab.key_matrix[:, table]
                gate = (
                    None if slab.gate_entries is None
                    else slab.gate_entries[table]
                )
                if gate is None:
                    rows = np.arange(slab.ids.size, dtype=np.int64) + base
                    suffixes: object = None
                else:
                    entry_rows, suffixes = gate
                    entry_rows = np.asarray(entry_rows, dtype=np.int64)
                    keys = keys[entry_rows]
                    rows = entry_rows + base
                if keep is not None:
                    mask = keep[rows]
                    rows = rows[mask]
                    keys = keys[mask]
                    if isinstance(suffixes, np.ndarray):
                        suffixes = suffixes[mask]
                if rows.size == 0:
                    continue
                if live_row is not None:
                    rows = live_row[rows]
                segments.append((rows, np.asarray(keys), suffixes))
            tables.append(segments)
        return live_ids, tables

    def _merged_bulk(self) -> list[_BulkBuckets | None]:
        """Group all pending slabs per table, merging across slabs.

        Entries are ordered slab-major (call order), record-major
        within a slab — the order ``n`` per-record :meth:`add` calls
        over the concatenated corpus would produce — so bucket members
        and first-occurrence emission are byte-identical to a single
        bulk insertion of the whole corpus. Tombstoned records are
        dropped here, *before* grouping: surviving entries keep their
        relative order, so partitions, member order and bucket emission
        order all match an index rebuilt from the survivors alone.
        """
        if self._bulk is not None:
            return self._bulk
        bulk: list[_BulkBuckets | None] = [None] * self.num_tables
        slabs = self._pending
        if slabs:
            ids_all = (
                slabs[0].ids
                if len(slabs) == 1
                else np.concatenate([slab.ids for slab in slabs])
            )
            bases = np.cumsum([0] + [slab.ids.size for slab in slabs])
            if self._tombstones:
                tombstones = self._tombstones
                keep = np.fromiter(
                    (rid not in tombstones for rid in ids_all.tolist()),
                    dtype=bool,
                    count=ids_all.size,
                )
            else:
                keep = None
            entries = [
                self._table_entries(table, slabs, ids_all, bases, keep)
                for table in range(self.num_tables)
            ]
            if effective_processes(self.processes, self.pool) > 1:
                # Lazy import: sharding's workers import this module.
                from repro.lsh.sharding import group_tables_sharded

                bulk = group_tables_sharded(
                    entries, self.processes, pool=self.pool
                )
            else:
                for table, entry in enumerate(entries):
                    bulk[table] = self._group_entries(entry)
        self._bulk = bulk
        return bulk

    @staticmethod
    def _group_entries(
        entry: tuple[np.ndarray, np.ndarray] | None,
    ) -> _BulkBuckets | None:
        """Serial sort-and-segment grouping of one table's entries."""
        if entry is None:
            return None
        entry_ids, labels = entry
        order, starts, ends = _segment(labels)
        emit_order = np.argsort(order[starts], kind="stable")
        return _BulkBuckets(entry_ids[order], starts, ends, emit_order)

    def _table_entries(
        self,
        table: int,
        slabs: list[_PendingSlab],
        ids_all: np.ndarray,
        bases: np.ndarray,
        keep: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """One table's merged entries: ``(entry_ids, labels)``.

        Entries are in serial insertion order (slab-major, record-major,
        suffix-ascending for OR gates); bucketing groups equal labels.
        ``labels`` are either the raw fixed-width band keys (no gates)
        or combined int64 (band, suffix) codes. ``None`` when the gates
        exclude every record from the table, or when ``keep`` (the
        per-record tombstone mask) leaves no entry standing. Band
        labels are derived from *all* keys including tombstoned rows;
        only the label values differ from a survivor-only rebuild —
        partitioning and first-occurrence emission are label-value
        invariant, so the grouped result is identical.
        """
        keys_all = (
            slabs[0].key_matrix[:, table]
            if len(slabs) == 1
            else np.concatenate([slab.key_matrix[:, table] for slab in slabs])
        )
        gates = [
            None if slab.gate_entries is None else slab.gate_entries[table]
            for slab in slabs
        ]
        if all(gate is None for gate in gates):
            # Band keys sort directly; no per-entry suffixes.
            if keep is None:
                return ids_all, keys_all
            if not keep.any():
                return None
            return ids_all[keep], keys_all[keep]
        else:
            # Distinct (band, suffix) pairs need distinct labels: give
            # every suffix an integer code — OR-gate bit indices stay
            # themselves (non-negative, comparable across slabs),
            # shared AND-style suffixes get negative codes by first
            # occurrence — then stride the band label by the code range.
            _, band_label = np.unique(keys_all, return_inverse=True)
            scalar_codes: dict[Hashable, int] = {}
            rows_parts: list[np.ndarray] = []
            suffix_parts: list[np.ndarray] = []
            for slab, gate, base in zip(slabs, gates, bases):
                if gate is None:
                    rows = np.arange(slab.ids.size, dtype=np.int64) + base
                    suffix_values = np.full(
                        rows.size, _scalar_code(scalar_codes, _NO_GATE), np.int64
                    )
                else:
                    entry_rows, suffixes = gate
                    entry_rows = np.asarray(entry_rows, dtype=np.int64)
                    if entry_rows.size == 0:
                        continue
                    rows = entry_rows + base
                    if isinstance(suffixes, np.ndarray):
                        suffix_values = suffixes.astype(np.int64, copy=False)
                    else:
                        suffix_values = np.full(
                            rows.size, _scalar_code(scalar_codes, suffixes), np.int64
                        )
                rows_parts.append(rows)
                suffix_parts.append(suffix_values)
            if not rows_parts:
                return None
            entry_rows = np.concatenate(rows_parts)
            suffix_values = np.concatenate(suffix_parts)
            if keep is not None:
                mask = keep[entry_rows]
                entry_rows = entry_rows[mask]
                suffix_values = suffix_values[mask]
                if entry_rows.size == 0:
                    return None
            low = int(suffix_values.min())
            span = int(suffix_values.max()) - low + 1
            labels = band_label[entry_rows] * span + (suffix_values - low)
            return ids_all[entry_rows], labels

    def blocks(self, *, min_size: int = 2) -> list[tuple[str, ...]]:
        """All buckets holding at least ``min_size`` records.

        Bucket contents preserve insertion order; a bucket from table t
        is independent of buckets from other tables (blocks may overlap,
        as the paper's framework intends).
        """
        found: list[tuple[str, ...]] = []
        merged = self._merged_bulk()
        tombstones = self._tombstones
        for table in range(self.num_tables):
            for members in self._tables[table].values():
                if tombstones:
                    members = [m for m in members if m not in tombstones]
                if len(members) >= min_size:
                    found.append(tuple(members))
            if merged[table] is not None:
                found.extend(merged[table].iter_buckets(min_size))
        return found

    def bucket_sizes(self) -> list[int]:
        """Sizes of all non-empty buckets (diagnostics)."""
        tombstones = self._tombstones
        if tombstones:
            sizes = [
                size
                for table in self._tables
                for members in table.values()
                if (size := sum(m not in tombstones for m in members))
            ]
        else:
            sizes = [
                len(members)
                for table in self._tables
                for members in table.values()
            ]
        for bulk in self._merged_bulk():
            if bulk is not None:
                sizes.extend(bulk.sizes()[bulk.emit_order].tolist())
        return sizes

    def _ensure_query_maps(self) -> list[dict]:
        """Fold any new bulk slabs into the per-table query maps.

        The maps index the *bulk* entries only (the dict tables are
        already keyed for direct lookup) by ``(band key, suffix)`` with
        members in insertion order. The fold is append-only — each slab
        is visited exactly once across the index's lifetime, so a query
        after ``add_many`` costs O(new slab entries), not O(index).
        """
        if self._query_maps is None:
            self._query_maps = [{} for _ in range(self.num_tables)]
        for slab in self._pending[self._query_cursor:]:
            self._extend_query_maps(slab)
        self._query_cursor = len(self._pending)
        return self._query_maps

    def _extend_query_maps(self, slab: _PendingSlab) -> None:
        ids = slab.ids.tolist()
        for table in range(self.num_tables):
            bucket_map = self._query_maps[table]
            keys = slab.key_matrix[:, table]
            gate = None if slab.gate_entries is None else slab.gate_entries[table]
            if gate is None:
                for rid, key in zip(ids, keys.tolist()):
                    bucket_map.setdefault((key, _NO_GATE), []).append(rid)
            else:
                entry_rows, suffixes = gate
                entry_rows = np.asarray(entry_rows, dtype=np.int64)
                if entry_rows.size == 0:
                    continue
                entry_keys = keys[entry_rows].tolist()
                entry_ids = [ids[row] for row in entry_rows.tolist()]
                if isinstance(suffixes, np.ndarray):
                    entry_suffixes = suffixes.tolist()
                else:
                    entry_suffixes = [suffixes] * entry_rows.size
                for rid, key, suffix in zip(entry_ids, entry_keys, entry_suffixes):
                    bucket_map.setdefault((key, suffix), []).append(rid)

    def query_keys(
        self,
        keys: Sequence[Hashable],
        gate: GateFn | None = None,
        *,
        record_id: str | None = None,
    ) -> list[str]:
        """Live records sharing at least one bucket with these band keys.

        The query does not mutate the index: nothing is inserted, and
        the lazily built bulk query maps stay valid across later
        ``add_many``/``remove`` calls (new slabs are folded in on the
        next query; removals filter at lookup time).

        Parameters
        ----------
        keys:
            One band key per table, as :meth:`add` takes.
        gate:
            Optional semantic gate; for each table the query probes one
            bucket per suffix the gate yields (an empty yield skips the
            table, mirroring insertion-side exclusion).
        record_id:
            Optional id excluded from the result (the query record
            itself, when it is already indexed).

        Returns candidate ids in first-encounter order: table-major,
        bucket insertion order within a table — deduplicated.
        """
        if len(keys) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} band keys, got {len(keys)}"
            )
        query_maps = self._ensure_query_maps() if self._pending else None
        tombstones = self._tombstones
        seen: set[str] = set()
        found: list[str] = []
        for table_index, key in enumerate(keys):
            if gate is None:
                dict_suffixes: Sequence[Hashable] = (0,)
                bulk_suffixes: Sequence[Hashable] = (_NO_GATE,)
            else:
                dict_suffixes = bulk_suffixes = gate(table_index, record_id or "")
            table = self._tables[table_index]
            for suffix in dict_suffixes:
                for member in table.get((key, suffix), ()):
                    if (
                        member not in seen
                        and member not in tombstones
                        and member != record_id
                    ):
                        seen.add(member)
                        found.append(member)
            if query_maps is None:
                continue
            bucket_map = query_maps[table_index]
            for suffix in bulk_suffixes:
                for member in bucket_map.get((key, suffix), ()):
                    if (
                        member not in seen
                        and member not in tombstones
                        and member != record_id
                    ):
                        seen.add(member)
                        found.append(member)
        return found
