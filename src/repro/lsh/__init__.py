"""Banded locality-sensitive hashing (paper §5.1 step 3, §5.2)."""

from repro.lsh.family import SensitivityParams, amplify_sensitivity
from repro.lsh.bands import (
    band_keys,
    record_band_keys,
    split_bands,
    split_bands_matrix,
)
from repro.lsh.index import BandedLSHIndex, grouped_indices
from repro.lsh.collision import (
    banded_collision_probability,
    salsh_collision_probability,
    wway_collision_probability,
)

__all__ = [
    "SensitivityParams",
    "amplify_sensitivity",
    "split_bands",
    "split_bands_matrix",
    "band_keys",
    "record_band_keys",
    "BandedLSHIndex",
    "grouped_indices",
    "banded_collision_probability",
    "wway_collision_probability",
    "salsh_collision_probability",
]
