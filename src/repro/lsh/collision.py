"""Closed-form collision probabilities (paper §5.1-5.3, Fig. 5/6).

These formulas drive both parameter tuning and the Fig. 5 / Fig. 6
curves:

* banded minhash:      P = 1 - (1 - s^k)^l
* w-way AND semantic:  p = s'^w
* w-way OR semantic:   p = 1 - (1 - s')^w
* SA-LSH combined:     P = 1 - (1 - s^k * p)^l
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Valid modes of a w-way semantic hash function.
WWAY_MODES = ("and", "or")


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def banded_collision_probability(s: float, k: int, l: int) -> float:
    """Probability that banded minhash co-blocks a pair of similarity s.

    >>> round(banded_collision_probability(0.8, 9, 15), 3)
    0.885
    """
    _check_unit("s", s)
    if k < 1 or l < 1:
        raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
    return 1.0 - (1.0 - s**k) ** l


def wway_collision_probability(s_prime: float, w: int, mode: str) -> float:
    """Probability that a w-way semantic hash function returns true.

    ``s_prime`` is the probability that a single semantic hash function
    h_g fires for the pair (the paper's s' = p_v * p_e).

    >>> wway_collision_probability(0.5, 2, "and")
    0.25
    >>> wway_collision_probability(0.5, 2, "or")
    0.75
    """
    _check_unit("s_prime", s_prime)
    if w < 1:
        raise ConfigurationError(f"w must be >= 1, got {w}")
    if mode not in WWAY_MODES:
        raise ConfigurationError(f"mode must be one of {WWAY_MODES}, got {mode!r}")
    if mode == "and":
        return s_prime**w
    return 1.0 - (1.0 - s_prime) ** w


def salsh_collision_probability(
    s: float, s_prime: float, k: int, l: int, w: int, mode: str
) -> float:
    """Combined probability 1 - (1 - s^k * p)^l of SA-LSH co-blocking.

    ``s`` is textual similarity, ``s_prime`` the per-function semantic
    firing probability, and ``p`` the w-way amplification of
    ``s_prime``.
    """
    _check_unit("s", s)
    if k < 1 or l < 1:
        raise ConfigurationError(f"k and l must be >= 1, got k={k}, l={l}")
    p = wway_collision_probability(s_prime, w, mode)
    return 1.0 - (1.0 - (s**k) * p) ** l
