"""Command-line interface: generate, block, evaluate, resolve, query.

Usage (after ``pip install -e .``)::

    python -m repro generate --kind cora --records 1879 --out cora.csv
    python -m repro block --input cora.csv --technique salsh \
        --attributes authors,title --domain cora --out pairs.csv
    python -m repro evaluate --input cora.csv --pairs pairs.csv
    python -m repro resolve --input cora.csv --pairs pairs.csv \
        --attributes authors,title
    python -m repro link --source a.csv --target b.csv \
        --technique lsh --attributes authors,title --out pairs.csv
    python -m repro query --input cora.csv --queries probes.csv \
        --technique lsh --attributes authors,title
    python -m repro serve-batch --input cora.csv --ops ops.csv \
        --technique lsh --attributes authors,title

``block`` supports the library's own blockers (lsh, salsh, mplsh,
forest) and every survey technique at its default grid setting.
``link`` is the clean-clean counterpart of ``block``: two datasets
(or one CSV with a ``dataset_id`` column) are blocked against each
other and only cross-dataset candidate pairs come out; ``--resolve``
switches to the linkage resolver mode, where the index holds the
target corpus and every source record is resolved as a probe.
``query`` and ``serve-batch`` run the online resolver service — a
blocking-first single-record query path over an incremental index —
and therefore accept only the four online-capable techniques.
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import sys
from typing import Sequence

from repro.baselines import TECHNIQUE_ORDER, iter_parameter_grid
from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.datasets import CoraLikeGenerator, NCVoterLikeGenerator
from repro.er import (
    Resolver,
    SimilarityMatcher,
    evaluate_resolution,
    resolve,
)
from repro.errors import ReproError
from repro.evaluation import evaluate_blocks, evaluate_linkage, run_blocking
from repro.records import (
    LinkedCorpus,
    Record,
    read_csv,
    read_linked_csv,
    read_pairs_csv,
    write_csv,
    write_pairs_csv,
)
from repro.core.base import BlockingResult
from repro.semantic import (
    PatternSemanticFunction,
    VoterSemanticFunction,
    cora_patterns,
)
from repro.store import latest_checkpoint
from repro.store.journal import FSYNC_MODES
from repro.taxonomy.builders import bibliographic_tree
from repro.utils import faults
from repro.utils.parallel import ShardPool

#: Built-in semantic domains for the salsh technique.
SEMANTIC_DOMAINS = ("cora", "voter")


def _semantic_function(domain: str):
    if domain == "cora":
        return PatternSemanticFunction(bibliographic_tree(), cora_patterns())
    if domain == "voter":
        return VoterSemanticFunction()
    raise ReproError(
        f"unknown semantic domain {domain!r}; known: {SEMANTIC_DOMAINS}"
    )


def _make_blocker(args, pool: ShardPool | None = None) -> object:
    attributes = tuple(a.strip() for a in args.attributes.split(",") if a.strip())
    if not attributes:
        raise ReproError("--attributes must name at least one attribute")
    technique = args.technique.lower()
    workers = args.workers if args.workers else None
    processes = getattr(args, "processes", 1) or None
    if technique == "lsh":
        return LSHBlocker(
            attributes, q=args.q, k=args.k, l=args.l, seed=args.seed,
            workers=workers, processes=processes, pool=pool,
        )
    if technique == "salsh":
        return SALSHBlocker(
            attributes, q=args.q, k=args.k, l=args.l, seed=args.seed,
            semantic_function=_semantic_function(args.domain),
            w=args.w if args.w else "all", mode=args.mode,
            workers=workers, processes=processes, pool=pool,
        )
    if technique == "mplsh":
        return MultiProbeLSHBlocker(
            attributes, q=args.q, k=args.k, l=args.l, seed=args.seed,
            workers=workers, processes=processes, pool=pool,
        )
    if technique == "forest":
        return LSHForestBlocker(
            attributes, q=args.q, k=args.k, l=args.l, seed=args.seed,
            workers=workers, processes=processes, pool=pool,
        )
    for name in TECHNIQUE_ORDER:
        if technique == name.lower():
            return next(iter(iter_parameter_grid(name, attributes)))
    raise ReproError(
        f"unknown technique {args.technique!r}; known: lsh, salsh, mplsh, "
        f"forest, {', '.join(t.lower() for t in TECHNIQUE_ORDER)}"
    )


def _pool_context(args) -> "ShardPool | contextlib.nullcontext":
    """The --pooled / --processes contract shared by block and query.

    ``--pooled`` keeps one warm ShardPool alive for the whole command,
    so every parallel map shares one executor instead of forking
    afresh; without it the per-call runtime is used. When
    ``--processes`` is not given, ``--pooled`` defaults it to all CPUs
    — a one-process pool would silently take the serial path and never
    use the pool.
    """
    if getattr(args, "processes", None) is None:
        args.processes = 0 if getattr(args, "pooled", False) else 1
    if not getattr(args, "pooled", False):
        return contextlib.nullcontext()
    if args.processes == 1:
        print(
            "note: --pooled with --processes 1 runs the serial "
            "engine; the pool is unused",
            file=sys.stderr,
        )
    return ShardPool(
        args.processes or None,
        retry=getattr(args, "retries", None),
        map_timeout=getattr(args, "map_timeout", None),
    )


def _resolver_from_args(args, dataset, pool: ShardPool | None) -> Resolver:
    """A warm :class:`Resolver` over ``dataset`` per the CLI arguments."""
    blocker = _make_blocker(args, pool=pool)
    if getattr(blocker, "online", None) is None:
        raise ReproError(
            f"technique {args.technique!r} has no online index; "
            "query/serve-batch support: lsh, salsh, mplsh, forest"
        )
    matcher = SimilarityMatcher(
        {a: args.similarity for a in blocker.attributes},
        match_threshold=args.match_threshold,
        possible_threshold=args.possible_threshold,
    )
    return Resolver(
        blocker,
        dataset,
        matcher=matcher,
        state_dir=getattr(args, "state_dir", None),
        fsync=getattr(args, "fsync", "always"),
    )


#: Output columns of ``query`` and ``serve-batch``.
_RESULT_COLUMNS = ("query_id", "tier", "best_id", "best_score",
                   "num_candidates")


def _emit_results(resolved, out: str | None) -> None:
    """Write resolver outcomes as CSV to ``out`` (or stdout)."""
    sink = (
        open(out, "w", newline="", encoding="utf-8")
        if out
        else contextlib.nullcontext(sys.stdout)
    )
    with sink as handle:
        writer = csv.writer(handle)
        writer.writerow(_RESULT_COLUMNS)
        for entity in resolved:
            writer.writerow([
                entity.record_id, entity.tier, entity.best_id or "",
                f"{entity.best_score:.4f}", entity.num_candidates,
            ])


#: Operations a serve-batch ops CSV may contain.
_SERVE_OPS = ("add", "remove", "query")


def _read_ops_csv(path: str) -> list[tuple[str, Record]]:
    """Read a serve-batch operations CSV.

    Needs ``op`` and ``record_id`` columns; every other column becomes
    a record attribute (``remove`` rows only use the id). Malformed
    rows raise a :class:`ReproError` naming the offending source line
    (the CLI turns that into exit code 2, not a traceback).
    """
    operations: list[tuple[str, Record]] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"op", "record_id"} <= set(
            reader.fieldnames
        ):
            raise ReproError(
                f"ops CSV {path} needs 'op' and 'record_id' columns; "
                f"found {reader.fieldnames}"
            )
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                raise ReproError(
                    f"ops CSV {path} line {reader.line_num}: malformed "
                    f"row ({exc})"
                ) from exc
            op = (row.get("op") or "").strip().lower()
            if op not in _SERVE_OPS:
                raise ReproError(
                    f"ops CSV {path} line {reader.line_num}: unknown op "
                    f"{op!r}; known: {', '.join(_SERVE_OPS)}"
                )
            record_id = (row.get("record_id") or "").strip()
            if not record_id:
                raise ReproError(
                    f"ops CSV {path} line {reader.line_num}: row has no "
                    "record_id value"
                )
            fields = {
                key: value or ""
                for key, value in row.items()
                if key not in ("op", "record_id")
            }
            operations.append((op, Record(record_id, fields)))
    return operations


def cmd_generate(args) -> int:
    if args.kind == "cora":
        dataset = CoraLikeGenerator(
            num_records=args.records,
            num_entities=max(2, args.records // 10),
            seed=args.seed,
        ).generate()
    else:
        dataset = NCVoterLikeGenerator(
            num_records=args.records, seed=args.seed
        ).generate()
    write_csv(dataset, args.out)
    print(f"wrote {len(dataset)} records ({args.kind}) to {args.out}")
    return 0


def cmd_block(args) -> int:
    dataset = read_csv(args.input)
    with _pool_context(args) as pool:
        blocker = _make_blocker(args, pool=pool)
        outcome = run_blocking(blocker, dataset)
        write_pairs_csv(outcome.result.distinct_pairs, args.out)
    print(
        f"{outcome.description}: {outcome.metrics.num_distinct_pairs} "
        f"candidate pairs from {len(dataset)} records "
        f"in {outcome.seconds:.2f}s -> {args.out}"
    )
    if dataset.num_true_matches:
        print(f"quality vs ground truth: {outcome.metrics}")
    return 0


def cmd_evaluate(args) -> int:
    dataset = read_csv(args.input)
    if not dataset.num_true_matches:
        print("error: dataset has no ground-truth entity column", file=sys.stderr)
        return 2
    pairs = read_pairs_csv(args.pairs)
    result = BlockingResult("pairs-file", tuple(sorted(pairs)))
    print(evaluate_blocks(result, dataset))
    return 0


def cmd_resolve(args) -> int:
    dataset = read_csv(args.input)
    pairs = read_pairs_csv(args.pairs)
    attributes = tuple(a.strip() for a in args.attributes.split(",") if a.strip())
    matcher = SimilarityMatcher(
        {attribute: args.similarity for attribute in attributes},
        match_threshold=args.threshold,
    )
    matched = matcher.matches(dataset, pairs)
    clusters = resolve(dataset, matched)
    multi = [c for c in clusters if len(c) > 1]
    print(f"{len(matched)} matched pairs -> {len(multi)} multi-record entities")
    if dataset.num_true_matches:
        print(evaluate_resolution(clusters, dataset))
    return 0


def _linked_from_args(args) -> LinkedCorpus:
    """The :class:`LinkedCorpus` named by ``link``'s input arguments."""
    if args.input:
        if args.source or args.target:
            raise ReproError(
                "give either --input (one CSV with a dataset_id column) "
                "or --source/--target (one CSV per side), not both"
            )
        return read_linked_csv(
            args.input, source=args.source_name, target=args.target_name
        )
    if not (args.source and args.target):
        raise ReproError(
            "link needs --input or both --source and --target"
        )
    return LinkedCorpus(read_csv(args.source), read_csv(args.target))


def cmd_link(args) -> int:
    linked = _linked_from_args(args)
    with _pool_context(args) as pool:
        blocker = _make_blocker(args, pool=pool)
        if args.resolve:
            if getattr(blocker, "online", None) is None:
                raise ReproError(
                    f"technique {args.technique!r} has no online index; "
                    "link --resolve support: lsh, salsh, mplsh, forest"
                )
            matcher = SimilarityMatcher(
                {a: args.similarity for a in blocker.attributes},
                match_threshold=args.match_threshold,
                possible_threshold=args.possible_threshold,
            )
            resolver = Resolver.for_linkage(blocker, linked, matcher=matcher)
            resolved = resolver.link()
            _emit_results(resolved, args.out)
            if args.out:
                tiers = {t: 0 for t in ("match", "possible", "new", "error")}
                for entity in resolved:
                    tiers[entity.tier] += 1
                print(
                    f"linked {len(linked.source)} source records against "
                    f"{len(linked.target)} target records "
                    f"({tiers['match']} match / {tiers['possible']} "
                    f"possible / {tiers['new']} new / {tiers['error']} "
                    f"error) -> {args.out}"
                )
            return 0
        result = blocker.block_pair(linked)
        pairs = sorted(result.cross_pairs)
        if args.out:
            write_pairs_csv(pairs, args.out)
            destination = f" -> {args.out}"
        else:
            destination = ""
        print(
            f"{result.blocker_name}: {len(pairs)} cross-dataset candidate "
            f"pairs from |S|={len(linked.source)} x |T|={len(linked.target)} "
            f"in {result.seconds:.2f}s{destination}"
        )
        if linked.num_true_matches:
            print(f"quality vs ground truth: {evaluate_linkage(result)}")
    return 0


def cmd_query(args) -> int:
    corpus = read_csv(args.input)
    queries = read_csv(args.queries)
    with _pool_context(args) as pool:
        resolver = _resolver_from_args(args, corpus, pool)
        resolved = resolver.resolve_many(list(queries))
    _emit_results(resolved, args.out)
    if args.out:
        tiers = {tier: 0 for tier in ("match", "possible", "new", "error")}
        for entity in resolved:
            tiers[entity.tier] += 1
        print(
            f"resolved {len(resolved)} queries against {len(corpus)} "
            f"records ({tiers['match']} match / {tiers['possible']} "
            f"possible / {tiers['new']} new / {tiers['error']} error) "
            f"-> {args.out}"
        )
    return 0


def cmd_serve_batch(args) -> int:
    operations = _read_ops_csv(args.ops)
    state_dir = getattr(args, "state_dir", None)
    resume = state_dir is not None and latest_checkpoint(state_dir) is not None
    with _pool_context(args) as pool:
        if resume:
            # The directory already holds resolver state: recover it
            # (checkpoint + journal tail) instead of re-seeding.
            resolver = Resolver.open(
                state_dir, fsync=getattr(args, "fsync", "always")
            )
        else:
            corpus = read_csv(args.input)
            resolver = _resolver_from_args(args, corpus, pool)
        resolved = []
        for op, record in operations:
            if op == "add":
                resolver.add(record)
            elif op == "remove":
                try:
                    resolver.remove(record.record_id)
                except KeyError:
                    raise ReproError(
                        f"cannot remove unknown record {record.record_id!r}"
                    ) from None
            else:
                resolved.append(resolver.resolve_one(record))
        if state_dir is not None:
            resolver.save()  # compact: fold the journal into a checkpoint
        resolver.close()
    _emit_results(resolved, args.out)
    if args.out:
        source = f"state dir {state_dir}" if resume else args.input
        print(
            f"applied {len(operations)} operations "
            f"({len(resolved)} queries) against {source} -> {args.out}"
        )
    return 0


def cmd_recover(args) -> int:
    resolver = Resolver.open(args.state_dir, fsync=args.fsync)
    tail = resolver.last_seq
    print(
        f"recovered {len(resolver)} records from {args.state_dir} "
        f"(journal seq {tail})"
    )
    if args.queries:
        probes = read_csv(args.queries)
        resolved = resolver.resolve_many(list(probes))
        _emit_results(resolved, args.out)
    if args.compact:
        resolver.save()
        print(f"compacted journal into a fresh checkpoint (seq {tail})")
    resolver.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Semantic-aware LSH blocking toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--kind", choices=("cora", "ncvoter"), required=True)
    generate.add_argument("--records", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_generate)

    def add_blocker_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--technique", default="salsh")
        sub.add_argument("--attributes", required=True,
                         help="comma-separated blocking attributes")
        sub.add_argument("--domain", choices=SEMANTIC_DOMAINS, default="cora",
                         help="semantic domain for salsh")
        sub.add_argument("--q", type=int, default=3)
        sub.add_argument("--k", type=int, default=4)
        sub.add_argument("--l", type=int, default=20)
        sub.add_argument("--w", type=int, default=0,
                         help="w-way size for salsh (0 = all bits)")
        sub.add_argument("--mode", choices=("and", "or"), default="or")
        sub.add_argument("--workers", type=int, default=1,
                         help="threads for the batch signature engine "
                              "(0 = all CPUs); identical blocks either way")
        sub.add_argument("--processes", type=int, default=None,
                         help="worker processes for the sharded runtime: "
                              "record slabs are shingled/minhashed in "
                              "parallel and bucket grouping is band-sharded "
                              "(0 = all CPUs, default 1 — or all CPUs when "
                              "--pooled is set); identical blocks either way")
        sub.add_argument("--pooled", action="store_true",
                         help="run the sharded runtime on one persistent "
                              "shard pool spanning all stages (warm "
                              "executor + shared-memory slab transport) "
                              "instead of a fresh pool per parallel map; "
                              "identical blocks either way")
        sub.add_argument("--retries", type=int, default=None,
                         help="retry rounds after a recoverable pool "
                              "failure (broken worker, corrupt slab, "
                              "timeout) before the pooled map degrades "
                              "to serial execution; 0 disables recovery "
                              "and surfaces typed errors (default: the "
                              "pool's self-healing policy)")
        sub.add_argument("--map-timeout", type=float, default=None,
                         help="seconds each pooled map attempt may run "
                              "before hung workers are terminated and "
                              "the unfinished payloads retried "
                              "(default: no timeout)")
        sub.add_argument("--seed", type=int, default=0)

    def add_matcher_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--similarity", default="jaccard_q2",
                         help="similarity measure scoring the blocking "
                              "candidates of each query")
        sub.add_argument("--match-threshold", type=float, default=0.85)
        sub.add_argument("--possible-threshold", type=float, default=0.65)

    block = commands.add_parser("block", help="block a CSV dataset")
    block.add_argument("--input", required=True)
    add_blocker_arguments(block)
    block.add_argument("--out", required=True)
    block.set_defaults(func=cmd_block)

    evaluate = commands.add_parser("evaluate", help="score a pairs file")
    evaluate.add_argument("--input", required=True)
    evaluate.add_argument("--pairs", required=True)
    evaluate.set_defaults(func=cmd_evaluate)

    resolve_cmd = commands.add_parser(
        "resolve", help="match + cluster candidate pairs into entities"
    )
    resolve_cmd.add_argument("--input", required=True)
    resolve_cmd.add_argument("--pairs", required=True)
    resolve_cmd.add_argument("--attributes", required=True)
    resolve_cmd.add_argument("--similarity", default="jaro_winkler")
    resolve_cmd.add_argument("--threshold", type=float, default=0.85)
    resolve_cmd.set_defaults(func=cmd_resolve)

    link = commands.add_parser(
        "link",
        help="cross-dataset record linkage: block a source dataset "
             "against a target dataset (clean-clean ER) — only pairs "
             "spanning the two sides are emitted; --resolve instead "
             "resolves every source record against the target index",
    )
    link.add_argument("--source", default=None,
                      help="source-side CSV (with --target)")
    link.add_argument("--target", default=None,
                      help="target-side CSV (with --source)")
    link.add_argument("--input", default=None,
                      help="single CSV carrying both sides, separated by "
                           "a dataset_id column (alternative to "
                           "--source/--target)")
    link.add_argument("--source-name", default=None,
                      help="dataset_id value to pin as the source side of "
                           "--input (default: first seen)")
    link.add_argument("--target-name", default=None,
                      help="dataset_id value to pin as the target side of "
                           "--input")
    add_blocker_arguments(link)
    add_matcher_arguments(link)
    link.add_argument("--resolve", action="store_true",
                      help="index the target corpus and resolve each "
                           "source record as a probe (linkage resolver "
                           "mode), emitting one result row per source "
                           "record instead of a pairs CSV")
    link.add_argument("--out", default=None,
                      help="pairs CSV (or, with --resolve, result CSV; "
                           "default: summary only, or stdout with "
                           "--resolve)")
    link.set_defaults(func=cmd_link)

    query = commands.add_parser(
        "query",
        help="resolve probe records against a corpus via the online "
             "resolver (single-record query path, no corpus rebuild)",
    )
    query.add_argument("--input", required=True,
                       help="corpus CSV the resolver indexes")
    query.add_argument("--queries", required=True,
                       help="CSV of probe records to resolve")
    add_blocker_arguments(query)
    add_matcher_arguments(query)
    query.add_argument("--out", default=None,
                       help="result CSV (default: stdout)")
    query.set_defaults(func=cmd_query)

    serve = commands.add_parser(
        "serve-batch",
        help="replay an add/remove/query operations CSV against the "
             "online resolver, emitting one result row per query op",
    )
    serve.add_argument("--input", required=True,
                       help="corpus CSV seeding the resolver (ignored "
                            "when --state-dir already holds a checkpoint "
                            "— the saved state is recovered instead)")
    serve.add_argument("--ops", required=True,
                       help="operations CSV with op + record_id columns")
    add_blocker_arguments(serve)
    add_matcher_arguments(serve)
    serve.add_argument("--state-dir", default=None,
                       help="durability root: checkpoint + write-ahead "
                            "journal; every add/remove is journaled "
                            "before it is applied, so a crash — even "
                            "kill -9 — loses no acknowledged operation")
    serve.add_argument("--fsync", choices=FSYNC_MODES, default="always",
                       help="journal fsync discipline (default: always)")
    serve.add_argument("--out", default=None,
                       help="result CSV (default: stdout)")
    serve.set_defaults(func=cmd_serve_batch)

    recover = commands.add_parser(
        "recover",
        help="recover a resolver from a --state-dir after a crash: "
             "load the latest checkpoint, replay the journal tail, "
             "report what survived",
    )
    recover.add_argument("--state-dir", required=True,
                         help="durability root written by serve-batch "
                              "--state-dir (or Resolver.save)")
    recover.add_argument("--queries", default=None,
                         help="optional CSV of probe records to resolve "
                              "against the recovered corpus")
    recover.add_argument("--out", default=None,
                         help="result CSV for --queries (default: stdout)")
    recover.add_argument("--compact", action="store_true",
                         help="write a fresh checkpoint after recovery, "
                              "folding the journal tail in")
    recover.add_argument("--fsync", choices=FSYNC_MODES, default="always")
    recover.set_defaults(func=cmd_recover)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    faults.arm_from_env()  # deterministic fault/crash injection hook
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
