"""Packaging for the semantic-aware blocking reproduction.

Metadata lives here (not pyproject.toml) on purpose: the target
environments may lack the ``wheel`` package, so a PEP 517 editable
install cannot build a wheel; plain ``setup.py``-driven installs
(``pip install -e .``) work everywhere setuptools does, offline
included.
"""

from setuptools import find_packages, setup

_version: dict = {}
with open("src/repro/_version.py", encoding="utf-8") as fh:
    exec(fh.read(), _version)

setup(
    name="repro-salsh",
    version=_version["__version__"],
    description=(
        "Reproduction of semantic-aware LSH blocking for entity "
        "resolution, grown into a parallel, streaming blocking toolkit"
    ),
    author="paper-repo-growth",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # numpy >= 2.0: the batch matcher popcounts bitsets with
    # np.bitwise_count, introduced in 2.0.
    install_requires=["numpy>=2.0"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
