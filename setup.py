"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``pip install -e .``) cannot build a wheel; this shim lets pip fall
back to ``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
