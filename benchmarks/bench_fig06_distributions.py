"""Fig. 6 — similarity distributions of true matches & collision curves.

Upper subgraphs: the Jaccard similarity distribution of true matches
under exact values and q = 2, 3, 4 for both corpora (Cora over
authors+title, NC Voter over first+last name). Lower subgraphs: the
banded collision probability for the tuned (k, l) ladder — Cora
(k=1..6, l=2..701) and NC Voter (k=4..9, l=15).
"""

from __future__ import annotations

from repro.core.tuning import kl_ladder
from repro.evaluation import format_table
from repro.lsh.collision import banded_collision_probability
from repro.minhash import Shingler

from _shared import (
    CORA_ATTRS,
    VOTER_ATTRS,
    cora_dataset,
    voter_dataset,
    write_result,
)

NUM_BINS = 10
Q_CONFIGS = (("exact", None), ("q=2", 2), ("q=3", 3), ("q=4", 4))


def similarity_histogram(dataset, attributes, q, *, max_pairs=20000):
    """Percentage of true matches per similarity bin."""
    shingler = Shingler(attributes, q=q)
    pairs = sorted(dataset.true_matches)[:max_pairs]
    counts = [0] * NUM_BINS
    for id1, id2 in pairs:
        sim = shingler.jaccard(dataset[id1], dataset[id2])
        counts[min(int(sim * NUM_BINS), NUM_BINS - 1)] += 1
    total = max(len(pairs), 1)
    return [100.0 * c / total for c in counts]


def distribution_rows(dataset, attributes):
    rows = []
    for label, q in Q_CONFIGS:
        rows.append([label] + similarity_histogram(dataset, attributes, q))
    return rows


def test_fig6_similarity_distributions(benchmark):
    cora = cora_dataset()
    voter = voter_dataset()

    cora_rows = benchmark.pedantic(
        distribution_rows, args=(cora, CORA_ATTRS), rounds=1, iterations=1
    )
    voter_rows = distribution_rows(voter, VOTER_ATTRS)

    bin_headers = [f"[{i/10:.1f},{(i+1)/10:.1f})" for i in range(NUM_BINS)]
    out = []
    out.append(format_table(
        ["config"] + bin_headers, cora_rows, float_digits=1,
        title="Fig. 6 (upper left) — Cora true-match similarity distribution (%)",
    ))
    out.append("")
    out.append(format_table(
        ["config"] + bin_headers, voter_rows, float_digits=1,
        title="Fig. 6 (upper right) — NC Voter true-match similarity distribution (%)",
    ))
    write_result("fig06_similarity_distributions", "\n".join(out))

    # Paper shape: NC-Voter-like matches are clean — with q=2 most mass
    # sits in the top similarity bins.
    q2 = voter_rows[1][1:]
    assert sum(q2[-3:]) > 50.0
    # Cora-like matches are dirty: q=4 mass is spread below the top bin.
    q4 = cora_rows[3][1:]
    assert sum(q4[:7]) > 20.0


def test_fig6_collision_probability_curves(benchmark):
    def build():
        cora_ladder = kl_ladder(0.3, 0.4, range(1, 7))
        similarities = [round(s / 20, 2) for s in range(21)]
        cora_rows = [
            [f"k={k} l={l}"] + [
                banded_collision_probability(s, k, l) for s in similarities
            ]
            for k, l in cora_ladder
        ]
        voter_rows = [
            [f"k={k} l=15"] + [
                banded_collision_probability(s, k, 15) for s in similarities
            ]
            for k in range(4, 10)
        ]
        return similarities, cora_rows, voter_rows

    similarities, cora_rows, voter_rows = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    headers = ["curve"] + [f"{s:.2f}" for s in similarities]
    out = [
        format_table(headers, cora_rows, float_digits=2,
                     title="Fig. 6 (lower left) — collision probability, Cora ladder"),
        "",
        format_table(headers, voter_rows, float_digits=2,
                     title="Fig. 6 (lower right) — collision probability, NC Voter (l=15)"),
    ]
    write_result("fig06_collision_curves", "\n".join(out))

    # The ladder reproduces the paper's exact l values.
    assert [row[0] for row in cora_rows] == [
        "k=1 l=2", "k=2 l=6", "k=3 l=19", "k=4 l=63", "k=5 l=210", "k=6 l=701",
    ]
    # All curves are monotone in s and steeper k shifts mass rightwards.
    for row in cora_rows + voter_rows:
        values = row[1:]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
