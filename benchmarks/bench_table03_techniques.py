"""Table 3 — blocking time and candidate pairs of all 14 techniques.

For each survey technique, the best-FM parameter setting's blocking
time and number of candidate pairs over the NC-Voter quality subset,
plus LSH and SA-LSH. The paper's absolute numbers came from a Java
implementation on a Xeon server; the reproduced quantities are the
*relative* ones — which techniques are cheap (TBlo, sorted
neighbourhoods, suffix arrays), which are expensive (string-map
embeddings dominate), and SA-LSH producing the smallest candidate set.

At small scale each grid is truncated to 8 settings
(REPRO_BENCH_SCALE=paper sweeps the full 163).
"""

from __future__ import annotations

from repro.baselines import TECHNIQUE_ORDER, paper_grid_sizes
from repro.evaluation import format_table

from _shared import (
    best_technique_results,
    lsh_salsh_results,
    scale,
    voter_dataset,
    write_result,
)


def run_table3():
    best = best_technique_results("voter")
    ours = lsh_salsh_results("voter")
    sizes = paper_grid_sizes()
    rows = []
    for technique in TECHNIQUE_ORDER:
        outcome = best[technique]
        rows.append([
            technique,
            sizes[technique],
            f"{outcome.seconds:.4f}",
            outcome.metrics.num_distinct_pairs,
            outcome.description,
        ])
    for name in ("LSH", "SA-LSH"):
        outcome = ours[name]
        rows.append([
            name, 1, f"{outcome.seconds:.4f}",
            outcome.metrics.num_distinct_pairs, outcome.description,
        ])
    return rows


def test_table3_time_and_candidates(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    note = (f"[scale={scale()}: grids truncated to 8 settings each]"
            if scale() != "paper" else "[full 163-setting sweep]")
    write_result(
        "table03_techniques",
        format_table(
            ["technique", "settings", "time (s)", "cand. pairs", "best setting"],
            rows,
            title=f"Table 3 — technique comparison over NC Voter "
                  f"({len(voter_dataset())} records) {note}",
        ),
    )

    by_name = {row[0]: row for row in rows}
    times = {name: float(row[2]) for name, row in by_name.items()}
    pairs = {name: int(row[3]) for name, row in by_name.items()}

    # Paper shape: string-map techniques are the slowest family.
    stringmap_time = min(times["StMT"], times["StMNN"])
    cheap_time = max(times["TBlo"], times["SorA"], times["SuA"])
    assert stringmap_time > cheap_time

    # Paper shape: SA-LSH emits fewer candidate pairs than LSH (3,565
    # vs 5,110 in the paper).
    assert pairs["SA-LSH"] <= pairs["LSH"]
