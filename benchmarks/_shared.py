"""Shared machinery for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.
This module centralises:

* the benchmark datasets (memoised per process, so Table 3 and Fig. 11
  share one grid sweep);
* the paper's blocker configurations (Cora: q=4, k=4, l=63; NC Voter:
  q=2, k=9, l=15 — §6.1);
* result output: each experiment prints its table *and* writes it to
  ``results/<name>.txt`` so artefacts survive pytest's output capture.

Scale control: set ``REPRO_BENCH_SCALE=paper`` for paper-sized runs
(30,000-record voter quality subset, the full 163-setting grid, the
292,892-record scalability sweep). The default "small" scale keeps the
whole suite laptop-friendly while preserving every qualitative shape.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.baselines import TECHNIQUE_ORDER, iter_parameter_grid
from repro.core import LSHBlocker, SALSHBlocker
from repro.datasets import CoraLikeGenerator, NCVoterLikeGenerator
from repro.evaluation import ExperimentResult, best_by, run_blocking
from repro.records import Dataset
from repro.semantic import (
    PatternSemanticFunction,
    VoterSemanticFunction,
    cora_patterns,
)
from repro.taxonomy.builders import bibliographic_tree

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Blocking attributes per dataset (§6.3.4).
CORA_ATTRS = ("authors", "title")
VOTER_ATTRS = ("first_name", "last_name")

#: The paper's tuned parameters (§6.1).
CORA_Q, CORA_K, CORA_L = 4, 4, 63
VOTER_Q, VOTER_K, VOTER_L = 2, 9, 15

#: Seed used across all benchmark experiments.
SEED = 42


def scale() -> str:
    """'small' (default) or 'paper' (REPRO_BENCH_SCALE=paper)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def write_result(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to results/{name}.txt]")


@lru_cache(maxsize=None)
def cora_dataset() -> Dataset:
    """The Cora-like corpus at the paper's size (1,879 records)."""
    return CoraLikeGenerator(
        num_records=1879, num_entities=190, seed=SEED
    ).generate()


@lru_cache(maxsize=None)
def voter_dataset(num_records: int | None = None) -> Dataset:
    """The NC-Voter-like quality subset.

    Default size is 3,000 records at small scale (§6.4 task a) and
    30,000 at paper scale (§6 'records with the ground truth labels').
    """
    if num_records is None:
        num_records = 30000 if scale() == "paper" else 3000
    return NCVoterLikeGenerator(num_records=num_records, seed=SEED).generate()


@lru_cache(maxsize=None)
def cora_semantic_function() -> PatternSemanticFunction:
    return PatternSemanticFunction(bibliographic_tree(), cora_patterns())


@lru_cache(maxsize=None)
def voter_semantic_function() -> VoterSemanticFunction:
    return VoterSemanticFunction()


def cora_lsh(**overrides) -> LSHBlocker:
    args = dict(q=CORA_Q, k=CORA_K, l=CORA_L, seed=SEED)
    args.update(overrides)
    return LSHBlocker(CORA_ATTRS, **args)


def cora_salsh(w="all", mode="or", **overrides) -> SALSHBlocker:
    args = dict(q=CORA_Q, k=CORA_K, l=CORA_L, seed=SEED)
    args.update(overrides)
    function = args.pop("semantic_function", None) or cora_semantic_function()
    return SALSHBlocker(
        CORA_ATTRS, semantic_function=function, w=w, mode=mode, **args
    )


def voter_lsh(**overrides) -> LSHBlocker:
    args = dict(q=VOTER_Q, k=VOTER_K, l=VOTER_L, seed=SEED)
    args.update(overrides)
    return LSHBlocker(VOTER_ATTRS, **args)


def voter_salsh(w="all", mode="or", **overrides) -> SALSHBlocker:
    args = dict(q=VOTER_Q, k=VOTER_K, l=VOTER_L, seed=SEED)
    args.update(overrides)
    function = args.pop("semantic_function", None) or voter_semantic_function()
    return SALSHBlocker(
        VOTER_ATTRS, semantic_function=function, w=w, mode=mode, **args
    )


def _grid_for(technique: str, attributes: tuple[str, ...]):
    """The technique's parameter grid, truncated at small scale.

    Small scale keeps at most 8 settings per technique (the full grids
    for StMT/StMNN/RSuA are 32/32/48); REPRO_BENCH_SCALE=paper sweeps
    all 163 settings as in §6.3.4.
    """
    blockers = list(iter_parameter_grid(technique, attributes))
    if scale() != "paper":
        blockers = blockers[:8]
    return blockers


@lru_cache(maxsize=None)
def best_technique_results(dataset_name: str) -> dict[str, ExperimentResult]:
    """Best-FM run per survey technique on one benchmark dataset.

    ``dataset_name`` is 'cora' or 'voter'. Memoised: Table 3 and
    Fig. 11 share the sweep.
    """
    if dataset_name == "cora":
        dataset, attributes = cora_dataset(), CORA_ATTRS
    elif dataset_name == "voter":
        dataset, attributes = voter_dataset(), VOTER_ATTRS
    else:
        raise ValueError(f"unknown benchmark dataset {dataset_name!r}")

    best: dict[str, ExperimentResult] = {}
    for technique in TECHNIQUE_ORDER:
        runs = [
            run_blocking(blocker, dataset)
            for blocker in _grid_for(technique, attributes)
        ]
        best[technique] = best_by(runs, "fm")
    return best


@lru_cache(maxsize=None)
def lsh_salsh_results(dataset_name: str) -> dict[str, ExperimentResult]:
    """LSH and SA-LSH runs at the paper's parameters, memoised."""
    if dataset_name == "cora":
        dataset = cora_dataset()
        blockers = {"LSH": cora_lsh(), "SA-LSH": cora_salsh()}
    elif dataset_name == "voter":
        dataset = voter_dataset()
        blockers = {"LSH": voter_lsh(), "SA-LSH": voter_salsh()}
    else:
        raise ValueError(f"unknown benchmark dataset {dataset_name!r}")
    return {name: run_blocking(b, dataset) for name, b in blockers.items()}
