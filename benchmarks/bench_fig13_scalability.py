"""Fig. 13 — PC/PQ/RR and runtime of (SA-)LSH over growing data sets.

The paper sweeps NC Voter subsets of 10k..292,892 records (k=9, l=15)
and plots (a) PC, (b) PQ, (c) RR, (d) blocking time for LSH, SA-LSH and
SF (building the semantic function: interpreting records and encoding
semhash signatures).

Paper shapes: PC is flat and identical for LSH and SA-LSH; SA-LSH's PQ
stays strictly above LSH's at every size; RR is ~0.9999 everywhere;
all three time curves grow linearly, with SF the cheapest.

Default sizes are laptop-scale; REPRO_BENCH_SCALE=paper uses the
paper's 10k..292k ladder.
"""

from __future__ import annotations

from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import format_table, run_blocking

from _shared import SEED, scale, voter_lsh, voter_salsh, write_result

SIZES_SMALL = (2000, 5000, 10000, 20000, 40000)
SIZES_PAPER = (10000, 50000, 100000, 150000, 200000, 240000, 292892)


def sizes():
    return SIZES_PAPER if scale() == "paper" else SIZES_SMALL


def run_fig13():
    rows = []
    for n in sizes():
        dataset = NCVoterLikeGenerator(num_records=n, seed=SEED).generate()
        lsh = run_blocking(voter_lsh(), dataset)
        salsh = run_blocking(voter_salsh(), dataset)
        rows.append([
            n,
            lsh.metrics.pc, salsh.metrics.pc,
            lsh.metrics.pq, salsh.metrics.pq,
            lsh.metrics.rr, salsh.metrics.rr,
            lsh.seconds, salsh.seconds, salsh.sf_seconds,
        ])
    return rows


def test_fig13_scalability(benchmark):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)

    write_result(
        "fig13_scalability",
        format_table(
            ["records", "PC(LSH)", "PC(SA)", "PQ(LSH)", "PQ(SA)",
             "RR(LSH)", "RR(SA)", "t(LSH)s", "t(SA)s", "t(SF)s"],
            rows,
            title="Fig. 13 — scalability of LSH / SA-LSH / SF (k=9, l=15)",
        ),
    )

    for row in rows:
        n, pc_lsh, pc_sa, pq_lsh, pq_sa, rr_lsh, rr_sa, t_lsh, t_sa, t_sf = row
        # (a) PC almost identical between LSH and SA-LSH.
        assert abs(pc_lsh - pc_sa) <= 0.02, n
        # (b) SA-LSH's PQ at or above LSH's.
        assert pq_sa >= pq_lsh - 1e-9, n
        # (c) RR near 1 on all sizes.
        assert rr_lsh > 0.99 and rr_sa > 0.99, n
        # (d) SF is cheaper than the full SA-LSH pass.
        assert t_sf <= t_sa, n

    # Linear-ish scaling: time per record must not grow with n by more
    # than 3x between the smallest and largest sweep points.
    per_record_first = rows[0][7] / rows[0][0]
    per_record_last = rows[-1][7] / rows[-1][0]
    assert per_record_last < per_record_first * 3.0
