"""Fig. 8 — semantic hash functions H21-H25 over NC Voter (k=9, l=15).

H21: [w=1]   H22: [w=3, ∨]   H23: [w=5, ∨]   H24: [w=7, ∨]   H25: [w=9, ∨]

Paper shapes: PC rises with w (µ=∨); the overall FM stabilises once w
exceeds roughly half the 12 semantic bits (§6.3.1); RR stays very high
because the data is large and clean.
"""

from __future__ import annotations

from repro.evaluation import format_table, run_blocking

from _shared import voter_dataset, voter_lsh, voter_salsh, write_result

CONFIGS = (
    ("H21", 1, "or"),
    ("H22", 3, "or"),
    ("H23", 5, "or"),
    ("H24", 7, "or"),
    ("H25", 9, "or"),
)


def run_fig8():
    dataset = voter_dataset()
    rows = []
    for label, w, mode in CONFIGS:
        outcome = run_blocking(voter_salsh(w=w, mode=mode), dataset)
        m = outcome.metrics
        rows.append([label, f"w={w},{mode}", m.pc, m.pq, m.rr, m.fm])
    baseline = run_blocking(voter_lsh(), dataset).metrics
    rows.append(["LSH", "no semantics", baseline.pc, baseline.pq,
                 baseline.rr, baseline.fm])
    return rows


def test_fig8_semantic_hash_functions(benchmark):
    rows = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    write_result(
        "fig08_semhash_ncvoter",
        format_table(
            ["config", "gate", "PC", "PQ", "RR", "FM"], rows,
            title="Fig. 8 — semantic hash functions over NC Voter (k=9, l=15)",
        ),
    )

    pc_values = [row[2] for row in rows[:5]]
    # PC increases with w under OR (within small noise).
    for earlier, later in zip(pc_values, pc_values[1:]):
        assert later >= earlier - 0.03
    # RR stays high on the large clean corpus.
    for row in rows:
        assert row[4] > 0.99
