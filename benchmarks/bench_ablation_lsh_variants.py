"""Ablation — LSH variants from related work (§2).

Multi-probe LSH (Lv et al.) and LSH forest (Bawa et al.) are the
alternative trade-offs the paper cites. This ablation compares, on the
Cora corpus:

* plain LSH at the tuned (k=4, l=63);
* plain LSH at a third of the tables (l=21) — cheaper, lower recall;
* multi-probe LSH at l=21 — probing should buy recall back;
* LSH forest (adaptive band depth, capped block sizes);
* SA-LSH (the paper's contribution) at (k=4, l=63).

Reproduced claim: probing recovers a meaningful share of the recall the
dropped tables cost, and SA-LSH keeps the best PQ of the family.
"""

from __future__ import annotations

from repro.core import LSHForestBlocker, MultiProbeLSHBlocker
from repro.evaluation import format_table, run_blocking

from _shared import (
    CORA_ATTRS,
    CORA_K,
    CORA_L,
    CORA_Q,
    SEED,
    cora_dataset,
    cora_lsh,
    cora_salsh,
    write_result,
)

REDUCED_L = CORA_L // 3


def run_ablation():
    dataset = cora_dataset()
    blockers = [
        cora_lsh(),
        cora_lsh(l=REDUCED_L, name=f"LSH(l={REDUCED_L})"),
        MultiProbeLSHBlocker(
            CORA_ATTRS, q=CORA_Q, k=CORA_K, l=REDUCED_L, seed=SEED
        ),
        LSHForestBlocker(
            CORA_ATTRS, q=CORA_Q, k=CORA_K * 4, l=REDUCED_L,
            max_block_size=50, seed=SEED,
        ),
        cora_salsh(),
    ]
    rows = []
    for blocker in blockers:
        outcome = run_blocking(blocker, dataset)
        m = outcome.metrics
        rows.append([
            outcome.description, m.pc, m.pq, m.fm, f"{outcome.seconds:.2f}",
        ])
    return rows


def test_ablation_lsh_variants(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_result(
        "ablation_lsh_variants",
        format_table(
            ["variant", "PC", "PQ", "FM", "time (s)"], rows,
            title="Ablation — LSH variants over Cora",
        ),
    )

    full, reduced, probed, forest, salsh = rows
    # Dropping tables costs recall; probing buys it back (a starved
    # configuration can trade PC for PQ, so PC is the right check).
    assert reduced[1] <= full[1] + 1e-9
    assert probed[1] >= reduced[1] - 1e-9
    # SA-LSH holds the best PC/PQ balance (FM) of the whole family.
    assert salsh[3] >= max(full[3], reduced[3], probed[3], forest[3]) - 1e-9
