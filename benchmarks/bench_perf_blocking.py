"""Perf benchmark — per-record vs batch signature engines.

Times LSH and SA-LSH blocking on synthetic NC-Voter at 10k/50k records
(the paper's §6.1 voter parameters q=2, k=9, l=15) under both engines
and writes ``BENCH_perf_blocking.json`` at the repo root with
records/sec and speedups, so future PRs have a perf trajectory to
compare against. Blocks are asserted identical across engines on every
run — the benchmark doubles as a large-scale equivalence check.

Sizes can be overridden (e.g. for CI smoke runs) with
``REPRO_BENCH_PERF_SIZES=2000,5000``; ``REPRO_BENCH_SCALE=paper`` keeps
the default 10k/50k ladder.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import format_table

from _shared import (
    SEED,
    VOTER_ATTRS,
    voter_lsh,
    voter_salsh,
    write_result,
)

DEFAULT_SIZES = (10_000, 50_000)
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf_blocking.json"


def sizes() -> tuple[int, ...]:
    override = os.environ.get("REPRO_BENCH_PERF_SIZES")
    if override:
        return tuple(int(part) for part in override.split(",") if part.strip())
    return DEFAULT_SIZES


def _timed_block(make_blocker, dataset, *, repeats: int):
    """Best-of-``repeats`` wall time (standard throughput practice)."""
    best = None
    result = None
    for _ in range(repeats):
        blocker = make_blocker()
        start = time.perf_counter()
        result = blocker.block(dataset)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _run_engine_pair(make_blocker, dataset, warmup_dataset) -> dict:
    # One small warmup per engine: fills the process-wide SHA-1 memo
    # and numpy's lazily-initialised kernels so both engines are timed
    # at steady-state throughput.
    make_blocker(batch=False).block(warmup_dataset)
    make_blocker(batch=True).block(warmup_dataset)
    legacy_result, legacy_seconds = _timed_block(
        lambda: make_blocker(batch=False), dataset, repeats=2
    )
    batch_result, batch_seconds = _timed_block(
        lambda: make_blocker(batch=True), dataset, repeats=3
    )
    assert batch_result.blocks == legacy_result.blocks, (
        "batch and per-record engines disagree — equivalence broken"
    )
    n = len(dataset)
    return {
        "num_blocks": batch_result.num_blocks,
        "per_record_seconds": round(legacy_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "per_record_records_per_sec": round(n / legacy_seconds, 1),
        "batch_records_per_sec": round(n / batch_seconds, 1),
        "speedup": round(legacy_seconds / batch_seconds, 2),
    }


def run_perf() -> dict:
    report: dict = {
        "benchmark": "perf_blocking",
        "dataset": "NCVoterLike",
        "attributes": list(VOTER_ATTRS),
        "parameters": {"q": 2, "k": 9, "l": 15, "seed": SEED},
        "python": platform.python_version(),
        "sizes": {},
    }
    warmup = NCVoterLikeGenerator(num_records=200, seed=SEED + 1).generate()
    for n in sizes():
        dataset = NCVoterLikeGenerator(num_records=n, seed=SEED).generate()
        report["sizes"][str(n)] = {
            "lsh": _run_engine_pair(
                lambda **kw: voter_lsh(**kw), dataset, warmup
            ),
            "salsh": _run_engine_pair(
                lambda **kw: voter_salsh(**kw), dataset, warmup
            ),
        }
    return report


def _persist(report: dict) -> None:
    RESULT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    rows = []
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            rows.append([
                n,
                technique.upper(),
                stats["per_record_seconds"],
                stats["batch_seconds"],
                stats["per_record_records_per_sec"],
                stats["batch_records_per_sec"],
                stats["speedup"],
            ])
    write_result(
        "perf_blocking",
        format_table(
            ["records", "blocker", "t(loop)s", "t(batch)s",
             "rec/s(loop)", "rec/s(batch)", "speedup"],
            rows,
            title="Perf — per-record vs batch signature engine (q=2, k=9, l=15)",
        ),
    )
    print(f"[written to {RESULT_JSON.name}]")


def test_perf_blocking(benchmark):
    report = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    _persist(report)
    for entry in report["sizes"].values():
        for technique in ("lsh", "salsh"):
            # The batch engine must never be slower; the headline >= 5x
            # claim is asserted on the committed 10k/50k run, while CI
            # smoke sizes only check a real win to stay timing-robust.
            assert entry[technique]["speedup"] > 1.0


def main() -> int:
    report = run_perf()
    _persist(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
