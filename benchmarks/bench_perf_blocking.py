"""Perf benchmark — per-record vs batch vs parallel vs streamed vs
sharded vs pooled engines.

Times LSH and SA-LSH blocking on synthetic NC-Voter at 10k/50k records
(the paper's §6.1 voter parameters q=2, k=9, l=15) under the per-record
and batch engines, the batch engine with ``workers`` threads, the
process-sharded runtime (``processes`` worker processes: record-slab
signatures + band-sharded grouping) both fresh-pool-per-call and on a
warm persistent :class:`~repro.utils.parallel.ShardPool` (shared-memory
slab transport, record slabs interned across calls), the slab-streamed
LSH path with a memory-mapped signature spill, and the streamed SA-LSH
path (encoder frozen from the full corpus, growable spill). A further section times
the survey baselines that run on the batch key-extraction path (TBlo,
SorA, SorII, SuA) at the same sizes, so the techniques the survey calls
"blocking one record at a time" finally appear on the same 50k+ axis.
Results land in ``BENCH_perf_blocking.json`` at the repo root so future
PRs have a perf trajectory to compare against.

A fifth section times the downstream *pair pipeline* over the LSH
blocks — candidate-pair enumeration, PC/PQ/RR/FM evaluation,
meta-blocking (ECBS + WNP) and similarity matching — under the legacy
per-pair Python path and the array-backed candidate-pair engine
(DESIGN.md, "Candidate-pair engine"), reporting pairs/sec and the
end-to-end ``pipeline_speedup`` headline.

A sixth section times the *online query path* (DESIGN.md, "Resolver
service"): single-record ``query()`` latency against a warm incremental
index, for LSH and SA-LSH, both over a static corpus and with
adds/removes interleaved between queries — the serving regime the
resolver exists for. ``check_query_path`` enforces p50 < 10 ms at the
50k ladder size (the per-query cost must stay independent of corpus
size once the lazy query maps are built).

A seventh section times the *durability layer* (DESIGN.md, "Durability
& crash recovery"): single-record queries served from a memory-mapped
on-disk index, checkpoint/recover wall time for a durable resolver,
WAL frame-decode throughput, and the journal's overhead on
``resolve_many``. ``check_durability`` holds the disk-served p50 to
the same < 10 ms budget at 50k, WAL replay to ≥ 10k ops/s, and the
happy-path journal tax to < 5%.

Every run doubles as a large-scale equivalence check: blocks are
asserted identical across per-record/batch/parallel/streamed engines,
and the pair pipeline asserts identical pair sets, metrics,
retained-edge sets and match decisions between the legacy and array
engines (``main`` and the pytest wrapper both fail if the speedup
column is missing or < 1 — a silent fallback to the legacy path).

Environment knobs (see benchmarks/README.md):

* ``REPRO_BENCH_PERF_SIZES=2000,5000`` — override the 10k/50k ladder
  (CI smoke uses one small size);
* ``REPRO_BENCH_WORKERS=4`` — thread count of the parallel run
  (default 4; the recorded ``cpu_count`` tells you whether the host
  could actually exploit it);
* ``REPRO_BENCH_PROCESSES=4`` — process count of the sharded run
  (default 4; same caveat — the ≥2× multicore headline only holds on
  ≥4-core hosts, single-core hosts pay pool overhead and record it);
* ``REPRO_BENCH_SCALE=paper`` keeps the default ladder.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.baselines import (
    ArraySortedNeighbourhood,
    InvertedIndexSortedNeighbourhood,
    StandardBlocker,
    SuffixArrayBlocker,
)
from repro.core.base import BlockingResult
from repro.datasets import NCVoterLikeGenerator
from repro.er import Resolver, SimilarityMatcher
from repro.evaluation import evaluate_blocks, format_table
from repro.metablocking import run_metablocking
from repro.minhash import GrowableSignatureSpill, open_signature_memmap
from repro.records import Record
from repro.semantic import SemhashEncoder
from repro.store import Journal, open_index, read_journal, write_index
from repro.utils.parallel import ShardPool, set_slab_integrity
from repro.utils.rand import rng_from_seed

from _shared import (
    SEED,
    VOTER_ATTRS,
    voter_lsh,
    voter_salsh,
    write_result,
)

DEFAULT_SIZES = (10_000, 50_000)
DEFAULT_WORKERS = 4
DEFAULT_PROCESSES = 4
#: The multicore sharded-speedup headline (vs the serial batch engine)
#: is only asserted at this ladder size and on hosts with this many
#: cores; below either threshold the column is recorded, not asserted.
SHARDED_HEADLINE_SIZE = 50_000
SHARDED_HEADLINE_CORES = 4
SHARDED_HEADLINE_SPEEDUP = 2.0
#: Warm-pool repeated blocking must beat the fresh-pool-per-call path
#: by this factor at the headline size (the amortisation the persistent
#: shard pool exists for); below the size the column is recorded and
#: only required not to regress past the fresh path.
POOLED_HEADLINE_SIZE = 10_000
POOLED_HEADLINE_SPEEDUP = 1.5
#: Happy-path cost of the fault-tolerance layer (integrity footers +
#: disarmed injection hooks) on the pooled rung: asserted < 5% at the
#: 10k+ headline sizes, recorded below them (best-of runs this close
#: together are not timing-robust on loaded smoke hosts).
RESILIENCE_OVERHEAD_BUDGET = 0.05
#: Streamed runs cut the corpus into this many record slabs.
STREAM_SLABS = 8
#: Pair-pipeline meta-blocking configuration (per-node pruning is the
#: heaviest legacy loop, ECBS exercises the log-factor weights).
PIPELINE_SCHEME, PIPELINE_ALGORITHM = "ECBS", "WNP"
#: Band width of the pair-ladder blocker. The §6.1-tuned k=9 keeps the
#: candidate set too sparse to stress the pair stages; k=4 yields the
#: redundancy-positive, overlapping collection meta-blocking targets
#: (~400k distinct / ~540k multiset pairs at 10k records).
PIPELINE_K = 4
#: Candidate-pair cap for the matcher stage (the legacy per-pair
#: comparator dominates wall time far below the 50k ladder's edge count).
MATCH_PAIR_CAP = 100_000
#: Single-record queries timed per technique in the query-path rung.
QUERY_SAMPLES = 200
#: One add (and, two batches later, one remove) is interleaved every
#: this many queries in the updates-interleaved scenario.
QUERY_UPDATE_EVERY = 10
#: p50 single-record query latency budget, asserted at 50k+ records.
QUERY_P50_BUDGET_MS = 10.0
QUERY_BUDGET_SIZE = 50_000
#: Frames decoded in the WAL-replay rung. The cost is per-frame, not
#: per-corpus, so the op count is fixed across ladder sizes and the
#: decode rate is asserted everywhere.
WAL_REPLAY_OPS = 20_000
WAL_REPLAY_MIN_OPS_PER_SEC = 10_000
#: Happy-path cost of the durability machinery on the read path:
#: ``resolve_many`` on a journal-backed resolver vs the same corpus in
#: a plain one. Asserted only at the 10k headline rung (same timing
#: rationale as ``check_resilience``), recorded elsewhere.
JOURNAL_OVERHEAD_BUDGET = 0.05
DURABILITY_HEADLINE_SIZE = 10_000
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf_blocking.json"


def sizes() -> tuple[int, ...]:
    override = os.environ.get("REPRO_BENCH_PERF_SIZES")
    if override:
        return tuple(int(part) for part in override.split(",") if part.strip())
    return DEFAULT_SIZES


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", str(DEFAULT_WORKERS)))


def bench_processes() -> int:
    return int(os.environ.get("REPRO_BENCH_PROCESSES", str(DEFAULT_PROCESSES)))


def _timed(run, *, repeats: int):
    """Best-of-``repeats`` wall time (standard throughput practice)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _run_engine_pair(
    make_blocker, dataset, warmup_dataset, *, stream: str | None
) -> dict:
    # One small warmup per engine: fills the process-wide SHA-1 memo
    # and numpy's lazily-initialised kernels so both engines are timed
    # at steady-state throughput.
    make_blocker(batch=False).block(warmup_dataset)
    make_blocker(batch=True).block(warmup_dataset)
    legacy_result, legacy_seconds = _timed(
        lambda: make_blocker(batch=False).block(dataset), repeats=2
    )
    batch_result, batch_seconds = _timed(
        lambda: make_blocker(batch=True).block(dataset), repeats=3
    )
    assert batch_result.blocks == legacy_result.blocks, (
        "batch and per-record engines disagree — equivalence broken"
    )

    workers = bench_workers()
    parallel_result, parallel_seconds = _timed(
        lambda: make_blocker(batch=True, workers=workers).block(dataset),
        repeats=3,
    )
    assert parallel_result.blocks == batch_result.blocks, (
        "parallel and serial batch engines disagree — equivalence broken"
    )

    # Fresh pool per call, timed before any persistent pool exists: a
    # fresh executor fork pays for the parent's whole address space, so
    # sharing a window with live pools (and their retained intern
    # payloads) would bill pool memory to the fresh path.
    processes = bench_processes()
    sharded_result, sharded_seconds = _timed(
        lambda: make_blocker(batch=True, processes=processes).block(dataset),
        repeats=3,
    )
    assert sharded_result.blocks == batch_result.blocks, (
        "sharded and serial batch engines disagree — equivalence broken"
    )

    # Pooled: the same sharded runtime on one warm persistent pool —
    # the executor forks once, record slabs are interned in shared
    # memory on the untimed warm calls, and the timed rounds measure
    # the amortised steady state repeated blocking calls actually see.
    # The integrity-off twin ("bare", snapshotting the toggle at
    # construction) isolates what the fault-tolerance happy path
    # (slab footers + disarmed injection hooks) costs when nothing
    # fails. The two are timed in one shared window of paired rounds
    # with strictly balanced ordering (the second call of a round pays
    # the first call's tmpfs page reclaim, so each pool leads half the
    # rounds), and the overhead column compares the *median* of each
    # pool's lead-position times — lead rounds are the clean samples,
    # and the median rides out the multi-second load spikes a shared
    # single-core host throws at any individual round, which two
    # separately-timed windows (or a min over a handful of rounds)
    # cannot.
    pooled_times: list[float] = []
    bare_times: list[float] = []
    pooled_leads: list[float] = []
    bare_leads: list[float] = []
    previous_integrity = set_slab_integrity(False)
    try:
        bare_pool = ShardPool(processes)
    finally:
        set_slab_integrity(previous_integrity)
    with ShardPool(processes) as pool, bare_pool:
        make_blocker(batch=True, pool=pool).block(warmup_dataset)
        make_blocker(batch=True, pool=pool).block(dataset)
        make_blocker(batch=True, pool=bare_pool).block(warmup_dataset)
        make_blocker(batch=True, pool=bare_pool).block(dataset)
        for round_index in range(12):
            ordered = (pool, bare_pool) if round_index % 2 else (bare_pool, pool)
            for position, timed_pool in enumerate(ordered):
                start = time.perf_counter()
                timed_result = make_blocker(
                    batch=True, pool=timed_pool
                ).block(dataset)
                elapsed = time.perf_counter() - start
                if timed_pool is pool:
                    pooled_result = timed_result
                    pooled_times.append(elapsed)
                    if position == 0:
                        pooled_leads.append(elapsed)
                else:
                    bare_result = timed_result
                    bare_times.append(elapsed)
                    if position == 0:
                        bare_leads.append(elapsed)
    pooled_seconds = min(pooled_times)
    bare_seconds = min(bare_times)
    resilience_overhead = (
        statistics.median(pooled_leads) / statistics.median(bare_leads) - 1.0
    )
    assert pooled_result.blocks == batch_result.blocks, (
        "pooled and serial batch engines disagree — equivalence broken"
    )
    assert bare_result.blocks == batch_result.blocks, (
        "integrity-off pooled engine disagrees — equivalence broken"
    )

    n = len(dataset)
    stats = {
        "num_blocks": batch_result.num_blocks,
        "per_record_seconds": round(legacy_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "per_record_records_per_sec": round(n / legacy_seconds, 1),
        "batch_records_per_sec": round(n / batch_seconds, 1),
        "speedup": round(legacy_seconds / batch_seconds, 2),
        "workers": workers,
        "workers_seconds": round(parallel_seconds, 4),
        "workers_records_per_sec": round(n / parallel_seconds, 1),
        "parallel_speedup": round(batch_seconds / parallel_seconds, 2),
        "processes": processes,
        "sharded_seconds": round(sharded_seconds, 4),
        "sharded_records_per_sec": round(n / sharded_seconds, 1),
        # Guard column: the sharded runtime must stay ahead of the
        # per-record legacy floor on any host.
        "sharded_speedup": round(legacy_seconds / sharded_seconds, 2),
        # Headline column: multicore scaling vs the serial batch
        # engine; ≥2× expected at 50k on ≥4-core hosts, recorded (with
        # cpu_count) on smaller hosts.
        "sharded_parallel_speedup": round(batch_seconds / sharded_seconds, 2),
        "pooled_seconds": round(pooled_seconds, 4),
        "pooled_records_per_sec": round(n / pooled_seconds, 1),
        # Guard column: the warm pool must stay ahead of the
        # per-record legacy floor on any host.
        "pooled_speedup": round(legacy_seconds / pooled_seconds, 2),
        # Headline column: warm-pool amortisation vs the
        # fresh-pool-per-call sharded path; ≥1.5× asserted at 10k+.
        "pooled_vs_fresh_speedup": round(sharded_seconds / pooled_seconds, 2),
        "pooled_bare_seconds": round(bare_seconds, 4),
        # Resilience column: fractional happy-path cost of integrity
        # footers + disarmed fault hooks on the warm pooled rung
        # (ratio of lead-round medians over the shared balanced window
        # above); < 5% asserted at 10k+ (check_resilience).
        "resilience_overhead": round(resilience_overhead, 4),
    }

    records = list(dataset)
    slab = max(1, len(records) // STREAM_SLABS)
    slabs = [records[i : i + slab] for i in range(0, len(records), slab)]
    if stream == "lsh":
        blocker = make_blocker(batch=True, workers=workers)
        with tempfile.TemporaryDirectory() as spill_dir:
            spill = Path(spill_dir) / "signatures.npy"

            def run_streamed():
                signatures = open_signature_memmap(
                    spill, len(records), blocker.hasher.num_hashes
                )
                return blocker.block_stream(slabs, signatures_out=signatures)

            streamed_result, streamed_seconds = _timed(run_streamed, repeats=2)
        assert streamed_result.blocks == batch_result.blocks, (
            "streamed and in-memory blocking disagree — equivalence broken"
        )
        stats.update(
            {
                "streamed_seconds": round(streamed_seconds, 4),
                "streamed_records_per_sec": round(n / streamed_seconds, 1),
                "stream_slabs": len(slabs),
            }
        )
    elif stream == "salsh":
        # Streamed SA-LSH: encoder frozen from the full corpus (the
        # equivalence configuration) + growable spill — the unknown-
        # length streaming path of DESIGN.md, "Process-sharded
        # streaming runtime".
        blocker = make_blocker(batch=True, workers=workers)
        with tempfile.TemporaryDirectory() as spill_dir:
            spill_path = Path(spill_dir) / "salsh-signatures.npy"

            def run_streamed_salsh():
                # The encoder freeze (one interpretation pass over the
                # corpus) is timed: the per-record floor this column is
                # guarded against pays the same interpretation work
                # inside block(), so excluding it here would let a
                # regressed streamed engine hide behind a warm cache.
                encoder = SemhashEncoder(blocker.semantic_function, dataset)
                spill = GrowableSignatureSpill(
                    spill_path, blocker.hasher.num_hashes
                )
                result = blocker.block_stream(
                    iter(slabs), encoder=encoder, signatures_out=spill
                )
                spill.finalize()
                return result

            streamed_result, streamed_seconds = _timed(
                run_streamed_salsh, repeats=2
            )
        assert streamed_result.blocks == batch_result.blocks, (
            "streamed SA-LSH and in-memory blocking disagree — "
            "equivalence broken"
        )
        stats.update(
            {
                "streamed_salsh_seconds": round(streamed_seconds, 4),
                "streamed_salsh_records_per_sec": round(
                    n / streamed_seconds, 1
                ),
                # Guard column: streamed SA-LSH must beat the
                # per-record legacy floor (no silent fallback).
                "streamed_salsh_speedup": round(
                    legacy_seconds / streamed_seconds, 2
                ),
                "stream_slabs": len(slabs),
            }
        )
    return stats


def _latency_columns(samples: list[float], prefix: str = "") -> dict:
    """p50/p99 columns (ms) from per-query wall times (seconds)."""
    ms = sorted(s * 1000.0 for s in samples)

    def percentile(p: float) -> float:
        return ms[min(len(ms) - 1, round(p * (len(ms) - 1)))]

    return {
        f"{prefix}p50_ms": round(percentile(0.50), 3),
        f"{prefix}p99_ms": round(percentile(0.99), 3),
    }


def _run_query_path(dataset) -> dict:
    """Time single-record ``query()`` latency on the online indexes.

    Two scenarios per technique: a static corpus (index built once, one
    untimed warm query triggers the lazy query-map fold, then
    QUERY_SAMPLES timed queries), and updates-interleaved (an add every
    QUERY_UPDATE_EVERY queries, the add of two batches earlier removed
    — so queries keep paying the incremental map extension and the
    tombstone filtering the serving regime actually sees). Extra
    records come from a disjoint generator seed and get fresh ``x{i}``
    ids so they never collide with corpus ids.
    """
    records = list(dataset)
    rng = rng_from_seed(SEED, "bench-query-path", len(records))
    probes = [
        records[i]
        for i in sorted(
            rng.sample(range(len(records)), min(QUERY_SAMPLES, len(records)))
        )
    ]
    num_extras = len(probes) // QUERY_UPDATE_EVERY + 1
    extras = [
        Record(f"x{i}", dict(record.fields), entity_id=record.entity_id)
        for i, record in enumerate(
            NCVoterLikeGenerator(
                num_records=num_extras, seed=SEED + 2
            ).generate()
        )
    ]
    stats: dict = {}
    for technique, make in (("lsh", voter_lsh), ("salsh", voter_salsh)):
        start = time.perf_counter()
        online = make(batch=True).online(records)
        online.query(probes[0])  # untimed: folds the lazy query maps
        build_seconds = time.perf_counter() - start

        static_samples = []
        for probe in probes:
            t0 = time.perf_counter()
            online.query(probe)
            static_samples.append(time.perf_counter() - t0)

        interleaved_samples = []
        added: list[str] = []
        extra_iter = iter(extras)
        for i, probe in enumerate(probes):
            if i % QUERY_UPDATE_EVERY == 0:
                extra = next(extra_iter, None)
                if extra is not None:
                    online.add(extra)
                    added.append(extra.record_id)
                if len(added) > 2:
                    online.remove(added.pop(0))
            t0 = time.perf_counter()
            online.query(probe)
            interleaved_samples.append(time.perf_counter() - t0)

        stats[technique] = {
            "build_seconds": round(build_seconds, 4),
            "queries": len(probes),
            **_latency_columns(static_samples),
            **_latency_columns(interleaved_samples, prefix="interleaved_"),
        }
    return stats


def _run_durability(dataset) -> dict:
    """Time the durability rung (DESIGN.md, "Durability & crash recovery").

    Four measurements: single-record ``query()`` served straight from a
    memory-mapped on-disk index (``write_index``/``open_index``),
    checkpoint publication and recovery wall time for a durable
    resolver over the full corpus, WAL replay as a pure frame-decode
    rate (the floor recovery can never beat), and the journal's cost on
    the read path — ``resolve_many`` on a journal-backed resolver vs
    the same corpus in a plain one. Every persisted artefact is
    asserted equivalent to its in-memory source before it is timed.
    """
    records = list(dataset)
    rng = rng_from_seed(SEED, "bench-durability", len(records))
    probes = [
        records[i]
        for i in sorted(
            rng.sample(range(len(records)), min(QUERY_SAMPLES, len(records)))
        )
    ]
    stats: dict = {}

    blocker = voter_lsh(batch=True)
    online = blocker.online(records)
    with tempfile.TemporaryDirectory() as tmp:
        index_dir = Path(tmp) / "index"
        start = time.perf_counter()
        write_index(index_dir, online)
        index_write_seconds = time.perf_counter() - start
        disk = open_index(index_dir)
        assert disk.blocks() == online.blocks(), (
            "disk index and online index disagree — equivalence broken"
        )
        for probe in probes:  # untimed: warms the mmap + checks parity
            assert disk.query(probe, blocker) == online.query(probe), (
                "disk and online query results disagree — equivalence broken"
            )
        persisted_samples = []
        for probe in probes:
            t0 = time.perf_counter()
            disk.query(probe, blocker)
            persisted_samples.append(time.perf_counter() - t0)
    stats.update(
        {
            "index_write_seconds": round(index_write_seconds, 4),
            "queries": len(probes),
            **_latency_columns(persisted_samples, prefix="persisted_query_"),
        }
    )

    # The journal-overhead ratio compares two runs of the same length
    # (~0.1 s), which two separately-timed windows cannot resolve to a
    # few percent on a loaded shared host — so, like the resilience
    # column, the plain and journal-backed resolvers are timed in one
    # shared window of balanced interleaved rounds and compared by
    # median.
    plain = Resolver(voter_lsh(batch=True), records)
    plain.resolve_many(probes[:8])  # untimed: folds the lazy query maps
    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "state"
        durable = Resolver(voter_lsh(batch=True), records, state_dir=state_dir)
        durable.resolve_many(probes[:8])
        plain_times: list[float] = []
        durable_times: list[float] = []
        for round_index in range(10):
            ordered = (
                (plain, plain_times, durable, durable_times)
                if round_index % 2
                else (durable, durable_times, plain, plain_times)
            )
            for resolver, times in zip(ordered[::2], ordered[1::2]):
                t0 = time.perf_counter()
                resolver.resolve_many(probes)
                times.append(time.perf_counter() - t0)
        plain_seconds = statistics.median(plain_times)
        durable_seconds = statistics.median(durable_times)
        _, checkpoint_seconds = _timed(durable.save, repeats=2)
        start = time.perf_counter()
        recovered = Resolver.open(state_dir)
        recover_seconds = time.perf_counter() - start
        assert recovered.index.blocks() == durable.index.blocks(), (
            "recovered resolver disagrees with the live one — "
            "equivalence broken"
        )
        recovered.close()
        durable.close()
    stats.update(
        {
            "resolve_seconds": round(plain_seconds, 4),
            "resolve_journaled_seconds": round(durable_seconds, 4),
            # Headline column: fractional read-path cost of running
            # behind a live journal; < 5% asserted at the 10k rung.
            "journal_overhead": round(durable_seconds / plain_seconds - 1, 4),
            "checkpoint_seconds": round(checkpoint_seconds, 4),
            "recover_seconds": round(recover_seconds, 4),
        }
    )

    with tempfile.TemporaryDirectory() as tmp:
        wal = Path(tmp) / "wal.log"
        journal = Journal.create(wal, fsync="never")
        template = records[:256]
        for i in range(WAL_REPLAY_OPS):
            record = template[i % len(template)]
            journal.append(
                "add",
                {"records": [[f"w{i}", dict(record.fields), None]]},
            )
        journal.close()
        (entries, _, _), replay_seconds = _timed(
            lambda: read_journal(wal), repeats=3
        )
        assert len(entries) == WAL_REPLAY_OPS, (
            "WAL replay dropped intact frames — decode broken"
        )
    stats.update(
        {
            "wal_replay_ops": WAL_REPLAY_OPS,
            "wal_replay_seconds": round(replay_seconds, 4),
            "wal_replay_ops_per_sec": round(
                WAL_REPLAY_OPS / replay_seconds, 1
            ),
        }
    )
    return stats


def _stage(legacy_seconds: float, array_seconds: float, pairs: int) -> dict:
    legacy_seconds = max(legacy_seconds, 1e-9)
    array_seconds = max(array_seconds, 1e-9)
    return {
        "legacy_seconds": round(legacy_seconds, 4),
        "array_seconds": round(array_seconds, 4),
        "legacy_pairs_per_sec": round(pairs / legacy_seconds, 1),
        "array_pairs_per_sec": round(pairs / array_seconds, 1),
        "speedup": round(legacy_seconds / array_seconds, 2),
    }


def _run_pair_pipeline(dataset, blocks) -> dict:
    """Time enumerate -> evaluate -> meta-block -> match, legacy vs array.

    Every stage asserts the two engines produce identical outputs; the
    headline ``pipeline_speedup`` covers the enumerate+evaluate+
    meta-block chain (matching is reported separately because its
    legacy column is capped at MATCH_PAIR_CAP pairs).
    """
    # Ground truth caches are shared by both engines; warm them so the
    # evaluate stage times the measure computation, not the one-off
    # truth derivation.
    dataset.true_matches, dataset.true_match_keys  # noqa: B018

    fresh = lambda: BlockingResult("lsh", blocks)  # noqa: E731
    legacy_pairs, legacy_enum_seconds = _timed(
        lambda: fresh().distinct_pairs_legacy(), repeats=2
    )
    pair_keys, array_enum_seconds = _timed(
        lambda: fresh().pair_keys(dataset), repeats=3
    )
    num_pairs = int(pair_keys.size)
    result = fresh()
    assert result.distinct_pairs == legacy_pairs, (
        "array and legacy pair enumeration disagree — equivalence broken"
    )

    # Warm the result-level pair caches so the evaluate stage isolates
    # the intersection + measure arithmetic for both engines.
    result.pair_keys(dataset), result.distinct_pairs  # noqa: B018
    legacy_metrics, legacy_eval_seconds = _timed(
        lambda: evaluate_blocks(result, dataset, engine="legacy"), repeats=2
    )
    array_metrics, array_eval_seconds = _timed(
        lambda: evaluate_blocks(result, dataset), repeats=3
    )
    assert array_metrics == legacy_metrics, (
        "array and legacy evaluation disagree — equivalence broken"
    )

    legacy_meta, legacy_meta_seconds = _timed(
        lambda: run_metablocking(
            result, PIPELINE_SCHEME, PIPELINE_ALGORITHM, engine="legacy"
        ),
        repeats=1,
    )
    array_meta, array_meta_seconds = _timed(
        lambda: run_metablocking(result, PIPELINE_SCHEME, PIPELINE_ALGORITHM),
        repeats=2,
    )
    assert array_meta.blocks == legacy_meta.blocks, (
        "array and legacy meta-blocking disagree — equivalence broken"
    )

    match_pairs = list(array_meta.blocks)[:MATCH_PAIR_CAP]
    matcher = SimilarityMatcher(
        {"first_name": "jaccard_q2", "last_name": "jaccard_q2"},
        match_threshold=0.85,
        possible_threshold=0.65,
    )
    matcher.score_pairs(dataset, match_pairs[:64])  # warm attribute caches
    legacy_decisions, legacy_match_seconds = _timed(
        lambda: matcher.match_pairs(dataset, match_pairs, batch=False),
        repeats=1,
    )
    array_decisions, array_match_seconds = _timed(
        lambda: matcher.match_pairs(dataset, match_pairs), repeats=2
    )
    assert array_decisions == legacy_decisions, (
        "batch and per-pair matching disagree — equivalence broken"
    )

    legacy_total = legacy_enum_seconds + legacy_eval_seconds + legacy_meta_seconds
    array_total = array_enum_seconds + array_eval_seconds + array_meta_seconds
    return {
        "num_candidate_pairs": num_pairs,
        "retained_pairs": len(array_meta.blocks),
        "scheme": PIPELINE_SCHEME,
        "algorithm": PIPELINE_ALGORITHM,
        "enumerate": _stage(legacy_enum_seconds, array_enum_seconds, num_pairs),
        "evaluate": _stage(legacy_eval_seconds, array_eval_seconds, num_pairs),
        "metablock": _stage(legacy_meta_seconds, array_meta_seconds, num_pairs),
        "match": {
            **_stage(
                legacy_match_seconds, array_match_seconds, len(match_pairs)
            ),
            "pairs_scored": len(match_pairs),
            "num_matches": sum(
                1 for d in array_decisions if d.label == "match"
            ),
        },
        "legacy_pipeline_seconds": round(legacy_total, 4),
        "array_pipeline_seconds": round(array_total, 4),
        "legacy_pipeline_pairs_per_sec": round(num_pairs / max(legacy_total, 1e-9), 1),
        "array_pipeline_pairs_per_sec": round(num_pairs / max(array_total, 1e-9), 1),
        "pipeline_speedup": round(max(legacy_total, 1e-9) / max(array_total, 1e-9), 2),
    }


#: Survey baselines on the batch key-extraction path, near-linear cost —
#: safe to time at 50k+. QGr/canopy/StringMap also run on the batch key
#: path but their per-key expansion is super-linear, so the 50k ladder
#: would time the algorithm, not the engine (see benchmarks/README.md).
BASELINES = {
    "TBlo": lambda: StandardBlocker(VOTER_ATTRS),
    "SorA": lambda: ArraySortedNeighbourhood(VOTER_ATTRS, window=3),
    "SorII": lambda: InvertedIndexSortedNeighbourhood(VOTER_ATTRS, window=3),
    "SuA": lambda: SuffixArrayBlocker(VOTER_ATTRS),
}


def _run_baselines(dataset) -> dict:
    n = len(dataset)
    stats = {}
    for name, make in BASELINES.items():
        result, seconds = _timed(lambda: make().block(dataset), repeats=2)
        stats[name] = {
            "num_blocks": result.num_blocks,
            "seconds": round(seconds, 4),
            "records_per_sec": round(n / seconds, 1),
        }
    return stats


def run_perf() -> dict:
    report: dict = {
        "benchmark": "perf_blocking",
        "dataset": "NCVoterLike",
        "attributes": list(VOTER_ATTRS),
        "parameters": {"q": 2, "k": 9, "l": 15, "seed": SEED},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "sizes": {},
    }
    warmup = NCVoterLikeGenerator(num_records=200, seed=SEED + 1).generate()
    for n in sizes():
        dataset = NCVoterLikeGenerator(num_records=n, seed=SEED).generate()
        blocks = voter_lsh(batch=True, k=PIPELINE_K).block(dataset).blocks
        report["sizes"][str(n)] = {
            "lsh": _run_engine_pair(
                lambda **kw: voter_lsh(**kw), dataset, warmup, stream="lsh"
            ),
            "salsh": _run_engine_pair(
                lambda **kw: voter_salsh(**kw), dataset, warmup, stream="salsh"
            ),
            "baselines": _run_baselines(dataset),
            "pair_pipeline": _run_pair_pipeline(dataset, blocks),
            "query_path": _run_query_path(dataset),
            "durability": _run_durability(dataset),
        }
    return report


def check_pair_pipeline(report: dict) -> None:
    """Guard against a silent fallback to the legacy per-pair path.

    Every ladder size must carry the end-to-end columns with a real
    win; the committed 10k/50k run demonstrates the >= 10x headline,
    while CI smoke sizes only assert >= 1x to stay timing-robust.
    """
    for n, entry in report["sizes"].items():
        pipeline = entry.get("pair_pipeline")
        assert pipeline is not None, f"size {n}: pair_pipeline columns missing"
        speedup = pipeline.get("pipeline_speedup")
        assert speedup is not None and speedup >= 1.0, (
            f"size {n}: pair-pipeline speedup {speedup!r} < 1 — "
            "array engine fell back to legacy-path performance"
        )


def check_sharded_stream(report: dict) -> None:
    """Guard the sharded and streamed-SA-LSH columns.

    Mirrors :func:`check_pair_pipeline`: the columns must exist at
    every ladder size and may never fall below the per-record legacy
    floor (a <1 ratio would mean the new runtime is slower than the
    path it replaced — a silent regression). The ≥2× multicore headline
    vs the *serial batch* engine is additionally asserted at 50k when
    the host actually has ≥4 cores; on smaller hosts it is recorded
    alongside ``cpu_count`` for the next multicore run to check.
    """
    cores = report.get("cpu_count") or 1
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            speedup = stats.get("sharded_speedup")
            assert speedup is not None and speedup >= 1.0, (
                f"size {n} {technique}: sharded speedup {speedup!r} < 1 — "
                "process sharding fell below the per-record floor"
            )
            if (
                cores >= SHARDED_HEADLINE_CORES
                and int(n) >= SHARDED_HEADLINE_SIZE
            ):
                parallel = stats.get("sharded_parallel_speedup")
                assert parallel is not None and parallel >= (
                    SHARDED_HEADLINE_SPEEDUP
                ), (
                    f"size {n} {technique}: sharded multicore speedup "
                    f"{parallel!r} < {SHARDED_HEADLINE_SPEEDUP} on a "
                    f"{cores}-core host"
                )
        streamed = entry["salsh"].get("streamed_salsh_speedup")
        assert streamed is not None and streamed >= 1.0, (
            f"size {n}: streamed SA-LSH speedup {streamed!r} < 1 — "
            "streaming fell below the per-record floor"
        )


def check_pooled(report: dict) -> None:
    """Guard the persistent shard pool columns.

    The pooled columns must exist at every ladder size, never fall
    below the per-record legacy floor, and never regress past the
    fresh-pool-per-call path. At the 10k+ headline sizes the warm pool
    must additionally beat the fresh path by ≥1.5× — the amortisation
    the pool exists for (the pre-pool committed run showed
    ``sharded_parallel_speedup < 1`` on this single-core host because
    every call re-paid fork + pickle).
    """
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            floor = stats.get("pooled_speedup")
            assert floor is not None and floor >= 1.0, (
                f"size {n} {technique}: pooled speedup {floor!r} < 1 — "
                "the warm pool fell below the per-record floor"
            )
            fresh = stats.get("pooled_vs_fresh_speedup")
            assert fresh is not None, (
                f"size {n} {technique}: pooled_vs_fresh_speedup missing"
            )
            # Below the headline size the warm-vs-fresh ratio compares
            # two same-order parallel paths and can flake on loaded CI
            # runners, so it is recorded but only asserted at 10k+
            # (the floor guard above still applies everywhere).
            if int(n) >= POOLED_HEADLINE_SIZE:
                assert fresh >= POOLED_HEADLINE_SPEEDUP, (
                    f"size {n} {technique}: warm-pool speedup {fresh!r} "
                    f"vs the fresh-pool path < {POOLED_HEADLINE_SPEEDUP} "
                    "— pool reuse is not amortising the per-call "
                    "fork/pickle overhead"
                )


def check_resilience(report: dict) -> None:
    """Guard the cost of the fault-tolerance machinery.

    ``resilience_overhead`` compares the default pooled run (fault
    hooks consulted, slab checksums verified) against the same warm
    pool with integrity checking switched off. The columns must exist
    at every ladder size; at the 10k headline rung the overhead must
    stay under ``RESILIENCE_OVERHEAD_BUDGET`` — robustness that taxes
    the happy path more than a few percent is a regression, not a
    feature. The other sizes are recorded for trajectory only: below
    10k the runs are too short to resolve a few-percent ratio, and
    above it the measurement window stretches far enough that
    shared-host load drift swamps the same few percent.
    """
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            for column in ("pooled_bare_seconds", "resilience_overhead"):
                assert column in stats, (
                    f"size {n} {technique}: resilience column "
                    f"{column!r} missing"
                )
            if int(n) == POOLED_HEADLINE_SIZE:
                overhead = stats["resilience_overhead"]
                assert overhead < RESILIENCE_OVERHEAD_BUDGET, (
                    f"size {n} {technique}: fault-tolerance overhead "
                    f"{overhead!r} >= {RESILIENCE_OVERHEAD_BUDGET} — "
                    "the integrity/fault hooks are taxing the happy "
                    "path"
                )


def check_query_path(report: dict) -> None:
    """Guard the online single-record query path.

    The columns must exist for both techniques at every ladder size
    (a missing entry means the rung silently stopped running); at the
    50k+ sizes the static p50 must stay under QUERY_P50_BUDGET_MS —
    the whole point of the incremental index is that a query costs a
    handful of bucket probes, not a corpus pass. The p99 and
    interleaved columns are recorded for trajectory, not asserted:
    single queries are too short for tail latencies to be
    timing-robust on shared CI hosts.
    """
    for n, entry in report["sizes"].items():
        query_path = entry.get("query_path")
        assert query_path is not None, f"size {n}: query_path columns missing"
        for technique in ("lsh", "salsh"):
            stats = query_path.get(technique)
            assert stats is not None, (
                f"size {n} {technique}: query-path columns missing"
            )
            for column in ("build_seconds", "p50_ms", "p99_ms",
                           "interleaved_p50_ms", "interleaved_p99_ms"):
                assert column in stats, (
                    f"size {n} {technique}: query-path column "
                    f"{column!r} missing"
                )
            if int(n) >= QUERY_BUDGET_SIZE:
                p50 = stats["p50_ms"]
                assert p50 < QUERY_P50_BUDGET_MS, (
                    f"size {n} {technique}: single-record query p50 "
                    f"{p50}ms >= {QUERY_P50_BUDGET_MS}ms — the query "
                    "path is no longer corpus-size-independent"
                )


def check_durability(report: dict) -> None:
    """Guard the durability rung.

    The columns must exist at every ladder size. The WAL frame-decode
    rate is size-independent and asserted everywhere (≥ 10k ops/s —
    below that, journal-tail replay would dominate recovery). The
    mmapped-index query p50 shares the in-memory path's < 10 ms budget
    at 50k+ (serving from disk must stay corpus-size-independent too).
    The journal's read-path overhead is asserted < 5% only at the 10k
    headline rung — shorter runs cannot resolve a few-percent ratio,
    longer ones smear it with shared-host load drift (the same
    rationale as ``check_resilience``).
    """
    for n, entry in report["sizes"].items():
        stats = entry.get("durability")
        assert stats is not None, f"size {n}: durability columns missing"
        for column in (
            "index_write_seconds",
            "persisted_query_p50_ms",
            "persisted_query_p99_ms",
            "checkpoint_seconds",
            "recover_seconds",
            "wal_replay_seconds",
            "wal_replay_ops_per_sec",
            "journal_overhead",
        ):
            assert column in stats, (
                f"size {n}: durability column {column!r} missing"
            )
        rate = stats["wal_replay_ops_per_sec"]
        assert rate >= WAL_REPLAY_MIN_OPS_PER_SEC, (
            f"size {n}: WAL replay at {rate} ops/s < "
            f"{WAL_REPLAY_MIN_OPS_PER_SEC} — recovery would be "
            "dominated by journal-tail decode"
        )
        if int(n) >= QUERY_BUDGET_SIZE:
            p50 = stats["persisted_query_p50_ms"]
            assert p50 < QUERY_P50_BUDGET_MS, (
                f"size {n}: mmapped-index query p50 {p50}ms >= "
                f"{QUERY_P50_BUDGET_MS}ms — the disk index is no "
                "longer corpus-size-independent"
            )
        if int(n) == DURABILITY_HEADLINE_SIZE:
            overhead = stats["journal_overhead"]
            assert overhead < JOURNAL_OVERHEAD_BUDGET, (
                f"size {n}: journaling overhead {overhead!r} >= "
                f"{JOURNAL_OVERHEAD_BUDGET} on resolve_many — the "
                "journal is taxing the read path"
            )


def _persist(report: dict) -> None:
    RESULT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    rows = []
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            rows.append([
                n,
                technique.upper(),
                stats["per_record_seconds"],
                stats["batch_seconds"],
                stats["workers_seconds"],
                stats["sharded_seconds"],
                stats["pooled_seconds"],
                stats.get(
                    "streamed_seconds", stats.get("streamed_salsh_seconds", "-")
                ),
                stats["batch_records_per_sec"],
                stats["speedup"],
                stats["parallel_speedup"],
                stats["sharded_parallel_speedup"],
                stats["pooled_vs_fresh_speedup"],
                stats["resilience_overhead"],
            ])
    write_result(
        "perf_blocking",
        format_table(
            ["records", "blocker", "t(loop)s", "t(batch)s",
             f"t(w={bench_workers()})s", f"t(p={bench_processes()})s",
             "t(pool)s", "t(stream)s", "rec/s(batch)", "speedup",
             "par.speedup", "shard.speedup", "pool.speedup",
             "resil.ovh"],
            rows,
            title="Perf — per-record vs batch vs parallel vs sharded vs "
                  "pooled vs streamed (q=2, k=9, l=15)",
        ),
    )
    baseline_rows = [
        [n, name, stats["seconds"], stats["records_per_sec"], stats["num_blocks"]]
        for n, entry in report["sizes"].items()
        for name, stats in entry["baselines"].items()
    ]
    write_result(
        "perf_baselines",
        format_table(
            ["records", "technique", "t(s)", "rec/s", "blocks"],
            baseline_rows,
            title="Perf — survey baselines on the batch key path",
        ),
    )
    pipeline_rows = []
    for n, entry in report["sizes"].items():
        pipeline = entry["pair_pipeline"]
        pipeline_rows.append([
            n,
            pipeline["num_candidate_pairs"],
            pipeline["enumerate"]["speedup"],
            pipeline["evaluate"]["speedup"],
            pipeline["metablock"]["speedup"],
            pipeline["match"]["speedup"],
            pipeline["array_pipeline_pairs_per_sec"],
            pipeline["pipeline_speedup"],
        ])
    write_result(
        "perf_pair_pipeline",
        format_table(
            ["records", "pairs", "enum.x", "eval.x", "meta.x", "match.x",
             "pairs/s(array)", "pipeline.x"],
            pipeline_rows,
            title="Perf — candidate-pair pipeline, legacy vs array "
                  f"({PIPELINE_SCHEME}+{PIPELINE_ALGORITHM}, "
                  "speedups per stage)",
        ),
    )
    query_rows = []
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry["query_path"][technique]
            query_rows.append([
                n,
                technique.upper(),
                stats["build_seconds"],
                stats["p50_ms"],
                stats["p99_ms"],
                stats["interleaved_p50_ms"],
                stats["interleaved_p99_ms"],
            ])
    write_result(
        "perf_query_path",
        format_table(
            ["records", "blocker", "build(s)", "p50(ms)", "p99(ms)",
             "upd.p50(ms)", "upd.p99(ms)"],
            query_rows,
            title="Perf — online single-record query path "
                  f"({QUERY_SAMPLES} queries, add/remove every "
                  f"{QUERY_UPDATE_EVERY} in the upd. columns)",
        ),
    )
    durability_rows = []
    for n, entry in report["sizes"].items():
        stats = entry["durability"]
        durability_rows.append([
            n,
            stats["index_write_seconds"],
            stats["persisted_query_p50_ms"],
            stats["persisted_query_p99_ms"],
            stats["checkpoint_seconds"],
            stats["recover_seconds"],
            stats["wal_replay_ops_per_sec"],
            stats["journal_overhead"],
        ])
    write_result(
        "perf_durability",
        format_table(
            ["records", "idx.write(s)", "disk.p50(ms)", "disk.p99(ms)",
             "ckpt(s)", "recover(s)", "wal.ops/s", "jrnl.ovh"],
            durability_rows,
            title="Perf — durability: mmapped-index queries, checkpoint/"
                  f"recover, WAL replay ({WAL_REPLAY_OPS} frames), "
                  "journal overhead on resolve_many",
        ),
    )
    print(f"[written to {RESULT_JSON.name}]")


def test_perf_blocking(benchmark):
    report = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    _persist(report)
    for entry in report["sizes"].values():
        for technique in ("lsh", "salsh"):
            # The batch engine must never be slower; the headline >= 5x
            # claim is asserted on the committed 10k/50k run, while CI
            # smoke sizes only check a real win to stay timing-robust.
            assert entry[technique]["speedup"] > 1.0
            # Parallel/streamed/sharded equivalence is asserted inside
            # the run; parallel *speedup* is only meaningful with spare
            # cores, so it is recorded (with cpu_count) rather than
            # asserted here.
    check_pair_pipeline(report)
    check_sharded_stream(report)
    check_pooled(report)
    check_resilience(report)
    check_query_path(report)
    check_durability(report)


def main() -> int:
    report = run_perf()
    _persist(report)
    check_pair_pipeline(report)
    check_sharded_stream(report)
    check_pooled(report)
    check_resilience(report)
    check_query_path(report)
    check_durability(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
