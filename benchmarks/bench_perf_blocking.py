"""Perf benchmark — per-record vs batch vs parallel vs streamed engines.

Times LSH and SA-LSH blocking on synthetic NC-Voter at 10k/50k records
(the paper's §6.1 voter parameters q=2, k=9, l=15) under the per-record
and batch engines, the batch engine with ``workers`` threads, and (for
LSH) the slab-streamed path with a memory-mapped signature spill. A
fourth section times the survey baselines that run on the batch
key-extraction path (TBlo, SorA, SorII, SuA) at the same sizes, so the
techniques the survey calls "blocking one record at a time" finally
appear on the same 50k+ axis. Results land in
``BENCH_perf_blocking.json`` at the repo root so future PRs have a perf
trajectory to compare against.

Every run doubles as a large-scale equivalence check: blocks are
asserted identical across per-record/batch/parallel/streamed engines.

Environment knobs (see benchmarks/README.md):

* ``REPRO_BENCH_PERF_SIZES=2000,5000`` — override the 10k/50k ladder
  (CI smoke uses one small size);
* ``REPRO_BENCH_WORKERS=4`` — thread count of the parallel run
  (default 4; the recorded ``cpu_count`` tells you whether the host
  could actually exploit it);
* ``REPRO_BENCH_SCALE=paper`` keeps the default ladder.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.baselines import (
    ArraySortedNeighbourhood,
    InvertedIndexSortedNeighbourhood,
    StandardBlocker,
    SuffixArrayBlocker,
)
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import format_table
from repro.minhash import open_signature_memmap

from _shared import (
    SEED,
    VOTER_ATTRS,
    voter_lsh,
    voter_salsh,
    write_result,
)

DEFAULT_SIZES = (10_000, 50_000)
DEFAULT_WORKERS = 4
#: Streamed runs cut the corpus into this many record slabs.
STREAM_SLABS = 8
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf_blocking.json"


def sizes() -> tuple[int, ...]:
    override = os.environ.get("REPRO_BENCH_PERF_SIZES")
    if override:
        return tuple(int(part) for part in override.split(",") if part.strip())
    return DEFAULT_SIZES


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", str(DEFAULT_WORKERS)))


def _timed(run, *, repeats: int):
    """Best-of-``repeats`` wall time (standard throughput practice)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _run_engine_pair(make_blocker, dataset, warmup_dataset, *, stream: bool) -> dict:
    # One small warmup per engine: fills the process-wide SHA-1 memo
    # and numpy's lazily-initialised kernels so both engines are timed
    # at steady-state throughput.
    make_blocker(batch=False).block(warmup_dataset)
    make_blocker(batch=True).block(warmup_dataset)
    legacy_result, legacy_seconds = _timed(
        lambda: make_blocker(batch=False).block(dataset), repeats=2
    )
    batch_result, batch_seconds = _timed(
        lambda: make_blocker(batch=True).block(dataset), repeats=3
    )
    assert batch_result.blocks == legacy_result.blocks, (
        "batch and per-record engines disagree — equivalence broken"
    )

    workers = bench_workers()
    parallel_result, parallel_seconds = _timed(
        lambda: make_blocker(batch=True, workers=workers).block(dataset),
        repeats=3,
    )
    assert parallel_result.blocks == batch_result.blocks, (
        "parallel and serial batch engines disagree — equivalence broken"
    )

    n = len(dataset)
    stats = {
        "num_blocks": batch_result.num_blocks,
        "per_record_seconds": round(legacy_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "per_record_records_per_sec": round(n / legacy_seconds, 1),
        "batch_records_per_sec": round(n / batch_seconds, 1),
        "speedup": round(legacy_seconds / batch_seconds, 2),
        "workers": workers,
        "workers_seconds": round(parallel_seconds, 4),
        "workers_records_per_sec": round(n / parallel_seconds, 1),
        "parallel_speedup": round(batch_seconds / parallel_seconds, 2),
    }

    if stream:
        records = list(dataset)
        slab = max(1, len(records) // STREAM_SLABS)
        slabs = [records[i : i + slab] for i in range(0, len(records), slab)]
        blocker = make_blocker(batch=True, workers=workers)
        with tempfile.TemporaryDirectory() as spill_dir:
            spill = Path(spill_dir) / "signatures.npy"

            def run_streamed():
                signatures = open_signature_memmap(
                    spill, len(records), blocker.hasher.num_hashes
                )
                return blocker.block_stream(slabs, signatures_out=signatures)

            streamed_result, streamed_seconds = _timed(run_streamed, repeats=2)
        assert streamed_result.blocks == batch_result.blocks, (
            "streamed and in-memory blocking disagree — equivalence broken"
        )
        stats.update(
            {
                "streamed_seconds": round(streamed_seconds, 4),
                "streamed_records_per_sec": round(n / streamed_seconds, 1),
                "stream_slabs": len(slabs),
            }
        )
    return stats


#: Survey baselines on the batch key-extraction path, near-linear cost —
#: safe to time at 50k+. QGr/canopy/StringMap also run on the batch key
#: path but their per-key expansion is super-linear, so the 50k ladder
#: would time the algorithm, not the engine (see benchmarks/README.md).
BASELINES = {
    "TBlo": lambda: StandardBlocker(VOTER_ATTRS),
    "SorA": lambda: ArraySortedNeighbourhood(VOTER_ATTRS, window=3),
    "SorII": lambda: InvertedIndexSortedNeighbourhood(VOTER_ATTRS, window=3),
    "SuA": lambda: SuffixArrayBlocker(VOTER_ATTRS),
}


def _run_baselines(dataset) -> dict:
    n = len(dataset)
    stats = {}
    for name, make in BASELINES.items():
        result, seconds = _timed(lambda: make().block(dataset), repeats=2)
        stats[name] = {
            "num_blocks": result.num_blocks,
            "seconds": round(seconds, 4),
            "records_per_sec": round(n / seconds, 1),
        }
    return stats


def run_perf() -> dict:
    report: dict = {
        "benchmark": "perf_blocking",
        "dataset": "NCVoterLike",
        "attributes": list(VOTER_ATTRS),
        "parameters": {"q": 2, "k": 9, "l": 15, "seed": SEED},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "sizes": {},
    }
    warmup = NCVoterLikeGenerator(num_records=200, seed=SEED + 1).generate()
    for n in sizes():
        dataset = NCVoterLikeGenerator(num_records=n, seed=SEED).generate()
        report["sizes"][str(n)] = {
            "lsh": _run_engine_pair(
                lambda **kw: voter_lsh(**kw), dataset, warmup, stream=True
            ),
            "salsh": _run_engine_pair(
                lambda **kw: voter_salsh(**kw), dataset, warmup, stream=False
            ),
            "baselines": _run_baselines(dataset),
        }
    return report


def _persist(report: dict) -> None:
    RESULT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    rows = []
    for n, entry in report["sizes"].items():
        for technique in ("lsh", "salsh"):
            stats = entry[technique]
            rows.append([
                n,
                technique.upper(),
                stats["per_record_seconds"],
                stats["batch_seconds"],
                stats["workers_seconds"],
                stats.get("streamed_seconds", "-"),
                stats["batch_records_per_sec"],
                stats["speedup"],
                stats["parallel_speedup"],
            ])
    write_result(
        "perf_blocking",
        format_table(
            ["records", "blocker", "t(loop)s", "t(batch)s",
             f"t(w={bench_workers()})s", "t(stream)s",
             "rec/s(batch)", "speedup", "par.speedup"],
            rows,
            title="Perf — per-record vs batch vs parallel vs streamed "
                  "(q=2, k=9, l=15)",
        ),
    )
    baseline_rows = [
        [n, name, stats["seconds"], stats["records_per_sec"], stats["num_blocks"]]
        for n, entry in report["sizes"].items()
        for name, stats in entry["baselines"].items()
    ]
    write_result(
        "perf_baselines",
        format_table(
            ["records", "technique", "t(s)", "rec/s", "blocks"],
            baseline_rows,
            title="Perf — survey baselines on the batch key path",
        ),
    )
    print(f"[written to {RESULT_JSON.name}]")


def test_perf_blocking(benchmark):
    report = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    _persist(report)
    for entry in report["sizes"].values():
        for technique in ("lsh", "salsh"):
            # The batch engine must never be slower; the headline >= 5x
            # claim is asserted on the committed 10k/50k run, while CI
            # smoke sizes only check a real win to stay timing-robust.
            assert entry[technique]["speedup"] > 1.0
            # Parallel/streamed equivalence is asserted inside the run;
            # parallel *speedup* is only meaningful with spare cores, so
            # it is recorded (with cpu_count) rather than asserted here.


def main() -> int:
    report = run_perf()
    _persist(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
