"""Ablation — the q-gram length choice (§6.1).

The paper picks q per dataset from the similarity distribution of true
matches "following the principle of deciding γ-robustness" (q=4 for
Cora, q=2 for NC Voter). This ablation runs the tuned blocker under
every q and reports quality plus the estimated γ of each metric,
showing that the paper's choices sit at (or near) the FM optimum.
"""

from __future__ import annotations

from repro.core.robustness import estimate_gamma, match_probability_curve
from repro.evaluation import format_table, run_blocking
from repro.minhash import Shingler
from repro.utils.rand import rng_from_seed

from _shared import (
    CORA_ATTRS,
    VOTER_ATTRS,
    cora_dataset,
    cora_lsh,
    voter_dataset,
    voter_lsh,
    write_result,
)

Q_VALUES = (None, 2, 3, 4)


def gamma_for(dataset, attributes, q, *, num_non_matches=1500):
    shingler = Shingler(attributes, q=q)
    samples = [
        (shingler.jaccard(dataset[a], dataset[b]), True)
        for a, b in sorted(dataset.true_matches)[:1500]
    ]
    rng = rng_from_seed(3, "ablation-q", dataset.name, str(q))
    ids = dataset.record_ids
    produced = 0
    while produced < num_non_matches:
        id1, id2 = rng.choice(ids), rng.choice(ids)
        if id1 == id2 or dataset.is_true_match(id1, id2):
            continue
        samples.append((shingler.jaccard(dataset[id1], dataset[id2]), False))
        produced += 1
    curve = match_probability_curve(samples, num_bins=10)
    return estimate_gamma(curve, tolerance=0.05, min_count=10)


def sweep(dataset, attributes, blocker_factory):
    rows = []
    for q in Q_VALUES:
        metrics = run_blocking(blocker_factory(q=q), dataset).metrics
        gamma = gamma_for(dataset, attributes, q)
        rows.append([
            "exact" if q is None else f"q={q}",
            gamma, metrics.pc, metrics.pq, metrics.fm,
        ])
    return rows


def test_ablation_q_choice(benchmark):
    def run():
        return {
            "cora": sweep(cora_dataset(), CORA_ATTRS, cora_lsh),
            "voter": sweep(voter_dataset(), VOTER_ATTRS, voter_lsh),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    out = []
    for name, rows in results.items():
        out.append(format_table(
            ["shingles", "gamma", "PC", "PQ", "FM"], rows,
            title=f"Ablation — q-gram choice over {name} (LSH at tuned k, l)",
        ))
        out.append("")
    write_result("ablation_qgrams", "\n".join(out))

    # The paper's q must be within 0.05 FM of the best *feasible* q.
    # Feasibility follows Eq. 2: a configuration whose PC ceiling loses
    # more than 25% of true matches can never satisfy a sane ε no
    # matter how many tables are added (exact-value shingles on the
    # voter corpus are the canonical example: typo'd duplicates share
    # no shingle at all, capping PC at the exact-duplicate share).
    for name, paper_q in (("cora", "q=4"), ("voter", "q=2")):
        rows = results[name]
        feasible = [row for row in rows if row[2] >= 0.75]
        assert feasible, name
        best_fm = max(row[4] for row in feasible)
        paper_fm = next(row[4] for row in rows if row[0] == paper_q)
        assert paper_fm >= best_fm - 0.05, (name, paper_fm, best_fm)
