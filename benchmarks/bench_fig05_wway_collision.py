"""Fig. 5 — collision probability of a w-way semantic hash function.

The paper plots the analytic collision probability for w = 1..15 under
µ ∈ {∧, ∨} and semantic similarities s' ∈ {0.2, 0.3, 0.4, 0.6, 0.7,
0.8}: AND curves fall towards 0 as w grows, OR curves saturate towards
1, and they meet at w = 1. This benchmark regenerates the whole grid
and cross-checks two points against a Monte-Carlo simulation of random
semhash signatures.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_table
from repro.lsh.collision import wway_collision_probability
from repro.semantic import WWaySemanticHashFamily
from repro.utils.rand import rng_from_seed

from _shared import write_result

S_PRIMES = (0.2, 0.3, 0.4, 0.6, 0.7, 0.8)
WS = tuple(range(1, 16))


def fig5_grid() -> list[list[object]]:
    """Rows: (µ, w) — mirroring the AND<-...->OR axis of the figure."""
    rows: list[list[object]] = []
    for w in reversed(WS):  # AND side, w decreasing towards the centre
        rows.append([f"AND w={w}"] + [
            wway_collision_probability(s, w, "and") for s in S_PRIMES
        ])
    for w in WS[1:]:  # OR side (w=1 coincides with AND w=1)
        rows.append([f"OR  w={w}"] + [
            wway_collision_probability(s, w, "or") for s in S_PRIMES
        ])
    return rows


def monte_carlo_probability(
    s_prime: float, w: int, mode: str, *, num_bits: int = 64, trials: int = 20000
) -> float:
    """Empirical firing rate of a w-way function on random signatures.

    Pairs of signatures share each bit independently with probability
    s_prime (the paper's s' = p_v * p_e model).
    """
    rng = rng_from_seed(7, "fig5-mc", s_prime, w, mode)
    family = WWaySemanticHashFamily(num_bits, w, mode, num_tables=1, seed=3)
    hits = 0
    for _ in range(trials):
        shared = np.array(
            [1 if rng.random() < s_prime else 0 for _ in range(num_bits)],
            dtype=np.uint8,
        )
        # Build a pair that shares exactly the `shared` bits.
        sig1 = shared.copy()
        sig2 = shared.copy()
        if family.pair_collides(0, sig1, sig2):
            hits += 1
    return hits / trials


def test_fig5_collision_grid(benchmark):
    rows = benchmark.pedantic(fig5_grid, rounds=1, iterations=1)

    headers = ["w-way"] + [f"s'={s}" for s in S_PRIMES]
    write_result(
        "fig05_wway_collision",
        format_table(headers, rows, float_digits=3,
                     title="Fig. 5 — w-way semantic hash collision probability"),
    )

    # Shape assertions from the figure.
    and_col = [r[1] for r in rows if str(r[0]).startswith("AND")]
    or_col = [r[1] for r in rows if str(r[0]).startswith("OR")]
    assert and_col == sorted(and_col)  # rises as w decreases towards 1
    assert or_col == sorted(or_col)  # rises as w grows

    # Monte-Carlo agreement at two grid points.
    for w, mode in ((3, "or"), (2, "and")):
        analytic = wway_collision_probability(0.4, w, mode)
        empirical = monte_carlo_probability(0.4, w, mode)
        assert abs(analytic - empirical) < 0.02, (w, mode, analytic, empirical)
