"""Scenario matrix — dedup vs linkage × clean vs corrupted × key schema.

The blocking survey treats dirty-ER (single-corpus deduplication) and
clean-clean-ER (cross-dataset record linkage) as distinct workloads
with different pair spaces, and method rankings are known to shift
between them. This rung runs both tasks through the *same* engines on
the same NC-Voter-like corpora and reports the full matrix:

* **task** — ``dedup`` blocks the whole corpus and is scored against
  all labelled pairs (|Ω| = n·(n−1)/2); ``linkage`` splits the corpus
  into its duplicate rows (source) and clean rows (target), blocks the
  source against the target via ``block_pair`` and is scored against
  the bipartite ground truth (|Ω| = |S|×|T|).
* **corpus** — ``clean`` duplicates are verbatim re-registrations
  (``exact_duplicate_fraction=1``); ``corrupted`` duplicates always
  carry a name typo (``exact_duplicate_fraction=0``).
* **keys** — ``aligned`` blocks on the schema-aligned name attributes
  the paper tunes for (§6.1); ``fallback`` blocks on the coarse
  ``city``/``zip`` columns, the degraded-schema regime a production
  linker falls back to when the name schema is unavailable.

Every linkage cell doubles as an equivalence check: ``block_pair``
with ``processes=2`` must produce byte-identical blocks to the serial
run, and the array evaluation engine must agree with the per-block
legacy engine.

``check_linkage`` gates the matrix (``main`` and the pytest wrapper
both fail if it does not hold):

* on the corrupted corpus with aligned keys, linkage pair completeness
  is within ``PC_GAP_BUDGET`` (2 points) of the dedup run scored on
  the same bipartite split (the dedup blocker's recall of cross-side
  true matches), and never more than 2 points *below* the dedup
  workload's own PC — the role axis must not cost recall. Linkage PC
  may legitimately exceed the dedup workload PC: the bipartite truth
  excludes duplicate-duplicate pairs, which on a corrupted corpus are
  the hardest to block (both members carry typos);
* linkage blocking throughput never drops below the per-record
  engine's floor on the same union corpus — the streamed
  ``block_pair`` path has no excuse to be slower than blocking one
  record at a time.

Results land in ``BENCH_linkage_matrix.json`` at the repo root.

Environment knobs:

* ``REPRO_BENCH_LINKAGE_SIZE=1000`` — corpus size per cell (default
  4,000 at small scale, 30,000 at ``REPRO_BENCH_SCALE=paper``);
* ``REPRO_BENCH_PROCESSES=2`` — worker processes of the sharded
  equivalence run (default 2).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core import LSHBlocker, as_bipartite
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import evaluate_blocks, evaluate_linkage, format_table
from repro.records import Dataset, LinkedCorpus

from _shared import SEED, VOTER_K, VOTER_L, VOTER_Q, scale, write_result

RESULT_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_linkage_matrix.json"
)

#: |PC(linkage) − PC(dedup)| budget on the corrupted/aligned cell.
PC_GAP_BUDGET = 0.02
#: The linkage path must reach at least this fraction of the
#: per-record engine's records/sec on the same union corpus (1.0 =
#: "never below the per-record floor").
LINKAGE_FLOOR_FACTOR = 1.0

#: The two key schemas of the matrix.
KEY_SCHEMAS = {
    "aligned": ("first_name", "last_name"),
    "fallback": ("city", "zip"),
}

#: The two corpus variants: verbatim duplicates vs always-typo'd ones.
CORPUS_VARIANTS = {
    "clean": dict(exact_duplicate_fraction=1.0, typo_errors=0),
    "corrupted": dict(exact_duplicate_fraction=0.0, typo_errors=1),
}


def matrix_size() -> int:
    default = 30_000 if scale() == "paper" else 4_000
    return int(os.environ.get("REPRO_BENCH_LINKAGE_SIZE", default))


def bench_processes() -> int:
    return int(os.environ.get("REPRO_BENCH_PROCESSES", 2))


def _corpus(variant: str, size: int) -> Dataset:
    return NCVoterLikeGenerator(
        num_records=size, seed=SEED, **CORPUS_VARIANTS[variant]
    ).generate()


def _split(dataset: Dataset) -> LinkedCorpus:
    """Duplicate rows (d…) as the source, clean rows (v…) as the target."""
    dups = [r for r in dataset if r.record_id.startswith("d")]
    clean = [r for r in dataset if r.record_id.startswith("v")]
    return LinkedCorpus(
        Dataset(dups, name=f"{dataset.name}-dups"),
        Dataset(clean, name=f"{dataset.name}-clean"),
    )


def _blocker(attributes, *, processes: int | None = None) -> LSHBlocker:
    return LSHBlocker(
        attributes, q=VOTER_Q, k=VOTER_K, l=VOTER_L, seed=SEED,
        processes=processes,
    )


def _run_cell(variant: str, key_name: str, size: int) -> dict:
    attributes = KEY_SCHEMAS[key_name]
    dataset = _corpus(variant, size)
    linked = _split(dataset)

    start = time.perf_counter()
    dedup_result = _blocker(attributes).block(dataset)
    dedup_seconds = time.perf_counter() - start
    dedup_metrics = evaluate_blocks(dedup_result, dataset)

    # The dedup run scored on the same bipartite split: its recall of
    # cross-side true matches is the apples-to-apples "same split"
    # comparison for linkage PC.
    dedup_cross = evaluate_linkage(as_bipartite(dedup_result, linked))

    start = time.perf_counter()
    linkage_result = _blocker(attributes).block_pair(linked)
    linkage_seconds = time.perf_counter() - start
    linkage_metrics = evaluate_linkage(linkage_result)

    legacy_metrics = evaluate_linkage(linkage_result, engine="legacy")
    assert linkage_metrics == legacy_metrics, (
        f"{variant}/{key_name}: array and legacy linkage evaluation "
        "disagree — equivalence broken"
    )
    sharded = _blocker(attributes, processes=bench_processes()).block_pair(
        linked
    )
    assert sharded.blocks == linkage_result.blocks, (
        f"{variant}/{key_name}: sharded block_pair diverges from serial "
        "— equivalence broken"
    )

    # The per-record floor: the slowest honest engine on the same
    # union corpus. block_pair streams records through the online
    # index, so it must never lose to blocking one record at a time.
    per_record_blocker = LSHBlocker(
        attributes, q=VOTER_Q, k=VOTER_K, l=VOTER_L, seed=SEED, batch=False
    )
    start = time.perf_counter()
    per_record_blocker.block(linked.union)
    per_record_seconds = time.perf_counter() - start

    n = len(dataset)
    return {
        "records": n,
        "num_source": len(linked.source),
        "num_target": len(linked.target),
        "dedup_pc": round(dedup_metrics.pc, 4),
        "dedup_pq": round(dedup_metrics.pq, 4),
        "dedup_rr": round(dedup_metrics.rr, 4),
        "dedup_pairs": dedup_metrics.num_distinct_pairs,
        "dedup_seconds": round(dedup_seconds, 4),
        "dedup_cross_pc": round(dedup_cross.pc, 4),
        "linkage_pc": round(linkage_metrics.pc, 4),
        "linkage_pq": round(linkage_metrics.pq, 4),
        "linkage_rr": round(linkage_metrics.rr, 4),
        "linkage_pairs": linkage_metrics.num_distinct_pairs,
        "linkage_seconds": round(linkage_seconds, 4),
        "linkage_records_per_sec": round(n / linkage_seconds, 1),
        "per_record_seconds": round(per_record_seconds, 4),
        "per_record_records_per_sec": round(n / per_record_seconds, 1),
        "linkage_vs_per_record": round(
            per_record_seconds / linkage_seconds, 2
        ),
        # Same-split gap: linkage PC vs the dedup blocker's cross-pair
        # PC on the identical bipartite truth.
        "pc_gap": round(abs(linkage_metrics.pc - dedup_cross.pc), 4),
        # Workload delta: linkage PC minus the classic dedup PC
        # (positive = linkage recalls more; only a deficit regresses).
        "pc_delta_vs_dedup": round(linkage_metrics.pc - dedup_metrics.pc, 4),
    }


def run_matrix() -> dict:
    size = matrix_size()
    cells: dict[str, dict] = {}
    for variant in CORPUS_VARIANTS:
        for key_name in KEY_SCHEMAS:
            cells[f"{variant}/{key_name}"] = _run_cell(
                variant, key_name, size
            )
    return {
        "benchmark": "linkage_matrix",
        "scale": scale(),
        "size": size,
        "processes": bench_processes(),
        "blocker": {"q": VOTER_Q, "k": VOTER_K, "l": VOTER_L, "seed": SEED},
        "cells": cells,
    }


def check_linkage(report: dict) -> None:
    """The scenario-matrix gate (see module docstring)."""
    cells = report["cells"]
    required = (
        "dedup_pc", "dedup_cross_pc", "linkage_pc", "pc_gap",
        "pc_delta_vs_dedup", "linkage_records_per_sec",
        "per_record_records_per_sec", "linkage_vs_per_record",
    )
    for name, stats in cells.items():
        for column in required:
            assert column in stats, f"cell {name}: column {column!r} missing"
        floor = LINKAGE_FLOOR_FACTOR * stats["per_record_records_per_sec"]
        assert stats["linkage_records_per_sec"] >= floor, (
            f"cell {name}: linkage blocking at "
            f"{stats['linkage_records_per_sec']} rec/s fell below the "
            f"per-record floor {floor} — the streamed block_pair path "
            "regressed"
        )
    headline = cells["corrupted/aligned"]
    assert headline["pc_gap"] <= PC_GAP_BUDGET, (
        f"corrupted/aligned: linkage PC {headline['linkage_pc']} vs the "
        f"dedup run's same-split PC {headline['dedup_cross_pc']} — gap "
        f"{headline['pc_gap']} exceeds {PC_GAP_BUDGET}; the role axis "
        "is costing recall"
    )
    assert headline["pc_delta_vs_dedup"] >= -PC_GAP_BUDGET, (
        f"corrupted/aligned: linkage PC {headline['linkage_pc']} fell "
        f"more than {PC_GAP_BUDGET} below the dedup workload PC "
        f"{headline['dedup_pc']} — the role axis is costing recall"
    )


def _persist(report: dict) -> None:
    RESULT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    rows = [
        [
            name,
            stats["records"],
            stats["dedup_pc"],
            stats["dedup_cross_pc"],
            stats["linkage_pc"],
            stats["pc_gap"],
            stats["dedup_rr"],
            stats["linkage_rr"],
            stats["linkage_pairs"],
            stats["linkage_records_per_sec"],
            stats["per_record_records_per_sec"],
        ]
        for name, stats in report["cells"].items()
    ]
    write_result(
        "linkage_matrix",
        format_table(
            ["scenario", "records", "pc(dedup)", "pc(cross)", "pc(link)",
             "pc.gap",
             "rr(dedup)", "rr(link)", "pairs(link)", "rec/s(link)",
             "rec/s(loop)"],
            rows,
            title="Scenario matrix — dedup vs linkage × clean vs "
                  f"corrupted × key schema (q={VOTER_Q}, k={VOTER_K}, "
                  f"l={VOTER_L})",
        ),
    )
    print(f"[written to {RESULT_JSON.name}]")


def test_linkage_matrix(benchmark):
    report = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    _persist(report)
    check_linkage(report)


def main() -> int:
    report = run_matrix()
    _persist(report)
    check_linkage(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
