"""Fig. 11 — FM/PQ/PC/RR of the 14 techniques on both data sets.

Each survey technique is reported at its best-FM parameter setting (the
survey protocol); LSH and SA-LSH use the paper's tuned parameters. The
headline reproduced claim: **SA-LSH attains the best FM on both data
sets** and the PQ values of (SA-)LSH exceed the baselines', while all
techniques' RR values sit close together.
"""

from __future__ import annotations

from repro.baselines import TECHNIQUE_ORDER
from repro.evaluation import format_table

from _shared import best_technique_results, lsh_salsh_results, write_result

ALL_NAMES = TECHNIQUE_ORDER + ("LSH", "SA-LSH")


def collect(dataset_name: str):
    best = best_technique_results(dataset_name)
    ours = lsh_salsh_results(dataset_name)
    rows = []
    for name in ALL_NAMES:
        outcome = best.get(name) or ours[name]
        m = outcome.metrics
        rows.append([name, m.fm, m.pq, m.pc, m.rr])
    return rows


def run_fig11():
    return {"cora": collect("cora"), "voter": collect("voter")}


def test_fig11_technique_comparison(benchmark):
    results = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    out = []
    for dataset_name, rows in results.items():
        out.append(format_table(
            ["technique", "FM", "PQ", "PC", "RR"], rows,
            title=f"Fig. 11 — blocking quality over {dataset_name}",
        ))
        out.append("")
    write_result("fig11_comparison", "\n".join(out))

    # Techniques whose grouping decisions rest on direct string
    # comparison of blocking keys (canopies, adaptive windows, embedded
    # distances, suffix merging). The synthetic registry's exact-
    # duplicate share flatters them at small scale — see EXPERIMENTS.md.
    string_comparing = {"CaTh", "ASor", "StMT", "StMNN", "RSuA"}

    for dataset_name, rows in results.items():
        by_name = {row[0]: row for row in rows}
        salsh_fm = by_name["SA-LSH"][1]
        for name in TECHNIQUE_ORDER:
            if dataset_name == "voter" and name in string_comparing:
                # Documented corridor on the clean registry corpus.
                assert salsh_fm >= by_name[name][1] - 0.1, (dataset_name, name)
            else:
                # The paper's headline: SA-LSH has the best FM. It must
                # hold outright on the dirty Cora-like corpus and
                # against every index-based technique on both corpora.
                assert salsh_fm >= by_name[name][1] - 1e-9, (dataset_name, name)
        # SA-LSH must strictly improve on plain LSH.
        assert salsh_fm >= by_name["LSH"][1] - 1e-9, dataset_name
        # And the semantic gate keeps SA-LSH's PQ at or above LSH's.
        assert by_name["SA-LSH"][2] >= by_name["LSH"][2] - 1e-9, dataset_name
        # RR values cluster high for all techniques (Fig. 11 d).
        for row in rows:
            assert row[4] > 0.9, (dataset_name, row[0])
