"""Fig. 9 — LSH vs SA-LSH across the (k, l) ladders.

(a)-(c): Cora with the tuned ladder k=1..6, l=2,6,19,63,210,701.
(d)-(f): NC Voter with k=4..9, l=15.

SA-LSH uses the lowest semantic threshold (§6.3.2): two records are
semantically compatible when they share at least one leaf concept —
the w-way OR over all semhash bits.

Paper shapes: SA-LSH's PQ and RR dominate LSH's at every k; the PC gap
is visible on Cora (noisy semantic features) and nearly zero on NC
Voter (uncertain but clean features).
"""

from __future__ import annotations

from repro.core.tuning import kl_ladder
from repro.evaluation import format_table, run_blocking

from _shared import (
    cora_dataset,
    cora_lsh,
    cora_salsh,
    scale,
    voter_dataset,
    voter_lsh,
    voter_salsh,
    write_result,
)


def cora_ladder():
    ladder = kl_ladder(0.3, 0.4, range(1, 7))
    if scale() != "paper":
        # k=6 -> l=701 costs ~10x the rest combined; small scale stops at 5.
        ladder = ladder[:5]
    return ladder


def run_cora_sweep():
    dataset = cora_dataset()
    rows = []
    for k, l in cora_ladder():
        lsh = run_blocking(cora_lsh(k=k, l=l), dataset).metrics
        salsh = run_blocking(cora_salsh(k=k, l=l), dataset).metrics
        rows.append([f"k={k} l={l}", lsh.pc, salsh.pc, lsh.pq, salsh.pq,
                     lsh.rr, salsh.rr])
    return rows


def run_voter_sweep():
    dataset = voter_dataset()
    rows = []
    for k in range(4, 10):
        lsh = run_blocking(voter_lsh(k=k, l=15), dataset).metrics
        salsh = run_blocking(voter_salsh(k=k, l=15), dataset).metrics
        rows.append([f"k={k} l=15", lsh.pc, salsh.pc, lsh.pq, salsh.pq,
                     lsh.rr, salsh.rr])
    return rows


HEADERS = ["params", "PC(LSH)", "PC(SA)", "PQ(LSH)", "PQ(SA)", "RR(LSH)", "RR(SA)"]


def test_fig9_cora_sweep(benchmark):
    rows = benchmark.pedantic(run_cora_sweep, rounds=1, iterations=1)
    write_result(
        "fig09_cora",
        format_table(HEADERS, rows,
                     title="Fig. 9 (a)-(c) — LSH vs SA-LSH over Cora"),
    )
    for row in rows:
        _, pc_lsh, pc_sa, pq_lsh, pq_sa, rr_lsh, rr_sa = row
        assert pq_sa >= pq_lsh - 1e-9  # semantic gate can only purify
        assert rr_sa >= rr_lsh - 1e-9
        assert pc_sa <= pc_lsh + 1e-9
    # PC climbs with k (more tables -> higher recall), as in Fig. 9 (a).
    pcs = [row[1] for row in rows]
    assert pcs[-1] >= pcs[0]


def test_fig9_voter_sweep(benchmark):
    rows = benchmark.pedantic(run_voter_sweep, rounds=1, iterations=1)
    write_result(
        "fig09_voter",
        format_table(HEADERS, rows,
                     title="Fig. 9 (d)-(f) — LSH vs SA-LSH over NC Voter"),
    )
    for row in rows:
        _, pc_lsh, pc_sa, pq_lsh, pq_sa, rr_lsh, rr_sa = row
        assert pq_sa >= pq_lsh - 1e-9
        # §6.3.2: on NC Voter the PC values of LSH and SA-LSH coincide
        # (features are uncertain, not noisy) — allow small daylight.
        assert pc_lsh - pc_sa <= 0.02
    # PC decreases as k grows at fixed l=15 (stricter bands), Fig. 9 (d).
    pcs = [row[1] for row in rows]
    assert pcs[-1] <= pcs[0] + 1e-9
