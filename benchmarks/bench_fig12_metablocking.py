"""Fig. 12 — SA-LSH vs meta-blocking (Papadakis et al., 2014).

Initial blocks come from token blocking (the meta-blocking paper's
standard input). For each pruning algorithm (WEP, CEP, WNP, CNP) the
best FM* over the five weighting schemes (ARCS, CBS, ECBS, JS, EJS) is
reported, next to SA-LSH — all under PC / PQ* / FM* (the redundancy-
aware measures of [37]).

Paper shapes: the best pruned configuration beats SA-LSH on FM*, while
SA-LSH attains the highest (or tied-highest) PC among the contenders.
"""

from __future__ import annotations

from repro.baselines import TokenBlocker
from repro.evaluation import evaluate_blocks, format_table
from repro.metablocking import PRUNING_ALGORITHMS, WEIGHT_SCHEMES, run_metablocking

from _shared import (
    CORA_ATTRS,
    VOTER_ATTRS,
    cora_dataset,
    lsh_salsh_results,
    voter_dataset,
    write_result,
)


def run_dataset(dataset, attributes, salsh_outcome):
    source = TokenBlocker(attributes, max_block_size=200).block(dataset)
    initial = evaluate_blocks(source, dataset)

    rows = [["initial", "-", initial.pc, initial.pq_star, initial.fm_star]]
    for algorithm in PRUNING_ALGORITHMS:
        best = None
        best_scheme = None
        for scheme in WEIGHT_SCHEMES:
            pruned = run_metablocking(source, scheme, algorithm)
            metrics = evaluate_blocks(pruned, dataset)
            if best is None or metrics.fm_star > best.fm_star:
                best, best_scheme = metrics, scheme
        rows.append([algorithm, best_scheme, best.pc, best.pq_star, best.fm_star])

    m = salsh_outcome.metrics
    rows.append(["SA-LSH", "-", m.pc, m.pq_star, m.fm_star])
    return rows


def run_fig12():
    return {
        "cora": run_dataset(
            cora_dataset(), CORA_ATTRS, lsh_salsh_results("cora")["SA-LSH"]
        ),
        "voter": run_dataset(
            voter_dataset(), VOTER_ATTRS, lsh_salsh_results("voter")["SA-LSH"]
        ),
    }


def test_fig12_metablocking(benchmark):
    results = benchmark.pedantic(run_fig12, rounds=1, iterations=1)

    out = []
    for dataset_name, rows in results.items():
        out.append(format_table(
            ["method", "weight", "PC", "PQ*", "FM*"], rows,
            title=f"Fig. 12 — SA-LSH vs meta-blocking over {dataset_name}",
        ))
        out.append("")
    write_result("fig12_metablocking", "\n".join(out))

    for dataset_name, rows in results.items():
        by_name = {row[0]: row for row in rows}
        # Pruning must improve FM* over the raw token blocks.
        best_pruned_fm = max(by_name[a][4] for a in PRUNING_ALGORITHMS)
        assert best_pruned_fm >= by_name["initial"][4], dataset_name
        # SA-LSH keeps competitive PC (the paper: highest or tied).
        salsh_pc = by_name["SA-LSH"][2]
        assert salsh_pc >= 0.5, dataset_name
