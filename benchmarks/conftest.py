"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Allow `import _shared` from benchmark modules regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
