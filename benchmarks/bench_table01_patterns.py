"""Table 1 — missing-value patterns over journal/booktitle/institution.

Regenerates the pattern table (which attribute combination maps to
which ``tbib`` concepts) and reports how the Cora-like corpus populates
the eight rows — the pattern set must be complete (§6.2: "every record
in Cora can be specified by one of the patterns").
"""

from __future__ import annotations

from collections import Counter

from repro.evaluation import format_table
from repro.semantic import cora_patterns

from _shared import cora_dataset, cora_semantic_function, write_result


def pattern_census():
    dataset = cora_dataset()
    function = cora_semantic_function()
    counts: Counter = Counter()
    for record in dataset:
        pattern = function.matching_pattern(record)
        assert pattern is not None, record.record_id
        counts[pattern] += 1
    return counts


def test_table1_pattern_census(benchmark):
    counts = benchmark.pedantic(pattern_census, rounds=1, iterations=1)

    def flag(pattern, attribute):
        if attribute in pattern.present:
            return "NOT NULL"
        if attribute in pattern.absent:
            return "NULL"
        return "ANY"

    rows = []
    for index, pattern in enumerate(cora_patterns(), start=1):
        rows.append([
            index,
            flag(pattern, "journal"),
            flag(pattern, "booktitle"),
            flag(pattern, "institution"),
            ", ".join(c.upper() for c in pattern.concepts),
            counts.get(pattern, 0),
        ])

    write_result(
        "table01_patterns",
        format_table(
            ["#", "journal", "booktitle", "institution", "concepts", "records"],
            rows,
            title="Table 1 — missing-value patterns and corpus coverage",
        ),
    )

    # Completeness: the eight patterns cover the entire corpus.
    assert sum(counts.values()) == len(cora_dataset())
    # The concept assignments are exactly Table 1's.
    assert rows[0][4] == "C3, C4, C6"
    assert rows[4][4] == "C4, C7, C8"
    assert rows[7][4] == "C1"
