"""Ablation — validating the collision model on real blocks.

The analytic backbone of the framework is P(co-block) = 1 - (1 - s^k)^l
for banded minhash (§5.1). This ablation samples labelled record pairs
from the Cora corpus, bins them by true shingle Jaccard, and compares
each bin's *empirical* co-blocking frequency under the real LSHBlocker
against the model's prediction — the model must track reality within a
few percentage points across the whole similarity range, which is what
makes the §5.3 tuning rules (and therefore the paper's (k, l) ladder)
trustworthy.
"""

from __future__ import annotations

from repro.evaluation import format_table
from repro.lsh.collision import banded_collision_probability
from repro.minhash import Shingler
from repro.utils.rand import rng_from_seed

from _shared import CORA_ATTRS, cora_dataset, cora_lsh, write_result

K, L = 2, 8  # small bands give collisions across the whole s range
NUM_BINS = 8
MIN_BIN_COUNT = 30


def run_validation():
    dataset = cora_dataset()
    blocker = cora_lsh(k=K, l=L, name="LSH-model-check")
    blocked_pairs = blocker.block(dataset).distinct_pairs

    shingler = Shingler(CORA_ATTRS, q=4)
    rng = rng_from_seed(11, "collision-model")
    ids = dataset.record_ids

    # Sample: all true matches plus random pairs, binned by Jaccard.
    pairs = list(dataset.true_matches)[:4000]
    for _ in range(12000):
        id1, id2 = rng.choice(ids), rng.choice(ids)
        if id1 != id2:
            pairs.append((min(id1, id2), max(id1, id2)))

    bins = [[0, 0] for _ in range(NUM_BINS)]  # [total, co-blocked]
    for id1, id2 in set(pairs):
        similarity = shingler.jaccard(dataset[id1], dataset[id2])
        index = min(int(similarity * NUM_BINS), NUM_BINS - 1)
        bins[index][0] += 1
        if (id1, id2) in blocked_pairs:
            bins[index][1] += 1

    rows = []
    for index, (total, hits) in enumerate(bins):
        lo, hi = index / NUM_BINS, (index + 1) / NUM_BINS
        midpoint = (lo + hi) / 2
        predicted = banded_collision_probability(midpoint, K, L)
        empirical = hits / total if total else float("nan")
        rows.append([f"[{lo:.3f},{hi:.3f})", total, empirical, predicted])
    return rows


def test_ablation_collision_model(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    write_result(
        "ablation_collision_model",
        format_table(
            ["similarity bin", "pairs", "empirical", "model 1-(1-s^k)^l"],
            rows,
            title=f"Ablation — banded collision model vs reality (k={K}, l={L})",
        ),
    )

    for label, total, empirical, predicted in rows:
        if total < MIN_BIN_COUNT:
            continue
        # Bin midpoint vs continuous similarity blurs the comparison;
        # a 0.15 absolute corridor is tight enough to catch a wrong
        # exponent or an off-by-one in banding.
        assert abs(empirical - predicted) < 0.15, (label, empirical, predicted)
