"""Table 2 — impact of taxonomy-tree variants on Cora blocking.

For tbib and the three Fig. 10 variants (t1 drops the peer-review
level, t2 drops Book, t3 drops Journal), the paper reports the mean ±
std *change* of PC/PQ/RR/FM when SA-LSH replaces LSH (k=4, l=63),
across repeated runs.

Paper shapes: PC always decreases, PQ/RR/FM always increase; the
variants lose less PC than tbib (missing concepts re-relate records via
parent concepts); t3 (no Journal) gains the least PQ because journals
are the most populous venue type.
"""

from __future__ import annotations

import statistics

from repro.evaluation import format_table, run_blocking
from repro.semantic import PatternSemanticFunction, cora_patterns_for
from repro.taxonomy.builders import bibliographic_tree, bibliographic_tree_variant

from _shared import CORA_ATTRS, cora_dataset, cora_lsh, cora_salsh, scale, write_result

SEEDS = (11, 22, 33) if scale() != "paper" else (11, 22, 33, 44, 55)

TREES = (
    ("tbib", bibliographic_tree),
    ("t(bib,1)", lambda: bibliographic_tree_variant(1)),
    ("t(bib,2)", lambda: bibliographic_tree_variant(2)),
    ("t(bib,3)", lambda: bibliographic_tree_variant(3)),
)


def deltas_for_tree(tree_factory) -> dict[str, list[float]]:
    """Per-seed percentage deltas (SA-LSH minus LSH) for one taxonomy."""
    dataset = cora_dataset()
    tree = tree_factory()
    function = PatternSemanticFunction(tree, cora_patterns_for(tree))
    deltas: dict[str, list[float]] = {"PC": [], "PQ": [], "RR": [], "FM": []}
    for seed in SEEDS:
        lsh = run_blocking(cora_lsh(seed=seed), dataset).metrics
        salsh = run_blocking(
            cora_salsh(seed=seed, semantic_function=function), dataset
        ).metrics
        deltas["PC"].append(100.0 * (salsh.pc - lsh.pc))
        deltas["PQ"].append(100.0 * (salsh.pq - lsh.pq))
        deltas["RR"].append(100.0 * (salsh.rr - lsh.rr))
        deltas["FM"].append(100.0 * (salsh.fm - lsh.fm))
    return deltas


def run_table2():
    return {name: deltas_for_tree(factory) for name, factory in TREES}


def _mean_std(values: list[float]) -> str:
    mean = statistics.mean(values)
    std = statistics.stdev(values) if len(values) > 1 else 0.0
    return f"{mean:+.2f}±{std:.2f}"


def test_table2_taxonomy_variants(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    measures = ("PC", "PQ", "RR", "FM")
    rows = [
        [measure] + [_mean_std(results[name][measure]) for name, _ in TREES]
        for measure in measures
    ]
    write_result(
        "table02_taxonomy_variants",
        format_table(
            ["measure"] + [name for name, _ in TREES], rows,
            title="Table 2 — SA-LSH impact vs LSH under taxonomy variants "
                  "(percentage-point deltas, mean±std)",
        ),
    )

    for name, _ in TREES:
        assert statistics.mean(results[name]["PC"]) <= 0.0, name  # PC drops
        assert statistics.mean(results[name]["PQ"]) >= 0.0, name  # PQ gains
        assert statistics.mean(results[name]["RR"]) >= 0.0, name
        assert statistics.mean(results[name]["FM"]) >= -0.5, name

    # Variants (missing concepts) lose less PC than the full tree.
    full_pc = statistics.mean(results["tbib"]["PC"])
    for variant in ("t(bib,1)", "t(bib,2)", "t(bib,3)"):
        assert statistics.mean(results[variant]["PC"]) >= full_pc - 0.5
