"""Fig. 7 — semantic hash functions H11-H15 over Cora (k=4, l=63).

H11: [w=2, ∧]   H12: [w=1]   H13: [w=2, ∨]   H14: [w=3, ∨]   H15: [w=4, ∨]

Paper shapes: PC rises from H11 to H15 (AND is strict, wider OR is
permissive); PQ moves the other way on Cora (higher semantic similarity
implies true matches); RR decreases slightly as collisions grow.
"""

from __future__ import annotations

from repro.evaluation import format_table, run_blocking

from _shared import cora_dataset, cora_lsh, cora_salsh, write_result

CONFIGS = (
    ("H11", 2, "and"),
    ("H12", 1, "or"),
    ("H13", 2, "or"),
    ("H14", 3, "or"),
    ("H15", 4, "or"),
)


def run_fig7():
    dataset = cora_dataset()
    rows = []
    for label, w, mode in CONFIGS:
        outcome = run_blocking(cora_salsh(w=w, mode=mode), dataset)
        m = outcome.metrics
        rows.append([label, f"w={w},{mode}", m.pc, m.pq, m.rr, m.fm])
    baseline = run_blocking(cora_lsh(), dataset).metrics
    rows.append(["LSH", "no semantics", baseline.pc, baseline.pq,
                 baseline.rr, baseline.fm])
    return rows


def test_fig7_semantic_hash_functions(benchmark):
    rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    write_result(
        "fig07_semhash_cora",
        format_table(
            ["config", "gate", "PC", "PQ", "RR", "FM"], rows,
            title="Fig. 7 — semantic hash functions over Cora (k=4, l=63)",
        ),
    )

    by_label = {row[0]: row for row in rows}
    pc = {label: by_label[label][2] for label, _, _ in CONFIGS}
    # PC: AND (H11) is the strictest; OR widens with w (H12 <= ... <= H15).
    assert pc["H11"] <= pc["H13"] + 0.02
    assert pc["H12"] <= pc["H15"] + 0.02
    assert pc["H13"] <= pc["H15"] + 0.02
    # Every gated config beats-or-matches plain LSH on PQ (Cora's
    # semantic features point at true matches, §6.3.1).
    lsh_pq = by_label["LSH"][3]
    for label, _, _ in CONFIGS:
        assert by_label[label][3] >= lsh_pq - 0.02, label
