"""Documentation checker: links resolve, README snippets run.

Two checks, used by the CI docs job (see .github/workflows/ci.yml):

1. **Link check** — every relative markdown link/image in the repo's
   documentation points at a file or directory that exists (external
   ``http(s)``/``mailto`` targets and pure ``#anchors`` are skipped).
2. **Snippet check** (``--run-snippets``) — every fenced ``python`` and
   ``bash`` code block in README.md actually runs, exactly as written.
   Blocks execute in a scratch directory containing a ``src`` symlink
   to the repo's ``src``, so the documented ``PYTHONPATH=src`` prefix
   works and generated files (CSVs, spilled ``.npy``) never pollute
   the checkout. Lines invoking ``pip install`` / ``setup.py`` are
   skipped — installation is environment-dependent by nature.

Exit status is non-zero on any failure, with a per-finding report.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links are validated.
DOC_GLOBS = ("*.md", "benchmarks/*.md", "examples/*.md", "tools/*.md")

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_SKIP_COMMANDS = ("pip install", "setup.py")


def iter_doc_files() -> list[Path]:
    found: list[Path] = []
    for pattern in DOC_GLOBS:
        found.extend(sorted(REPO_ROOT.glob(pattern)))
    return found


def check_links() -> list[str]:
    """Relative links in every doc file must resolve on disk."""
    problems: list[str] = []
    for doc in iter_doc_files():
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def extract_snippets(markdown: Path) -> list[tuple[str, str]]:
    """(language, source) for every fenced python/bash block."""
    snippets: list[tuple[str, str]] = []
    language: str | None = None
    lines: list[str] = []
    for line in markdown.read_text(encoding="utf-8").splitlines():
        fence = _FENCE.match(line)
        if fence and language is None:
            language = fence.group(1).lower()
            lines = []
        elif line.strip() == "```" and language is not None:
            if language in ("python", "bash"):
                snippets.append((language, "\n".join(lines)))
            language = None
        elif language is not None:
            lines.append(line)
    return snippets


def run_snippets(markdown: Path) -> list[str]:
    """Execute README code blocks in a scratch dir with a src symlink."""
    problems: list[str] = []
    snippets = extract_snippets(markdown)
    if not snippets:
        return [f"{markdown.name}: no runnable snippets found"]
    with tempfile.TemporaryDirectory(prefix="check-docs-") as scratch:
        scratch_path = Path(scratch)
        (scratch_path / "src").symlink_to(REPO_ROOT / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        for position, (language, source) in enumerate(snippets, 1):
            if language == "bash":
                source = "\n".join(
                    line
                    for line in source.splitlines()
                    if not any(skip in line for skip in _SKIP_COMMANDS)
                )
                if not source.strip():
                    continue
                command = ["bash", "-euo", "pipefail", "-c", source]
            else:
                command = [sys.executable, "-c", source]
            print(f"[snippet {position}] running {language} block ...")
            proc = subprocess.run(
                command, cwd=scratch_path, env=env,
                capture_output=True, text=True, timeout=600,
            )
            if proc.returncode != 0:
                problems.append(
                    f"{markdown.name} snippet {position} ({language}) failed "
                    f"with rc={proc.returncode}:\n{proc.stdout}\n{proc.stderr}"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run-snippets", action="store_true",
        help="also execute README.md python/bash code blocks",
    )
    args = parser.parse_args()

    problems = check_links()
    print(f"link check: {len(list(iter_doc_files()))} files scanned")
    if args.run_snippets:
        problems += run_snippets(REPO_ROOT / "README.md")

    if problems:
        print(f"\n{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
