#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1 running example, end to end.

Six bibliographic records about cascade-correlation learning are blocked
three ways:

* B1 — textual similarity only (plain LSH over title+authors q-grams);
* B2 — semantic similarity only (records sharing a related concept);
* B3 — semantic-aware LSH (SA-LSH), which keeps the textually similar
  conference versions together while expelling the technical report.

Run:  python examples/quickstart.py
"""

from repro.core import LSHBlocker, SALSHBlocker
from repro.datasets import fig1_dataset, fig1_semantic_function
from repro.evaluation import evaluate_blocks, format_table
from repro.semantic import record_semantic_similarity
from repro.minhash import Shingler
from repro.taxonomy.builders import bibliographic_tree


def show_similarities(dataset, semantic_function):
    """Print the TS/SS matrix of Fig. 1 (textual & semantic similarity)."""
    tree = bibliographic_tree()
    shingler = Shingler(("title", "authors"), q=2)
    rows = []
    records = list(dataset)
    for i, r1 in enumerate(records):
        for r2 in records[i + 1 :]:
            ts = shingler.jaccard(r1, r2)
            ss = record_semantic_similarity(
                tree,
                semantic_function.interpret(r1),
                semantic_function.interpret(r2),
            )
            rows.append([f"{r1.record_id},{r2.record_id}", ts, ss])
    print(format_table(["pair", "TS", "SS"], rows, float_digits=2,
                       title="Fig. 1 textual (TS) and semantic (SS) similarity"))
    print()


def show_blocks(name, result):
    blocks = sorted({tuple(sorted(set(b))) for b in result.blocks})
    merged = sorted({", ".join(b) for b in blocks})
    print(f"{name}: " + " | ".join("{" + b + "}" for b in merged))


def main():
    dataset = fig1_dataset()
    semantic_function = fig1_semantic_function()

    show_similarities(dataset, semantic_function)

    lsh = LSHBlocker(("title", "authors"), q=2, k=2, l=8, seed=11)
    salsh = SALSHBlocker(
        ("title", "authors"), q=2, k=2, l=8, seed=11,
        semantic_function=semantic_function, w="all", mode="or",
    )

    textual = lsh.block(dataset)
    combined = salsh.block(dataset)

    show_blocks("B1 (textual LSH)   ", textual)
    show_blocks("B3 (semantic-aware)", combined)
    print()

    rows = []
    for label, result in (("LSH", textual), ("SA-LSH", combined)):
        metrics = evaluate_blocks(result, dataset)
        rows.append([label, metrics.pc, metrics.pq, metrics.rr, metrics.fm,
                     len(result.distinct_pairs)])
    print(format_table(
        ["method", "PC", "PQ", "RR", "FM", "pairs"], rows, float_digits=2,
        title="Blocking quality on the running example",
    ))

    assert ("r1", "r4") not in combined.distinct_pairs, (
        "the technical report r4 must not co-block with the conference "
        "versions r1/r2 under SA-LSH"
    )
    print("\nSA-LSH removed the textually-similar but semantically-"
          "dissimilar pair (r1, r4), as in Example 5.1.")


if __name__ == "__main__":
    main()
