#!/usr/bin/env python
"""Compare SA-LSH against the twelve survey blocking techniques.

Runs every technique of the paper's Table 3 (first grid setting each,
to keep the demo fast — pass --full for the complete 163-setting sweep)
plus LSH and SA-LSH on a voter-style corpus, and prints the Fig. 11
style comparison.

Run:  python examples/compare_baselines.py [--full] [--records N]
"""

import argparse

from repro.baselines import TECHNIQUE_ORDER, make_blockers
from repro.core import LSHBlocker, SALSHBlocker
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import best_by, format_table, run_blocking
from repro.semantic import VoterSemanticFunction

ATTRIBUTES = ("first_name", "last_name")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="sweep every paper parameter setting")
    parser.add_argument("--records", type=int, default=2000)
    args = parser.parse_args()

    dataset = NCVoterLikeGenerator(num_records=args.records, seed=5).generate()
    print(f"dataset: {len(dataset)} records, "
          f"{dataset.num_true_matches} true-match pairs\n")

    grids = make_blockers(
        ATTRIBUTES,
        techniques=TECHNIQUE_ORDER,
        max_settings=None if args.full else 1,
    )

    rows = []
    for technique, blockers in grids.items():
        results = [run_blocking(b, dataset) for b in blockers]
        best = best_by(results, "fm")
        m = best.metrics
        rows.append([technique, m.fm, m.pq, m.pc, m.rr, f"{best.seconds:.2f}s"])

    semantic_function = VoterSemanticFunction()
    for blocker in (
        LSHBlocker(ATTRIBUTES, q=2, k=9, l=15, seed=1),
        SALSHBlocker(ATTRIBUTES, q=2, k=9, l=15, seed=1,
                     semantic_function=semantic_function, w="all", mode="or"),
    ):
        outcome = run_blocking(blocker, dataset)
        m = outcome.metrics
        rows.append([blocker.name, m.fm, m.pq, m.pc, m.rr,
                     f"{outcome.seconds:.2f}s"])

    rows.sort(key=lambda r: r[1], reverse=True)
    print(format_table(
        ["technique", "FM", "PQ", "PC", "RR", "time"], rows,
        title="Blocking techniques ranked by FM (cf. Fig. 11)",
    ))


if __name__ == "__main__":
    main()
