#!/usr/bin/env python
"""The process-sharded streaming runtime end to end.

Walks the three PR 4 pieces on one corpus (DESIGN.md,
"Process-sharded streaming runtime"):

1. freeze a semantic encoder from a 10% training sample
   (``SemhashEncoder.fit``) and stream SA-LSH over record slabs of
   *unknown* length — a plain generator, no ``len()`` — with the
   growable signature spill;
2. verify the equivalence configuration: an encoder frozen from the
   full corpus streams to blocks byte-identical to the in-memory
   batch engine;
3. run the same blocking under ``processes=2`` and confirm the
   process-sharded runtime reproduces the serial blocks exactly;
4. repeat the blocking on a persistent ``ShardPool`` (PR 5): one warm
   executor and interned record slabs across calls, blocks still
   byte-identical.

Run:  python examples/streaming_sharded.py [num_records]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core import SALSHBlocker
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import evaluate_blocks
from repro.minhash import GrowableSignatureSpill
from repro.semantic import SemhashEncoder, VoterSemanticFunction
from repro.utils import ShardPool

ATTRIBUTES = ("first_name", "last_name")
SLAB = 500


def record_stream(records):
    """A generator of record slabs — deliberately without a length."""
    for lo in range(0, len(records), SLAB):
        yield iter(records[lo : lo + SLAB])


def main():
    num_records = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    dataset = NCVoterLikeGenerator(num_records=num_records, seed=13).generate()
    records = list(dataset)
    print(f"registry: {len(records)} records, "
          f"{dataset.num_true_matches} duplicate pairs\n")

    # One shared semantic-function instance: the pool's SA-LSH memo is
    # keyed by it, so repeated pooled calls below reuse the derived
    # encoder instead of re-interpreting the corpus.
    semantic_function = VoterSemanticFunction()

    def make_blocker(**kw):
        return SALSHBlocker(
            ATTRIBUTES, q=2, k=9, l=15, seed=3,
            semantic_function=semantic_function, w=2, mode="or", **kw,
        )

    reference = make_blocker().block(dataset)
    print(f"batch (in-memory):    {reference.num_blocks} blocks, "
          f"{evaluate_blocks(reference, dataset)}")

    with tempfile.TemporaryDirectory() as spill_dir:
        # 1. Sample-frozen encoder + unknown-length stream + growable
        #    spill: SA-LSH without the corpus (or its length) in hand.
        sample = SemhashEncoder.fit(
            VoterSemanticFunction(), records[: len(records) // 10]
        )
        spill = GrowableSignatureSpill(
            Path(spill_dir) / "signatures.npy", 9 * 15
        )
        streamed = make_blocker().block_stream(
            record_stream(records), encoder=sample, signatures_out=spill
        )
        matrix = spill.finalize()
        print(f"streamed (10% fit):   {streamed.num_blocks} blocks, "
              f"{evaluate_blocks(streamed, dataset)}")
        print(f"  spilled signatures: {matrix.shape} on disk, "
              f"{streamed.metadata['num_slabs']} slabs, "
              f"{sample.num_bits} semantic bits")

        # 2. Frozen from the full corpus, streaming is byte-identical.
        frozen = SemhashEncoder(VoterSemanticFunction(), dataset)
        replay = make_blocker().block_stream(
            record_stream(records), encoder=frozen
        )
        assert replay.blocks == reference.blocks
        print("streamed (full fit):  identical to batch blocks")

    # 3. Process sharding: identical blocks, hot loops off the GIL.
    sharded = make_blocker(processes=2).block(dataset)
    assert sharded.blocks == reference.blocks
    print(f"sharded (processes=2): identical to batch blocks "
          f"(engine={sharded.metadata['engine']})")

    # 4. Persistent shard pool: the same sharded runtime, but repeated
    #    calls reuse one warm executor and the interned record slabs.
    with ShardPool(processes=2) as pool:
        first = make_blocker(pool=pool).block(dataset)  # forks + interns
        start = time.perf_counter()
        repeat = make_blocker(pool=pool).block(dataset)
        warm_seconds = time.perf_counter() - start
    assert first.blocks == repeat.blocks == reference.blocks
    print(f"pooled (warm repeat):  identical to batch blocks, "
          f"{warm_seconds:.3f}s vs {sharded.seconds:.3f}s fresh-pool")


if __name__ == "__main__":
    main()
