#!/usr/bin/env python
"""Deduplicating a voter registry with uncertain semantic features.

NC-Voter-style data is the opposite regime from Cora: records are
relatively clean, duplication is rare, and the semantic attributes
(race, gender) carry *uncertain* values ('u'). The script shows how the
w-way OR semantic hash function trades PC against PQ as w grows —
the paper's Fig. 8 experiment in miniature.

Run:  python examples/voter_dedup.py
"""

from repro.core import LSHBlocker, SALSHBlocker
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import format_table, run_blocking
from repro.semantic import VoterSemanticFunction

ATTRIBUTES = ("first_name", "last_name")


def main():
    dataset = NCVoterLikeGenerator(num_records=5000, seed=13).generate()
    print(f"registry: {len(dataset)} records, "
          f"{dataset.num_true_matches} duplicate pairs\n")

    semantic_function = VoterSemanticFunction()
    rows = []

    baseline = run_blocking(
        LSHBlocker(ATTRIBUTES, q=2, k=9, l=15, seed=3), dataset
    )
    m = baseline.metrics
    rows.append(["LSH (no semantics)", m.pc, m.pq, m.rr, m.fm])

    for w in (1, 3, 5, 7, 9, 12):
        blocker = SALSHBlocker(
            ATTRIBUTES, q=2, k=9, l=15, seed=3,
            semantic_function=semantic_function, w=w, mode="or",
        )
        m = run_blocking(blocker, dataset).metrics
        rows.append([f"SA-LSH [w={w}, OR]", m.pc, m.pq, m.rr, m.fm])

    print(format_table(
        ["method", "PC", "PQ", "RR", "FM"], rows,
        title="w-way OR semantic hash functions on the voter registry",
    ))
    print("\nSmall w is aggressive (high PQ, lower PC because uncertain "
          "records miss the chosen bits); growing w recovers PC — the "
          "Fig. 8 trade-off.")


if __name__ == "__main__":
    main()
