#!/usr/bin/env python
"""Deduplicating a dirty bibliography (the paper's Cora scenario).

The script walks the full SA-LSH methodology:

1. generate a Cora-like corpus (dirty, heavily duplicated);
2. learn the similarity distribution of true matches on a training
   sample and derive (sh, k, l) with the §5.3 tuning rules;
3. block with plain LSH and with SA-LSH (Table 1 missing-value-pattern
   semantics over the Fig. 3 bibliographic taxonomy);
4. report PC/PQ/RR/FM for both.

Run:  python examples/publications_dedup.py
"""

from repro.core import LSHBlocker, SALSHBlocker
from repro.core.tuning import determine_kl, determine_sh
from repro.datasets import CoraLikeGenerator
from repro.evaluation import format_table, run_blocking
from repro.minhash import Shingler
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree

ATTRIBUTES = ("authors", "title")


def main():
    dataset = CoraLikeGenerator(num_records=1879, num_entities=190, seed=42).generate()
    print(f"corpus: {len(dataset)} records, {len(dataset.clusters)} entities, "
          f"{dataset.num_true_matches} true-match pairs\n")

    # -- §5.3 parameter tuning on a small training sample --------------------
    shingler = Shingler(ATTRIBUTES, q=4)
    training_pairs = sorted(dataset.true_matches)[:500]
    similarities = [
        shingler.jaccard(dataset[a], dataset[b]) for a, b in training_pairs
    ]
    sh = determine_sh(similarities, epsilon=0.05)
    sl = max(round(sh - 0.1, 3), 0.02)
    params = determine_kl(sh, sl, ph=0.4, pl=0.1)
    print(f"tuned parameters: sh={params.sh:.2f} sl={params.sl:.2f} "
          f"-> k={params.k}, l={params.l}\n")

    # -- blocking --------------------------------------------------------------
    semantic_function = PatternSemanticFunction(
        bibliographic_tree(), cora_patterns()
    )
    lsh = LSHBlocker(ATTRIBUTES, q=4, k=params.k, l=params.l, seed=7)
    salsh = SALSHBlocker(
        ATTRIBUTES, q=4, k=params.k, l=params.l, seed=7,
        semantic_function=semantic_function, w="all", mode="or",
    )

    rows = []
    for blocker in (lsh, salsh):
        outcome = run_blocking(blocker, dataset)
        m = outcome.metrics
        rows.append([
            blocker.name, m.pc, m.pq, m.rr, m.fm,
            m.num_distinct_pairs, f"{outcome.seconds:.2f}s",
        ])
    print(format_table(
        ["method", "PC", "PQ", "RR", "FM", "pairs", "time"], rows,
        title="LSH vs SA-LSH on the Cora-like corpus",
    ))
    print("\nSA-LSH shrinks the candidate set (higher PQ/RR) at a small "
          "PC cost — semantic noise in the venue attributes is why the "
          "PC gap exists at all (§6.3.2).")


if __name__ == "__main__":
    main()
