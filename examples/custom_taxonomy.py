#!/usr/bin/env python
"""Bring your own domain: SA-LSH over a custom product taxonomy.

The framework is not tied to bibliographies or voter rolls — any domain
with a concept hierarchy works. This example deduplicates a small
product catalogue where listings of *different* product categories can
share nearly identical titles ("apple watch series 5" the wearable vs
"apple watch series 5 case" the accessory).

It demonstrates the three extension points:

1. build a :class:`TaxonomyTree` for the domain;
2. write a semantic function (here keyword rules over the category and
   title attributes);
3. run :class:`SALSHBlocker` with the pieces.

Run:  python examples/custom_taxonomy.py
"""

from repro.core import LSHBlocker, SALSHBlocker
from repro.evaluation import evaluate_blocks, format_table
from repro.records import Dataset, Record
from repro.semantic import CallableSemanticFunction
from repro.taxonomy import TaxonomyTree


def product_tree() -> TaxonomyTree:
    return TaxonomyTree.from_spec(
        "products",
        ("root", "Product", [
            ("electronics", "Electronics", [
                ("wearable", "Wearable", []),
                ("phone", "Phone", []),
                ("laptop", "Laptop", []),
            ]),
            ("accessory", "Accessory", [
                ("case", "Case", []),
                ("charger", "Charger", []),
            ]),
        ]),
    )


def catalogue() -> Dataset:
    rows = [
        # id, title, category hint, entity
        ("p1", "apple watch series 5 44mm", "wearable", "watch5"),
        ("p2", "apple watch series 5, 44 mm", "wearable", "watch5"),
        ("p3", "apple watch series 5 case 44mm", "case", "watch5case"),
        ("p4", "apple watch 5 charger cable", "charger", "watch5charger"),
        ("p5", "galaxy phone s10 128gb", "phone", "s10"),
        ("p6", "galaxy phone s10 128 gb", "phone", "s10"),
        ("p7", "galaxy s10 phone case", "case", "s10case"),
        ("p8", "ultrabook laptop 13 inch", "laptop", "ultra13"),
    ]
    return Dataset(
        [Record(rid, {"title": t, "category": c}, entity_id=e)
         for rid, t, c, e in rows],
        name="catalogue",
    )


def main():
    tree = product_tree()
    dataset = catalogue()

    # A semantic function from the (possibly noisy) category attribute;
    # unknown categories fall back to the root concept.
    def interpret(record):
        category = record.get("category")
        return (category,) if tree.has_concept(category) else ("root",)

    semantic_function = CallableSemanticFunction(tree, interpret)

    lsh = LSHBlocker(("title",), q=2, k=2, l=8, seed=21)
    salsh = SALSHBlocker(
        ("title",), q=2, k=2, l=8, seed=21,
        semantic_function=semantic_function, w="all", mode="or",
    )

    rows = []
    for blocker in (lsh, salsh):
        result = blocker.block(dataset)
        m = evaluate_blocks(result, dataset)
        rows.append([blocker.name, m.pc, m.pq, m.fm,
                     len(result.distinct_pairs)])

    print(format_table(
        ["method", "PC", "PQ", "FM", "pairs"], rows, float_digits=2,
        title="Product catalogue deduplication",
    ))

    semantic_pairs = salsh.block(dataset).distinct_pairs
    assert ("p1", "p3") not in semantic_pairs, (
        "the watch and its case are textually close but semantically "
        "unrelated — the taxonomy separates them"
    )
    print("\nThe 'apple watch' listing and its case accessory were kept "
          "apart by the wearable/case concepts; the two true duplicate "
          "pairs survive.")


if __name__ == "__main__":
    main()
