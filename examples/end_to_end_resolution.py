#!/usr/bin/env python
"""The full two-stage ER process of §2: blocking, then clustering.

The paper stops at blocking ("our blocking results can be used as input
to any ER algorithms"); this example carries the candidates through the
second stage:

1. auto-tune SA-LSH with :func:`repro.core.run_pipeline` — the §5.3
   chain picks (sh, k, l) from a training sample and the gate (µ, w)
   from the measured semantic-feature quality;
2. classify the surviving candidate pairs with a weighted similarity
   matcher;
3. cluster matched pairs by transitive closure;
4. report blocking metrics (PC/PQ/RR/FM) and resolution metrics
   (pairwise precision/recall/F1).

Run:  python examples/end_to_end_resolution.py
"""

from repro.core import PipelineConfig, run_pipeline
from repro.datasets import CoraLikeGenerator
from repro.er import SimilarityMatcher, evaluate_resolution, resolve
from repro.evaluation import format_table
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree


def main():
    dataset = CoraLikeGenerator(
        num_records=1000, num_entities=120, seed=77
    ).generate()
    print(f"corpus: {len(dataset)} records, {len(dataset.clusters)} "
          f"publications, {dataset.num_true_matches} duplicate pairs\n")

    # -- stage 1: auto-tuned semantic-aware blocking ---------------------------
    semantics = PatternSemanticFunction(bibliographic_tree(), cora_patterns())
    report = run_pipeline(
        dataset,
        PipelineConfig(attributes=("authors", "title"), q=3, seed=7),
        semantic_function=semantics,
    )
    params = report.parameters
    quality = report.feature_quality
    print(f"tuned: sh={params.sh:.2f} -> k={params.k}, l={params.l}; "
          f"gate={report.gate} "
          f"(noise={quality.noise_rate:.2%}, "
          f"uncertainty={quality.uncertainty_rate:.2%})")
    print(f"blocking: {report.metrics}\n")

    # -- stage 2: match + cluster ------------------------------------------------
    matcher = SimilarityMatcher(
        {"title": "jaro_winkler", "authors": "jaro_winkler"},
        weights={"title": 2.0, "authors": 1.0},
        match_threshold=0.90,
    )
    candidates = report.outcome.result.distinct_pairs
    matched = matcher.matches(dataset, candidates)
    clusters = resolve(dataset, matched)
    resolution = evaluate_resolution(clusters, dataset)

    rows = [
        ["candidate pairs (blocking)", len(candidates)],
        ["matched pairs (classifier)", len(matched)],
        ["entities found (clusters > 1)", sum(1 for c in clusters if len(c) > 1)],
        ["true entities with duplicates",
         sum(1 for m in dataset.clusters.values() if len(m) > 1)],
    ]
    print(format_table(["stage", "count"], rows, title="Pipeline funnel"))
    print(f"\nresolution quality: {resolution}")


if __name__ == "__main__":
    main()
