"""Crash-safe resolver state: WAL, checkpoints, disk index, kill −9.

The durability contract (DESIGN.md, "Durability & crash recovery"):

* every acknowledged mutation — ``add_many``/``remove`` returned —
  survives kill −9 at *any* injected crash point, and every
  unacknowledged one vanishes cleanly;
* recovery (checkpoint + journal-tail replay) produces ``blocks()`` /
  ``query()`` byte-identical to a from-scratch rebuild over the
  acknowledged survivors, for all four online blockers;
* a batch ``add_many`` is atomic across a crash: all of it or none of
  it, never a partial batch;
* torn journal frames, partial checkpoints and partial index
  directories are detected and either truncated (the WAL tail) or
  rejected with a typed error — never served.

The kill −9 matrix drives ``durability_driver.py`` in a subprocess
armed via ``REPRO_FAULTS``; driver and oracle share the same schedule
code, so they cannot drift.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from durability_driver import apply_op, load_corpus, make_blocker, plan
from repro.core import LSHBlocker, MultiProbeLSHBlocker, SALSHBlocker
from repro.datasets import fig1_dataset, fig1_semantic_function
from repro.er import Resolver
from repro.errors import (
    ConfigurationError,
    DatasetError,
    DurabilityError,
    SlabTransportError,
)
from repro.records import Record
from repro.store import (
    Journal,
    latest_checkpoint,
    load_checkpoint,
    open_index,
    read_journal,
    sweep_orphan_tmp,
    write_checkpoint,
    write_index,
)
from repro.store.checkpoint import CURRENT_NAME, TMP_MARKER
from repro.store.journal import journal_path

BLOCKER_KINDS = ("lsh", "salsh", "mplsh", "forest")

_SRC = str(Path(__file__).resolve().parents[1] / "src")
_DRIVER = str(Path(__file__).resolve().parent / "durability_driver.py")


def _fig1_blocker():
    return LSHBlocker(("title", "authors"), q=3, k=2, l=3, seed=1)


# ---------------------------------------------------------------- journal


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with Journal.create(path, start_seq=10) as journal:
            assert journal.append("add", {"records": [["a", {}, None]]}) == 11
            assert journal.append("remove", {"record_id": "a"}) == 12
        entries, _, start_seq = read_journal(path)
        assert start_seq == 10
        assert [e["seq"] for e in entries] == [11, 12]
        assert entries[0]["op"] == "add"
        assert entries[1] == {"seq": 12, "op": "remove", "record_id": "a"}

    @pytest.mark.parametrize("tail", [
        b"\x08",                           # lone partial prefix
        b"\x10\x00\x00\x00\xde\xad\xbe\xef",  # prefix, no payload
        b"\x04\x00\x00\x00\x00\x00\x00\x00half",  # CRC mismatch
        b"garbage" * 5,                    # arbitrary wreckage
    ])
    def test_torn_tail_truncated(self, tmp_path, tail):
        path = tmp_path / "wal.log"
        with Journal.create(path) as journal:
            journal.append("add", {"records": []})
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(tail)
        entries, valid_end, _ = read_journal(path)
        assert [e["seq"] for e in entries] == [1]
        assert valid_end == clean_size
        # reopening truncates the wreckage and continues the sequence
        with Journal.open(path) as journal:
            assert journal.last_seq == 1
            assert journal.append("remove", {"record_id": "x"}) == 2
        entries, _, _ = read_journal(path)
        assert [e["seq"] for e in entries] == [1, 2]

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"not a journal at all")
        with pytest.raises(DurabilityError):
            read_journal(path)
        with pytest.raises(DurabilityError):
            read_journal(tmp_path / "missing.log")

    def test_stale_epoch_frames_ignored(self, tmp_path):
        # Frames whose seq does not continue the header's sequence are
        # stale bytes from an older epoch, not a continuation.
        path = tmp_path / "wal.log"
        with Journal.create(path, start_seq=0) as journal:
            journal.append("add", {"records": []})
        data = bytearray(path.read_bytes())
        data[8:16] = (5).to_bytes(8, "little")  # header now claims seq 5
        path.write_bytes(bytes(data))
        entries, valid_end, start_seq = read_journal(path)
        assert start_seq == 5 and entries == [] and valid_end == 16

    def test_bad_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Journal.create(tmp_path / "wal.log", fsync="sometimes")

    def test_append_after_close_raises(self, tmp_path):
        journal = Journal.create(tmp_path / "wal.log")
        journal.close()
        with pytest.raises(DurabilityError):
            journal.append("add", {})

    def test_batch_fsync_sync(self, tmp_path):
        with Journal.create(tmp_path / "wal.log", fsync="batch") as journal:
            journal.append("add", {"records": []})
            journal.sync()
            journal.append("add", {"records": []})
        entries, _, _ = read_journal(tmp_path / "wal.log")
        assert len(entries) == 2


# ------------------------------------------------------------- checkpoint


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        name = write_checkpoint(
            tmp_path,
            records_state={"name": "s", "allocated": 3, "records": []},
            index_state={"kind": "lsh", "retired": ["a"]},
            wal_seq=7,
            blocker=_fig1_blocker(),
        )
        assert latest_checkpoint(tmp_path) == name
        data = load_checkpoint(tmp_path)
        assert data.wal_seq == 7
        assert data.records_state["allocated"] == 3
        assert data.index_state["retired"] == ["a"]
        assert isinstance(data.blocker, LSHBlocker)
        assert data.matcher is None

    def test_successive_checkpoints_prune(self, tmp_path):
        write_checkpoint(
            tmp_path, records_state={}, index_state={}, wal_seq=1
        )
        second = write_checkpoint(
            tmp_path, records_state={}, index_state={}, wal_seq=2
        )
        dirs = [
            entry for entry in os.listdir(tmp_path)
            if entry.startswith("checkpoint-")
        ]
        assert dirs == [second]
        assert load_checkpoint(tmp_path).wal_seq == 2

    def test_member_corruption_rejected(self, tmp_path):
        name = write_checkpoint(
            tmp_path,
            records_state={"name": "s", "allocated": 0, "records": []},
            index_state={}, wal_seq=0,
        )
        member = tmp_path / name / "records.json"
        member.write_bytes(member.read_bytes()[:-1] + b"!")
        with pytest.raises(DurabilityError):
            load_checkpoint(tmp_path)

    def test_missing_state_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            load_checkpoint(tmp_path / "nowhere")
        with pytest.raises(DurabilityError):
            load_checkpoint(tmp_path)  # exists, no checkpoint

    def test_dangling_pointer_falls_back(self, tmp_path):
        name = write_checkpoint(
            tmp_path,
            records_state={"name": "s", "allocated": 0, "records": []},
            index_state={}, wal_seq=4,
        )
        (tmp_path / CURRENT_NAME).write_text("checkpoint-000099\n")
        assert latest_checkpoint(tmp_path) == name
        assert load_checkpoint(tmp_path).wal_seq == 4

    def test_orphan_tmp_sweep(self, tmp_path):
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(dead.stdout.strip())
        orphan = tmp_path / f"checkpoint-000003{TMP_MARKER}{dead_pid}"
        orphan.mkdir(parents=True)
        (orphan / "records.json").write_text("{}")
        live = tmp_path / f"checkpoint-000004{TMP_MARKER}{os.getpid()}"
        live.mkdir()
        foreign = tmp_path / f"notes{TMP_MARKER}abc"
        foreign.write_text("keep me")
        sweep_orphan_tmp(tmp_path)
        assert not orphan.exists()      # dead pid: swept
        assert live.exists()            # own (live) pid: kept
        assert foreign.exists()         # unparsable pid: kept


# ------------------------------------------------------------- disk index


class TestDiskIndex:
    def _equivalent(self, tmp_path, blocker, records, *, encoder=None):
        online = (
            blocker.online(records, encoder=encoder)
            if encoder is not None else blocker.online(records)
        )
        target = tmp_path / "index"
        write_index(target, online, metadata={"note": "test"})
        disk = open_index(target)
        assert disk.num_records == len(records)
        assert disk.metadata == {"note": "test"}
        assert disk.blocks() == online.blocks()
        for record in records:
            expected = online.query(record)
            got = disk.query(
                record, blocker,
                encoder=getattr(online, "encoder", None),
            )
            assert got == expected, record.record_id
        return disk

    def test_lsh_round_trip_fig1(self, tmp_path, fig1):
        self._equivalent(tmp_path, _fig1_blocker(), list(fig1))

    def test_lsh_round_trip_after_mutations(self, tmp_path, fig1):
        records = list(fig1)
        blocker = _fig1_blocker()
        online = blocker.online(records[:4])
        online.add_many(records[4:])
        online.remove(records[1].record_id)
        target = tmp_path / "index"
        write_index(target, online)
        disk = open_index(target)
        assert disk.blocks() == online.blocks()
        assert disk.num_records == len(records) - 1
        for record in records:
            assert disk.query(record, blocker) == online.query(record)

    def test_salsh_round_trip_fig1(self, tmp_path, fig1, fig1_sf):
        blocker = SALSHBlocker(
            ("title", "authors"), q=3, k=2, l=3, seed=1,
            semantic_function=fig1_sf, w="all", mode="or",
        )
        self._equivalent(tmp_path, blocker, list(fig1))

    def test_lsh_round_trip_cora(self, tmp_path, cora_small):
        blocker = LSHBlocker(("authors", "title"), q=3, k=3, l=6, seed=3)
        self._equivalent(tmp_path, blocker, list(cora_small))

    def test_existing_path_refused(self, tmp_path, fig1):
        online = _fig1_blocker().online(list(fig1))
        target = tmp_path / "index"
        write_index(target, online)
        with pytest.raises(DurabilityError):
            write_index(target, online)

    def test_variant_index_not_persistable(self, tmp_path, fig1):
        blocker = MultiProbeLSHBlocker(
            ("title", "authors"), q=3, k=2, l=3, seed=1
        )
        with pytest.raises(ConfigurationError):
            write_index(tmp_path / "index", blocker.online(list(fig1)))

    def test_segment_corruption_rejected(self, tmp_path, fig1):
        online = _fig1_blocker().online(list(fig1))
        target = tmp_path / "index"
        write_index(target, online)
        segment = target / "table-001.members.npy"
        data = bytearray(segment.read_bytes())
        data[140] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(SlabTransportError):
            open_index(target)

    def test_missing_manifest_rejected(self, tmp_path, fig1):
        online = _fig1_blocker().online(list(fig1))
        target = tmp_path / "index"
        write_index(target, online)
        (target / "INDEX.json").unlink()
        with pytest.raises(DurabilityError):
            open_index(target)

    def test_resized_segment_rejected(self, tmp_path, fig1):
        online = _fig1_blocker().online(list(fig1))
        target = tmp_path / "index"
        write_index(target, online)
        with open(target / "ids.npy", "ab") as handle:
            handle.write(b"\0" * 8)
        with pytest.raises(DurabilityError):
            open_index(target)


# ------------------------------------------------- resolver save/open


@pytest.mark.parametrize("kind", BLOCKER_KINDS)
class TestResolverPersistence:
    def test_save_open_round_trip(self, kind, tmp_path):
        records = load_corpus("fig1")
        state = tmp_path / "state"
        resolver = Resolver(
            make_blocker(kind, "fig1"), records[:4], state_dir=state
        )
        resolver.add_many(records[4:])
        removed = resolver.remove(records[0].record_id)
        assert removed.record_id == records[0].record_id
        fresh_id = resolver.store.allocate_id("n")
        resolver.add(Record(fresh_id, dict(records[0].fields)))
        expected_blocks = resolver.index.blocks()
        expected_queries = [resolver.query(r) for r in records]
        resolver.close()

        recovered = Resolver.open(state)
        assert recovered.index.blocks() == expected_blocks
        assert [recovered.query(r) for r in records] == expected_queries
        assert len(recovered) == len(resolver)
        assert recovered.index.is_retired(records[0].record_id)
        # retired ids stay retired across recovery
        with pytest.raises(DatasetError):
            recovered.add(Record(records[0].record_id, {}))
        # the id allocator never reuses pre-crash allocations
        assert recovered.store.allocate_id("n") != fresh_id
        recovered.close()

    def test_mutations_after_recovery_are_durable(self, kind, tmp_path):
        records = load_corpus("fig1")
        state = tmp_path / "state"
        with Resolver(
            make_blocker(kind, "fig1"), records[:4], state_dir=state
        ) as resolver:
            resolver.add(records[4])
        with Resolver.open(state) as second:
            second.add(records[5])
            expected = second.index.blocks()
        with Resolver.open(state) as third:
            assert third.index.blocks() == expected
            assert len(third) == 6


class TestResolverPersistenceEdges:
    def test_save_requires_state_dir(self, fig1):
        resolver = Resolver(_fig1_blocker(), list(fig1))
        with pytest.raises(ConfigurationError):
            resolver.save()

    def test_export_to_other_dir(self, tmp_path, fig1):
        records = list(fig1)
        resolver = Resolver(_fig1_blocker(), records)
        resolver.save(tmp_path / "export")
        recovered = Resolver.open(tmp_path / "export")
        assert recovered.index.blocks() == resolver.index.blocks()
        recovered.close()

    def test_open_needs_blocker(self, tmp_path):
        write_checkpoint(
            tmp_path / "state",
            records_state={"name": "s", "allocated": 0, "records": []},
            index_state={}, wal_seq=0,
        )
        with pytest.raises(DurabilityError):
            Resolver.open(tmp_path / "state")
        recovered = Resolver.open(
            tmp_path / "state", blocker=_fig1_blocker()
        )
        assert len(recovered) == 0
        recovered.close()

    def test_failed_add_leaves_durable_state_unchanged(
        self, tmp_path, fig1
    ):
        records = list(fig1)
        state = tmp_path / "state"
        with Resolver(
            _fig1_blocker(), records[:3], state_dir=state
        ) as resolver:
            before = resolver.last_seq
            with pytest.raises(DatasetError):
                resolver.add_many([records[3], records[0]])  # duplicate
            assert resolver.last_seq == before  # nothing journaled
            assert len(resolver) == 3
        with Resolver.open(state) as recovered:
            assert len(recovered) == 3


# ----------------------------------------- batch atomicity across crash


class TestBatchAtomicity:
    @settings(max_examples=25, deadline=None)
    @given(
        batch_size=st.integers(min_value=1, max_value=5),
        tear=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_add_many_all_or_nothing(self, tmp_path_factory, batch_size, tear):
        """Tearing the journal anywhere inside a batch frame loses the
        whole batch; a complete frame keeps the whole batch. Never a
        partial batch — ``add_many`` journals one frame per call."""
        tmp_path = tmp_path_factory.mktemp("atomic")
        records = load_corpus("fig1")
        state = tmp_path / "state"
        with Resolver(
            _fig1_blocker(), records[:2], state_dir=state
        ) as resolver:
            batch = [
                Record(f"b{i}", dict(records[i % len(records)].fields))
                for i in range(batch_size)
            ]
            resolver.add_many(batch)
        wal = journal_path(state)
        data = wal.read_bytes()
        _, valid_end, _ = read_journal(wal)
        frame_starts = 16  # header length; one frame follows
        cut = frame_starts + int((valid_end - frame_starts) * tear)
        wal.write_bytes(data[:cut])
        with Resolver.open(state) as recovered:
            present = [r.record_id in recovered for r in batch]
            assert all(present) or not any(present)
            assert all(present) == (cut >= valid_end)
            assert len(recovered) == 2 + (batch_size if all(present) else 0)


# ------------------------------------------------------ kill −9 matrix


def _run_driver(state_dir, kind, corpus, fault=None, seed_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.pop("REPRO_FAULTS", None)
    if fault:
        env["REPRO_FAULTS"] = fault
    if seed_env:
        env["REPRO_FAULTS_SEED"] = seed_env
    return subprocess.run(
        [sys.executable, _DRIVER, str(state_dir), kind, corpus],
        capture_output=True, text=True, env=env, timeout=180,
    )


def _acked(stdout: str) -> int:
    return sum(1 for line in stdout.splitlines() if line.startswith("ACK "))


def _oracle(kind, corpus, acked):
    records = load_corpus(corpus)
    seed, ops = plan(records)
    resolver = Resolver(make_blocker(kind, corpus), seed)
    for op, arg in ops[:acked]:
        if op == "save":  # a logical no-op; the oracle is not durable
            continue
        apply_op(resolver, op, arg)
    return records, resolver


def _assert_recovered_equals_oracle(state_dir, kind, corpus, acked):
    records, oracle = _oracle(kind, corpus, acked)
    recovered = Resolver.open(state_dir)
    assert recovered.index.blocks() == oracle.index.blocks()
    assert len(recovered) == len(oracle)
    assert sorted(r.record_id for r in recovered.store) == sorted(
        r.record_id for r in oracle.store
    )
    for probe in records:
        assert recovered.query(probe) == oracle.query(probe)
    recovered.close()


#: (corpus, fault) legs of the matrix; every leg runs for all 4 kinds.
_MATRIX = [
    ("fig1", "wal.append:@0"),          # crash on the first mutation
    ("fig1", "wal.append:@4"),          # crash on the last mutation
    ("fig1", "checkpoint.rename:@1"),   # crash during the mid-run save
    ("cora", "wal.append:@10"),         # crash mid-stream, bigger corpus
]


@pytest.mark.parametrize("kind", BLOCKER_KINDS)
@pytest.mark.parametrize("corpus,fault", _MATRIX)
def test_kill9_matrix(kind, corpus, fault, tmp_path):
    state = tmp_path / "state"
    result = _run_driver(state, kind, corpus, fault=fault)
    assert result.returncode == -9, (
        f"driver should die by SIGKILL, got rc={result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "READY" in result.stdout
    assert "DONE" not in result.stdout
    _assert_recovered_equals_oracle(state, kind, corpus, _acked(result.stdout))


@pytest.mark.parametrize("kind", BLOCKER_KINDS)
def test_no_crash_run_recovers_fully(kind, tmp_path):
    state = tmp_path / "state"
    result = _run_driver(state, kind, "fig1")
    assert result.returncode == 0, result.stderr
    assert "DONE" in result.stdout
    _, ops = plan(load_corpus("fig1"))
    assert _acked(result.stdout) == len(ops)
    _assert_recovered_equals_oracle(state, kind, "fig1", len(ops))


def test_kill9_before_first_checkpoint(tmp_path):
    """A crash before anything was ever published cannot be recovered —
    but it must fail with a typed error, and the wreckage is swept."""
    state = tmp_path / "state"
    result = _run_driver(state, "lsh", "fig1", fault="checkpoint.rename:@0")
    assert result.returncode == -9
    assert "READY" not in result.stdout
    with pytest.raises(DurabilityError):
        Resolver.open(state)
    assert not [n for n in os.listdir(state) if TMP_MARKER in n]


@pytest.mark.parametrize("kind", ["lsh", "salsh"])
def test_kill9_during_write_index(kind, tmp_path):
    """kill −9 between index segment writes leaves only tmp wreckage:
    the target never appears, open_index refuses it, and a later
    write to the same parent sweeps the orphan and succeeds."""
    script = (
        "import sys; sys.path.insert(0, sys.argv[1]); "
        "from durability_driver import load_corpus, make_blocker; "
        "from repro.store import write_index; "
        "from repro.utils import faults; faults.arm_from_env(); "
        "records = load_corpus('fig1'); "
        f"online = make_blocker('{kind}', 'fig1').online(records); "
        "write_index(sys.argv[2], online)"
    )
    target = tmp_path / "index"
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env["REPRO_FAULTS"] = "index.write:@1"
    result = subprocess.run(
        [sys.executable, "-c", script, str(Path(_DRIVER).parent),
         str(target)],
        capture_output=True, text=True, env=env, timeout=180,
    )
    assert result.returncode == -9, result.stderr
    assert not target.exists()
    with pytest.raises(DurabilityError):
        open_index(target)
    orphans = [n for n in os.listdir(tmp_path) if TMP_MARKER in n]
    assert orphans, "the killed writer should leave its tmp directory"
    # a healthy writer sweeps the dead writer's wreckage and publishes
    records = load_corpus("fig1")
    online = make_blocker(kind, "fig1").online(records)
    write_index(target, online)
    assert not [n for n in os.listdir(tmp_path) if TMP_MARKER in n]
    disk = open_index(target)
    assert disk.blocks() == online.blocks()


# ------------------------------------------------------------------ CLI


class TestCLIDurability:
    def _corpus_csv(self, tmp_path):
        from repro.records import Dataset, write_csv

        path = tmp_path / "corpus.csv"
        write_csv(Dataset(load_corpus("fig1"), name="fig1"), path)
        return path

    def _blocker_args(self):
        return [
            "--technique", "lsh", "--attributes", "title,authors",
            "--q", "3", "--k", "2", "--l", "3", "--seed", "1",
        ]

    def test_malformed_ops_row_exits_2_with_line(self, tmp_path, capsys):
        from repro.cli import main

        corpus = self._corpus_csv(tmp_path)
        ops = tmp_path / "ops.csv"
        ops.write_text(
            "op,record_id,title\n"
            "add,x1,fine\n"
            "frobnicate,x2,bad\n"
        )
        rc = main([
            "serve-batch", "--input", str(corpus), "--ops", str(ops),
            *self._blocker_args(),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "line 3" in err and "frobnicate" in err
        assert "Traceback" not in err

    def test_ops_row_without_id_exits_2_with_line(self, tmp_path, capsys):
        from repro.cli import main

        corpus = self._corpus_csv(tmp_path)
        ops = tmp_path / "ops.csv"
        ops.write_text("op,record_id,title\nadd,,missing\n")
        rc = main([
            "serve-batch", "--input", str(corpus), "--ops", str(ops),
            *self._blocker_args(),
        ])
        assert rc == 2
        assert "line 2" in capsys.readouterr().err

    def test_corpus_row_without_id_exits_2_with_line(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "bad.csv"
        corpus.write_text("record_id,title\nr1,ok\n,missing id\n")
        probes = tmp_path / "probes.csv"
        probes.write_text("record_id,title\np1,x\n")
        rc = main([
            "query", "--input", str(corpus), "--queries", str(probes),
            *self._blocker_args(),
        ])
        assert rc == 2
        assert "line 3" in capsys.readouterr().err

    def test_state_dir_round_trip_and_recover(self, tmp_path, capsys):
        import csv as _csv

        from repro.cli import main

        corpus = self._corpus_csv(tmp_path)
        state = tmp_path / "state"
        ops = tmp_path / "ops.csv"
        ops.write_text(
            "op,record_id,title,authors\n"
            "add,x1,yet another entity resolution paper,someone\n"
            "query,x1,yet another entity resolution paper,someone\n"
        )
        out = tmp_path / "out.csv"
        rc = main([
            "serve-batch", "--input", str(corpus), "--ops", str(ops),
            *self._blocker_args(),
            "--state-dir", str(state), "--out", str(out),
        ])
        assert rc == 0
        assert latest_checkpoint(state) is not None

        # Second run resumes from the state dir (corpus file ignored),
        # so x1 from the first run is still present and removable.
        ops2 = tmp_path / "ops2.csv"
        ops2.write_text("op,record_id\nremove,x1\n")
        rc = main([
            "serve-batch", "--input", str(corpus), "--ops", str(ops2),
            *self._blocker_args(),
            "--state-dir", str(state), "--out", str(out),
        ])
        assert rc == 0
        capsys.readouterr()

        rc = main(["recover", "--state-dir", str(state)])
        assert rc == 0
        recovered_line = capsys.readouterr().out
        assert f"recovered {len(load_corpus('fig1'))} records" in (
            recovered_line
        )

        probes = tmp_path / "probes.csv"
        probes.write_text("record_id,title,authors\np1,entity,someone\n")
        results = tmp_path / "recovered.csv"
        rc = main([
            "recover", "--state-dir", str(state),
            "--queries", str(probes), "--out", str(results),
        ])
        assert rc == 0
        rows = list(_csv.DictReader(open(results)))
        assert [row["query_id"] for row in rows] == ["p1"]

    def test_recover_without_state_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["recover", "--state-dir", str(tmp_path / "nope")])
        assert rc == 2
        assert "no resolver state" in capsys.readouterr().err
