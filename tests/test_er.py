"""Tests for the downstream ER stage: matching, clustering, evaluation."""

import pytest

from repro.er import (
    SimilarityMatcher,
    connected_components,
    evaluate_resolution,
    resolve,
)
from repro.errors import ConfigurationError
from repro.records import Dataset, Record


def dataset():
    return Dataset(
        [
            Record("a", {"name": "anna smith"}, entity_id="e1"),
            Record("b", {"name": "anna smith"}, entity_id="e1"),
            Record("c", {"name": "anna smyth"}, entity_id="e1"),
            Record("d", {"name": "robert jones"}, entity_id="e2"),
            Record("e", {"name": "bob jones"}, entity_id="e2"),
            Record("f", {"name": "carol white"}, entity_id="e3"),
        ]
    )


class TestSimilarityMatcher:
    def test_identical_pair_is_match(self):
        matcher = SimilarityMatcher({"name": "jaro_winkler"})
        decision = matcher.classify(dataset(), ("a", "b"))
        assert decision.label == "match"
        assert decision.score == 1.0

    def test_dissimilar_pair_is_non_match(self):
        matcher = SimilarityMatcher({"name": "jaro_winkler"})
        assert matcher.classify(dataset(), ("a", "f")).label == "non-match"

    def test_possible_region(self):
        matcher = SimilarityMatcher(
            {"name": "jaro_winkler"},
            match_threshold=0.99,
            possible_threshold=0.80,
        )
        decision = matcher.classify(dataset(), ("a", "c"))  # smith/smyth
        assert decision.label == "possible"

    def test_weights_normalised(self):
        matcher = SimilarityMatcher(
            {"name": "exact", "other": "exact"},
            weights={"name": 3.0, "other": 1.0},
        )
        ds = Dataset(
            [
                Record("x", {"name": "same", "other": "differs"}),
                Record("y", {"name": "same", "other": "other"}),
            ]
        )
        assert matcher.score(ds, ("x", "y")) == pytest.approx(0.75)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            SimilarityMatcher(
                {"name": "exact"}, match_threshold=0.5, possible_threshold=0.8
            )

    def test_empty_attributes_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityMatcher({})

    def test_matches_filters_labels(self):
        matcher = SimilarityMatcher({"name": "jaro_winkler"})
        candidates = {("a", "b"), ("a", "f")}
        assert matcher.matches(dataset(), candidates) == {("a", "b")}

    def test_match_pairs_sorted(self):
        matcher = SimilarityMatcher({"name": "exact"})
        decisions = matcher.match_pairs(dataset(), {("d", "e"), ("a", "b")})
        assert [d.pair for d in decisions] == [("a", "b"), ("d", "e")]


class TestClustering:
    def test_transitive_closure(self):
        clusters = connected_components(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c")]
        )
        assert ["a", "b", "c"] in clusters
        assert ["d"] in clusters

    def test_no_matches_all_singletons(self):
        clusters = connected_components(["x", "y"], [])
        assert clusters == [["x"], ["y"]]

    def test_resolve_covers_every_record(self):
        ds = dataset()
        clusters = resolve(ds, [("a", "b")])
        covered = {rid for cluster in clusters for rid in cluster}
        assert covered == set(ds.record_ids)

    def test_deterministic_order(self):
        c1 = connected_components(["b", "a", "c"], [("c", "a")])
        c2 = connected_components(["c", "b", "a"], [("a", "c")])
        assert c1 == c2


class TestResolutionMetrics:
    def test_perfect_resolution(self):
        ds = dataset()
        clusters = [["a", "b", "c"], ["d", "e"], ["f"]]
        metrics = evaluate_resolution(clusters, ds)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_over_merged_clusters_lose_precision(self):
        ds = dataset()
        metrics = evaluate_resolution([list("abcdef")], ds)
        assert metrics.recall == 1.0
        assert metrics.precision < 0.5

    def test_all_singletons_zero_recall(self):
        ds = dataset()
        metrics = evaluate_resolution([[r] for r in ds.record_ids], ds)
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0


class TestEndToEnd:
    def test_block_match_cluster_pipeline(self, cora_small):
        """The full two-stage process of §2 on a generated corpus."""
        from repro.core import LSHBlocker

        blocker = LSHBlocker(("authors", "title"), q=3, k=3, l=19, seed=3)
        candidates = blocker.block(cora_small).distinct_pairs
        matcher = SimilarityMatcher(
            {"title": "jaro_winkler", "authors": "jaro_winkler"},
            match_threshold=0.90,
        )
        matched = matcher.matches(cora_small, candidates)
        clusters = resolve(cora_small, matched)
        metrics = evaluate_resolution(clusters, cora_small)
        # Blocking + conservative matching must produce a usable
        # resolution: precise and with meaningful recall.
        assert metrics.precision > 0.8
        assert metrics.recall > 0.3
